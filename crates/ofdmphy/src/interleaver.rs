//! The IEEE 802.11a/g block interleaver.
//!
//! Coded bits within one OFDM symbol are permuted twice: the first permutation ensures
//! adjacent coded bits are mapped onto non-adjacent subcarriers; the second ensures
//! adjacent coded bits alternate between more and less significant constellation bits.
//! Interleaving is what converts a burst of subcarrier-localised interference (the ACI
//! case) into scattered bit errors the Viterbi decoder can correct — so it matters for
//! reproducing the shape of the paper's packet-success-rate curves.

use crate::{PhyError, Result};

/// The per-symbol interleaver for a given number of coded bits per OFDM symbol
/// (`n_cbps`) and coded bits per subcarrier (`n_bpsc`).
#[derive(Debug, Clone)]
pub struct Interleaver {
    n_cbps: usize,
    /// `permutation[k]` gives the post-interleaving index of input bit `k`.
    permutation: Vec<usize>,
    /// Inverse permutation for deinterleaving.
    inverse: Vec<usize>,
}

impl Interleaver {
    /// Creates the interleaver for `n_cbps` coded bits per symbol and `n_bpsc` coded
    /// bits per subcarrier (1, 2, 4, 6 or 8).
    pub fn new(n_cbps: usize, n_bpsc: usize) -> Result<Self> {
        if n_bpsc == 0 || n_cbps == 0 || !n_cbps.is_multiple_of(n_bpsc) {
            return Err(PhyError::invalid(
                "n_cbps",
                "must be a positive multiple of n_bpsc",
            ));
        }
        if !n_cbps.is_multiple_of(16) {
            return Err(PhyError::invalid(
                "n_cbps",
                "802.11 interleaver requires a multiple of 16 coded bits per symbol",
            ));
        }
        let s = (n_bpsc / 2).max(1);
        let mut permutation = vec![0usize; n_cbps];
        for (k, slot) in permutation.iter_mut().enumerate() {
            // First permutation.
            let i = (n_cbps / 16) * (k % 16) + k / 16;
            // Second permutation.
            let j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
            *slot = j;
        }
        let mut inverse = vec![0usize; n_cbps];
        for (k, &j) in permutation.iter().enumerate() {
            inverse[j] = k;
        }
        Ok(Interleaver {
            n_cbps,
            permutation,
            inverse,
        })
    }

    /// Number of coded bits per OFDM symbol this interleaver handles.
    pub fn block_size(&self) -> usize {
        self.n_cbps
    }

    /// Interleaves one symbol's worth of coded bits.
    pub fn interleave(&self, bits: &[u8]) -> Result<Vec<u8>> {
        self.permute(bits, &self.permutation)
    }

    /// Deinterleaves one symbol's worth of coded bits.
    pub fn deinterleave(&self, bits: &[u8]) -> Result<Vec<u8>> {
        self.permute(bits, &self.inverse)
    }

    /// Interleaves a multi-symbol stream (length must be a multiple of the block size).
    pub fn interleave_stream(&self, bits: &[u8]) -> Result<Vec<u8>> {
        self.stream(bits, true)
    }

    /// Deinterleaves a multi-symbol stream (length must be a multiple of the block size).
    pub fn deinterleave_stream(&self, bits: &[u8]) -> Result<Vec<u8>> {
        self.stream(bits, false)
    }

    fn stream(&self, bits: &[u8], forward: bool) -> Result<Vec<u8>> {
        if !bits.len().is_multiple_of(self.n_cbps) {
            return Err(PhyError::invalid(
                "bits",
                format!(
                    "stream length {} is not a multiple of the block size {}",
                    bits.len(),
                    self.n_cbps
                ),
            ));
        }
        let mut out = Vec::with_capacity(bits.len());
        for chunk in bits.chunks(self.n_cbps) {
            let block = if forward {
                self.interleave(chunk)?
            } else {
                self.deinterleave(chunk)?
            };
            out.extend(block);
        }
        Ok(out)
    }

    fn permute(&self, bits: &[u8], map: &[usize]) -> Result<Vec<u8>> {
        if bits.len() != self.n_cbps {
            return Err(PhyError::LengthMismatch {
                expected: self.n_cbps,
                actual: bits.len(),
            });
        }
        let mut out = vec![0u8; self.n_cbps];
        for (k, &b) in bits.iter().enumerate() {
            out[map[k]] = b;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn construction_validation() {
        assert!(Interleaver::new(0, 1).is_err());
        assert!(Interleaver::new(48, 0).is_err());
        assert!(Interleaver::new(50, 2).is_err());
        assert!(Interleaver::new(49, 7).is_err());
        assert!(Interleaver::new(48, 1).is_ok());
        assert!(Interleaver::new(96, 2).is_ok());
        assert!(Interleaver::new(192, 4).is_ok());
        assert!(Interleaver::new(288, 6).is_ok());
    }

    #[test]
    fn permutation_is_a_bijection() {
        for (n_cbps, n_bpsc) in [(48, 1), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(n_cbps, n_bpsc).unwrap();
            let mut seen = vec![false; n_cbps];
            for k in 0..n_cbps {
                let j = il.permutation[k];
                assert!(!seen[j], "duplicate target {j}");
                seen[j] = true;
            }
            assert!(seen.iter().all(|s| *s));
        }
    }

    #[test]
    fn interleave_deinterleave_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for (n_cbps, n_bpsc) in [(48, 1), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(n_cbps, n_bpsc).unwrap();
            let bits: Vec<u8> = (0..n_cbps).map(|_| rng.gen_range(0..2)).collect();
            let restored = il.deinterleave(&il.interleave(&bits).unwrap()).unwrap();
            assert_eq!(restored, bits);
        }
    }

    #[test]
    fn stream_roundtrip_multiple_symbols() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let il = Interleaver::new(192, 4).unwrap();
        let bits: Vec<u8> = (0..192 * 5).map(|_| rng.gen_range(0..2)).collect();
        let restored = il
            .deinterleave_stream(&il.interleave_stream(&bits).unwrap())
            .unwrap();
        assert_eq!(restored, bits);
        assert!(il.interleave_stream(&bits[..100]).is_err());
        assert!(il.deinterleave_stream(&bits[..100]).is_err());
    }

    #[test]
    fn wrong_block_length_is_rejected() {
        let il = Interleaver::new(48, 1).unwrap();
        assert!(il.interleave(&[0u8; 47]).is_err());
        assert!(il.deinterleave(&[0u8; 49]).is_err());
    }

    #[test]
    fn interleaving_actually_permutes() {
        let il = Interleaver::new(96, 2).unwrap();
        let mut bits = vec![0u8; 96];
        bits[0] = 1;
        bits[1] = 1;
        let interleaved = il.interleave(&bits).unwrap();
        assert_ne!(interleaved, bits);
        assert_eq!(interleaved.iter().filter(|b| **b == 1).count(), 2);
    }

    #[test]
    fn adjacent_coded_bits_are_spread_across_subcarriers() {
        // Adjacent input bits must land on different subcarriers — the property that
        // protects against subcarrier-localised interference.
        let n_bpsc = 4;
        let il = Interleaver::new(192, n_bpsc).unwrap();
        for k in 0..191 {
            let sc_a = il.permutation[k] / n_bpsc;
            let sc_b = il.permutation[k + 1] / n_bpsc;
            assert_ne!(
                sc_a,
                sc_b,
                "adjacent coded bits {k},{} on same subcarrier",
                k + 1
            );
        }
    }

    #[test]
    fn known_vector_bpsk_first_permutation() {
        // For BPSK (s = 1) the interleaver reduces to the first permutation:
        // i = (Ncbps/16)(k mod 16) + floor(k/16). For Ncbps = 48: k=0→0, k=1→3, k=2→6,
        // k=16→1, k=17→4.
        let il = Interleaver::new(48, 1).unwrap();
        assert_eq!(il.permutation[0], 0);
        assert_eq!(il.permutation[1], 3);
        assert_eq!(il.permutation[2], 6);
        assert_eq!(il.permutation[16], 1);
        assert_eq!(il.permutation[17], 4);
        assert_eq!(il.permutation[47], 47);
    }
}
