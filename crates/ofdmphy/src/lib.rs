//! # ofdmphy — IEEE 802.11a/g OFDM PHY substrate
//!
//! A from-scratch implementation of the OFDM physical layer the CPRecycle paper builds
//! on: the transmitter chain of an 802.11a/g station (scrambling, convolutional coding,
//! puncturing, interleaving, constellation mapping, pilot insertion, IFFT + cyclic
//! prefix, preambles) and a standard receiver (synchronisation, channel estimation,
//! equalisation, demapping, Viterbi decoding, descrambling, CRC check) that discards the
//! cyclic prefix exactly the way CPRecycle's baseline does.
//!
//! Module map:
//!
//! * [`params`] — OFDM numerology: FFT size, CP length, subcarrier roles; presets for
//!   802.11a/g/n/ac (the paper's Table 1) and LTE.
//! * [`modulation`] — Gray-coded BPSK/QPSK/16-QAM/64-QAM/256-QAM constellations with
//!   802.11 normalisation, hard demapping and the lattice-point sets the sphere decoder
//!   searches.
//! * [`scrambler`] — the 802.11 self-synchronising scrambler (x⁷+x⁴+1).
//! * [`convcode`] — the K=7 (171, 133) convolutional encoder with 2/3 and 3/4
//!   puncturing.
//! * [`viterbi`] — hard-decision Viterbi decoder with depuncturing.
//! * [`interleaver`] — the two-permutation 802.11 block interleaver.
//! * [`crc`] — CRC-32 (the 802.11 FCS) used as the packet success criterion.
//! * [`preamble`] — short and long training fields (STF/LTF).
//! * [`ofdm`] — subcarrier mapping, IFFT, cyclic-prefix insertion and the symbol-level
//!   demodulation helpers shared by the standard and CPRecycle receivers.
//! * [`frame`] — MCS definitions and full PPDU (preamble + SIGNAL + DATA) assembly.
//! * [`sync`] — packet detection, timing and carrier-frequency-offset estimation.
//! * [`chanest`] — least-squares channel estimation from the LTF and per-subcarrier
//!   equalisation, plus residual phase tracking from pilots.
//! * [`rx`] — the standard OFDM receiver (the paper's "Standard Receiver" baseline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chanest;
pub mod convcode;
pub mod crc;
pub mod error;
pub mod frame;
pub mod interleaver;
pub mod modulation;
pub mod ofdm;
pub mod params;
pub mod preamble;
pub mod rx;
pub mod scrambler;
pub mod sync;
pub mod viterbi;

pub use error::PhyError;

/// Convenience alias for results returned by fallible PHY operations.
pub type Result<T> = std::result::Result<T, PhyError>;
