//! Constellation mapping and hard demapping.
//!
//! Gray-coded BPSK, QPSK, 16-QAM, 64-QAM and 256-QAM with the IEEE 802.11 normalisation
//! factors (1, 1/√2, 1/√10, 1/√42, 1/√170) so every constellation has unit average
//! power. The full lattice-point sets are exposed because the CPRecycle fixed-sphere
//! maximum-likelihood decoder searches over them directly (paper §4.2: the alphabet
//! `L = {l₁ … l_k}`, with k = 2, 4, 16, 64, 256).

use crate::{PhyError, Result};
use rfdsp::Complex;
use std::sync::OnceLock;

/// The cached, index-based view of one constellation: a flat point table plus the bit
/// labels, shared process-wide so decoders can work with `u16` lattice indices instead
/// of cloning `(Complex, Vec<u8>)` pairs.
///
/// Obtained from [`Modulation::lattice`]; index order is the enumeration order of
/// [`Modulation::constellation`] (the bits of index `i` are `i` itself, MSB first), so
/// indices are stable identifiers of lattice points.
#[derive(Debug)]
pub struct Lattice {
    points: Vec<Complex>,
    /// Flattened bit labels: `num_points × bits_per_symbol`, MSB first per point.
    bits: Vec<u8>,
    bits_per_symbol: usize,
}

impl Lattice {
    fn build(modulation: Modulation) -> Self {
        let n = modulation.bits_per_symbol();
        let mut points = Vec::with_capacity(modulation.num_points());
        let mut bits = Vec::with_capacity(modulation.num_points() * n);
        for idx in 0..modulation.num_points() {
            let point_bits: Vec<u8> = (0..n).map(|b| ((idx >> (n - 1 - b)) & 1) as u8).collect();
            points.push(
                modulation
                    .map(&point_bits)
                    .expect("enumerated bits are always valid"),
            );
            bits.extend(point_bits);
        }
        Lattice {
            points,
            bits,
            bits_per_symbol: n,
        }
    }

    /// Number of lattice points (the size of the decoder's search space).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Bits carried per lattice point.
    #[inline]
    pub fn bits_per_symbol(&self) -> usize {
        self.bits_per_symbol
    }

    /// All lattice points, in index order — the table sphere-style decoders scan.
    #[inline]
    pub fn points(&self) -> &[Complex] {
        &self.points
    }

    /// The constellation value of one lattice index.
    #[inline]
    pub fn point(&self, index: u16) -> Complex {
        self.points[index as usize]
    }

    /// The bits encoded by one lattice index (MSB first), as a borrowed slice — the
    /// allocation-free replacement for cloning the `Vec<u8>` of a constellation pair.
    #[inline]
    pub fn bits_of(&self, index: u16) -> &[u8] {
        let n = self.bits_per_symbol;
        &self.bits[index as usize * n..(index as usize + 1) * n]
    }

    /// The index of the lattice point nearest to `symbol` (first wins on exact ties,
    /// matching [`Modulation::nearest_point`]).
    #[inline]
    pub fn nearest_index(&self, symbol: Complex) -> u16 {
        let mut best = 0u16;
        let mut best_dist = f64::INFINITY;
        for (i, point) in self.points.iter().enumerate() {
            let d = (symbol - *point).norm_sqr();
            if d < best_dist {
                best_dist = d;
                best = i as u16;
            }
        }
        best
    }
}

/// Supported modulation orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying (1 bit/symbol).
    Bpsk,
    /// Quadrature phase-shift keying (2 bits/symbol).
    Qpsk,
    /// 16-point quadrature amplitude modulation (4 bits/symbol).
    Qam16,
    /// 64-point quadrature amplitude modulation (6 bits/symbol).
    Qam64,
    /// 256-point quadrature amplitude modulation (8 bits/symbol).
    Qam256,
}

impl Modulation {
    /// Number of bits carried per constellation symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }

    /// Number of points in the constellation (the size of the decoder's search space).
    pub fn num_points(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// 802.11 normalisation factor giving unit average constellation power.
    pub fn normalization(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
            Modulation::Qam256 => 1.0 / 170f64.sqrt(),
        }
    }

    /// Short human-readable name ("QPSK", "16-QAM", …).
    pub fn name(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
            Modulation::Qam256 => "256-QAM",
        }
    }

    /// Maps `bits_per_symbol` bits (MSB first) to one constellation point.
    pub fn map(self, bits: &[u8]) -> Result<Complex> {
        let n = self.bits_per_symbol();
        if bits.len() != n {
            return Err(PhyError::LengthMismatch {
                expected: n,
                actual: bits.len(),
            });
        }
        if bits.iter().any(|b| *b > 1) {
            return Err(PhyError::invalid("bits", "bit values must be 0 or 1"));
        }
        let point = match self {
            Modulation::Bpsk => Complex::new(if bits[0] == 1 { 1.0 } else { -1.0 }, 0.0),
            Modulation::Qpsk => Complex::new(gray_pam(&bits[0..1]), gray_pam(&bits[1..2])),
            Modulation::Qam16 => Complex::new(gray_pam(&bits[0..2]), gray_pam(&bits[2..4])),
            Modulation::Qam64 => Complex::new(gray_pam(&bits[0..3]), gray_pam(&bits[3..6])),
            Modulation::Qam256 => Complex::new(gray_pam(&bits[0..4]), gray_pam(&bits[4..8])),
        };
        Ok(point.scale(self.normalization()))
    }

    /// Maps an entire bit stream to constellation symbols. The bit-stream length must be
    /// a multiple of `bits_per_symbol`.
    pub fn map_bits(self, bits: &[u8]) -> Result<Vec<Complex>> {
        let n = self.bits_per_symbol();
        if !bits.len().is_multiple_of(n) {
            return Err(PhyError::invalid(
                "bits",
                format!("length {} is not a multiple of {}", bits.len(), n),
            ));
        }
        bits.chunks(n).map(|c| self.map(c)).collect()
    }

    /// The process-wide cached [`Lattice`] of this modulation: the flat point table and
    /// bit labels that index-based decoders (`u16` lattice indices) work with. Built
    /// once per modulation on first use.
    pub fn lattice(self) -> &'static Lattice {
        static LATTICES: [OnceLock<Lattice>; 5] = [
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
        ];
        let slot = match self {
            Modulation::Bpsk => 0,
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
            Modulation::Qam256 => 4,
        };
        LATTICES[slot].get_or_init(|| Lattice::build(self))
    }

    /// Hard-demaps one received point to the bits of the nearest constellation point.
    pub fn demap_hard(self, symbol: Complex) -> Vec<u8> {
        let lattice = self.lattice();
        lattice.bits_of(lattice.nearest_index(symbol)).to_vec()
    }

    /// Hard-demaps a slice of received points to a bit stream.
    pub fn demap_hard_all(self, symbols: &[Complex]) -> Vec<u8> {
        let lattice = self.lattice();
        let mut out = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        for s in symbols {
            out.extend_from_slice(lattice.bits_of(lattice.nearest_index(*s)));
        }
        out
    }

    /// Returns the nearest constellation point to `symbol` and the bits it encodes.
    pub fn nearest_point(self, symbol: Complex) -> (Complex, Vec<u8>) {
        let lattice = self.lattice();
        let index = lattice.nearest_index(symbol);
        (lattice.point(index), lattice.bits_of(index).to_vec())
    }

    /// The full constellation: every `(point, bits)` pair. Points are normalised to
    /// unit average power. This is the lattice `L` over which the sphere decoder
    /// searches — kept as a thin (allocating) shim over [`Modulation::lattice`] for
    /// callers that want owned pairs; hot paths should use the lattice directly.
    pub fn constellation(self) -> Vec<(Complex, Vec<u8>)> {
        let lattice = self.lattice();
        (0..lattice.num_points() as u16)
            .map(|i| (lattice.point(i), lattice.bits_of(i).to_vec()))
            .collect()
    }

    /// Just the constellation points (without bit labels), for decoders that only need
    /// the lattice geometry.
    pub fn points(self) -> Vec<Complex> {
        self.lattice().points().to_vec()
    }

    /// Minimum Euclidean distance between distinct constellation points — the decision
    /// distance that shrinks as the modulation order grows (why 64-QAM tolerates much
    /// less interference than QPSK in the paper's figures).
    pub fn min_distance(self) -> f64 {
        match self {
            Modulation::Bpsk => 2.0,
            _ => 2.0 * self.normalization(),
        }
    }
}

/// Gray-coded pulse-amplitude mapping of `bits` (MSB first) onto the odd-integer grid
/// `{±1, ±3, …}` used by square QAM constellations.
fn gray_pam(bits: &[u8]) -> f64 {
    // Convert Gray code to binary index.
    let mut binary = 0usize;
    let mut acc = 0u8;
    for &b in bits {
        acc ^= b;
        binary = (binary << 1) | acc as usize;
    }
    let levels = 1usize << bits.len();
    // Index 0 → −(levels−1), index max → +(levels−1).
    (2 * binary) as f64 - (levels as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Modulation; 5] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
        Modulation::Qam256,
    ];

    #[test]
    fn bits_per_symbol_and_points() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
        assert_eq!(Modulation::Qam256.bits_per_symbol(), 8);
        assert_eq!(Modulation::Qam64.num_points(), 64);
        assert_eq!(Modulation::Qam256.num_points(), 256);
    }

    #[test]
    fn constellations_have_unit_average_power() {
        for m in ALL {
            let pts = m.points();
            let p: f64 = pts.iter().map(|x| x.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((p - 1.0).abs() < 1e-12, "{m:?} power {p}");
        }
    }

    #[test]
    fn constellation_points_are_distinct() {
        for m in ALL {
            let pts = m.points();
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!((pts[i] - pts[j]).norm() > 1e-9, "{m:?} duplicate point");
                }
            }
        }
    }

    #[test]
    fn map_demap_roundtrip_all_points() {
        for m in ALL {
            for (point, bits) in m.constellation() {
                assert_eq!(m.demap_hard(point), bits, "{m:?}");
                let (nearest, nbits) = m.nearest_point(point);
                assert!((nearest - point).norm() < 1e-12);
                assert_eq!(nbits, bits);
            }
        }
    }

    #[test]
    fn demapping_is_robust_to_small_noise() {
        for m in ALL {
            let eps = 0.4 * m.min_distance();
            for (point, bits) in m.constellation() {
                let noisy = point + Complex::new(eps / 2.0, -eps / 2.0).scale(0.5);
                assert_eq!(m.demap_hard(noisy), bits, "{m:?}");
            }
        }
    }

    #[test]
    fn gray_mapping_adjacent_levels_differ_by_one_bit() {
        // For 16-QAM the I-axis levels come from 2-bit Gray codes: adjacent amplitude
        // levels must differ in exactly one bit.
        let m = Modulation::Qam16;
        let mut by_level: Vec<(f64, Vec<u8>)> = m
            .constellation()
            .into_iter()
            .filter(|(p, _)| (p.im * 10f64.sqrt() - 1.0).abs() < 1e-9)
            .map(|(p, bits)| (p.re, bits[..2].to_vec()))
            .collect();
        by_level.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(by_level.len(), 4);
        for w in by_level.windows(2) {
            let differing: usize = w[0].1.iter().zip(&w[1].1).filter(|(a, b)| a != b).count();
            assert_eq!(differing, 1, "adjacent Gray levels must differ in one bit");
        }
    }

    #[test]
    fn bpsk_points_are_real_plus_minus_one() {
        let pts = Modulation::Bpsk.points();
        assert_eq!(pts.len(), 2);
        assert!(pts
            .iter()
            .any(|p| (p.re - 1.0).abs() < 1e-12 && p.im.abs() < 1e-12));
        assert!(pts
            .iter()
            .any(|p| (p.re + 1.0).abs() < 1e-12 && p.im.abs() < 1e-12));
    }

    #[test]
    fn qpsk_points_on_diagonals() {
        for p in Modulation::Qpsk.points() {
            assert!((p.re.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-12);
            assert!((p.im.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn map_bits_stream_and_validation() {
        let m = Modulation::Qpsk;
        let bits = [0, 1, 1, 0, 1, 1];
        let syms = m.map_bits(&bits).unwrap();
        assert_eq!(syms.len(), 3);
        assert!(m.map_bits(&[0, 1, 1]).is_err());
        assert!(m.map(&[0]).is_err());
        assert!(m.map(&[0, 2]).is_err());
        let demapped = m.demap_hard_all(&syms);
        assert_eq!(demapped, bits);
    }

    #[test]
    fn min_distance_decreases_with_order() {
        assert!(Modulation::Bpsk.min_distance() > Modulation::Qpsk.min_distance());
        assert!(Modulation::Qpsk.min_distance() > Modulation::Qam16.min_distance());
        assert!(Modulation::Qam16.min_distance() > Modulation::Qam64.min_distance());
        assert!(Modulation::Qam64.min_distance() > Modulation::Qam256.min_distance());
    }

    #[test]
    fn min_distance_matches_geometry() {
        for m in ALL {
            let pts = m.points();
            let mut min = f64::INFINITY;
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    min = min.min((pts[i] - pts[j]).norm());
                }
            }
            assert!((min - m.min_distance()).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn lattice_index_packing_matches_the_map() {
        // Independent reference: the bits of index `i` are `i` itself (MSB first) and
        // the point is what `map` produces for them — derived here from scratch, not
        // through the lattice's own packing (nearest_point / constellation are shims
        // over the lattice now, so comparing against them would be circular).
        for m in ALL {
            let lattice = m.lattice();
            let n = m.bits_per_symbol();
            assert_eq!(lattice.num_points(), m.num_points());
            assert_eq!(lattice.bits_per_symbol(), n);
            assert_eq!(lattice.points().len(), m.num_points());
            for i in 0..m.num_points() {
                let expected_bits: Vec<u8> =
                    (0..n).map(|b| ((i >> (n - 1 - b)) & 1) as u8).collect();
                assert_eq!(lattice.bits_of(i as u16), &expected_bits[..], "{m:?} {i}");
                let expected_point = m.map(&expected_bits).unwrap();
                assert_eq!(lattice.point(i as u16), expected_point, "{m:?} {i}");
                assert_eq!(lattice.points()[i], expected_point, "{m:?} {i}");
            }
            // The cache hands out the same table on every call.
            assert!(std::ptr::eq(lattice, m.lattice()));
        }
    }

    #[test]
    fn nearest_index_is_the_brute_force_argmin() {
        // Independent reference: an argmin computed here over the point table, with
        // the same first-wins tie rule, including probes equidistant from two points
        // (on the decision boundary) and far outside the constellation.
        for m in ALL {
            let lattice = m.lattice();
            let points = lattice.points();
            let boundary = (points[0] + points[points.len() - 1]).scale(0.5);
            let mut probes = vec![boundary, Complex::new(25.0, -25.0), Complex::zero()];
            for p in points {
                probes.push(*p + Complex::new(0.3, -0.2).scale(m.min_distance()));
            }
            for probe in probes {
                let mut expected = 0u16;
                let mut best = f64::INFINITY;
                for (i, point) in points.iter().enumerate() {
                    let d = (probe - *point).norm_sqr();
                    if d < best {
                        best = d;
                        expected = i as u16;
                    }
                }
                assert_eq!(lattice.nearest_index(probe), expected, "{m:?} at {probe}");
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Modulation::Qam64.name(), "64-QAM");
        assert_eq!(Modulation::Bpsk.name(), "BPSK");
    }
}
