//! OFDM symbol-level modulation and demodulation.
//!
//! * Transmit side: map data and pilot values onto their FFT bins, IFFT, prepend the
//!   cyclic prefix.
//! * Receive side: extract an FFT window from anywhere inside a received symbol. The
//!   standard receiver always uses the window that starts right after the cyclic prefix;
//!   the CPRecycle receiver extracts `P` windows ("segments") and corrects the
//!   deterministic phase ramp that an earlier window start introduces (paper Eq. 2 and
//!   Proposition 3.1).

use crate::params::{OfdmParams, SubcarrierRole};
use crate::{PhyError, Result};
use rfdsp::fft::FftPlan;
use rfdsp::Complex;

/// A reusable OFDM modulator/demodulator for one numerology.
#[derive(Debug, Clone)]
pub struct OfdmEngine {
    params: OfdmParams,
    plan: FftPlan,
}

impl OfdmEngine {
    /// Creates an engine for the given numerology.
    pub fn new(params: OfdmParams) -> Self {
        let plan = FftPlan::new(params.fft_size);
        OfdmEngine { params, plan }
    }

    /// The numerology this engine operates with.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Assembles the frequency-domain vector for one OFDM symbol from `data` values (one
    /// per data subcarrier, in increasing bin order) and `pilots` (one per pilot
    /// subcarrier, in increasing bin order).
    pub fn assemble_bins(&self, data: &[Complex], pilots: &[Complex]) -> Result<Vec<Complex>> {
        let data_bins = self.params.data_bins();
        let pilot_bins = self.params.pilot_bins();
        if data.len() != data_bins.len() {
            return Err(PhyError::LengthMismatch {
                expected: data_bins.len(),
                actual: data.len(),
            });
        }
        if pilots.len() != pilot_bins.len() {
            return Err(PhyError::LengthMismatch {
                expected: pilot_bins.len(),
                actual: pilots.len(),
            });
        }
        let mut bins = vec![Complex::zero(); self.params.fft_size];
        for (bin, value) in data_bins.iter().zip(data) {
            bins[*bin] = *value;
        }
        for (bin, value) in pilot_bins.iter().zip(pilots) {
            bins[*bin] = *value;
        }
        Ok(bins)
    }

    /// Modulates a frequency-domain vector into one time-domain OFDM symbol with cyclic
    /// prefix (`cp_len + fft_size` samples).
    pub fn modulate_symbol(&self, bins: &[Complex]) -> Result<Vec<Complex>> {
        if bins.len() != self.params.fft_size {
            return Err(PhyError::LengthMismatch {
                expected: self.params.fft_size,
                actual: bins.len(),
            });
        }
        let time = self.plan.ifft(bins);
        let mut out = Vec::with_capacity(self.params.symbol_len());
        out.extend_from_slice(&time[self.params.fft_size - self.params.cp_len..]);
        out.extend_from_slice(&time);
        Ok(out)
    }

    /// Convenience: assemble and modulate in one step.
    pub fn modulate(&self, data: &[Complex], pilots: &[Complex]) -> Result<Vec<Complex>> {
        let bins = self.assemble_bins(data, pilots)?;
        self.modulate_symbol(&bins)
    }

    /// Demodulates one received OFDM symbol (`cp_len + fft_size` samples) using the FFT
    /// window that starts `window_start` samples into the symbol.
    ///
    /// `window_start = cp_len` is the standard receiver's choice (skip the whole CP);
    /// smaller values slide the window back into the cyclic prefix — CPRecycle's
    /// segments. The deterministic phase rotation caused by the earlier window start is
    /// corrected here, so in an interference-free channel every ISI-free `window_start`
    /// yields the same output (Proposition 3.1).
    pub fn demodulate_window(
        &self,
        symbol_samples: &[Complex],
        window_start: usize,
    ) -> Result<Vec<Complex>> {
        let f = self.params.fft_size;
        let c = self.params.cp_len;
        if symbol_samples.len() < self.params.symbol_len() {
            return Err(PhyError::InsufficientSamples {
                needed: self.params.symbol_len(),
                available: symbol_samples.len(),
            });
        }
        if window_start > c {
            return Err(PhyError::invalid(
                "window_start",
                format!("must not exceed the cyclic prefix length {c}"),
            ));
        }
        let mut bins = self
            .plan
            .fft(&symbol_samples[window_start..window_start + f]);
        // Starting the window `shift = cp_len − window_start` samples early is a cyclic
        // delay of the useful symbol by `shift`, i.e. a multiplication of bin k by
        // e^{−i2πk·shift/F}; undo it.
        let shift = c - window_start;
        if shift > 0 {
            for (k, b) in bins.iter_mut().enumerate() {
                *b *= Complex::cis(2.0 * std::f64::consts::PI * (k * shift) as f64 / f as f64);
            }
        }
        Ok(bins)
    }

    /// Demodulates with the standard receiver's window (immediately after the CP).
    pub fn demodulate_standard(&self, symbol_samples: &[Complex]) -> Result<Vec<Complex>> {
        self.demodulate_window(symbol_samples, self.params.cp_len)
    }

    /// The per-bin phase correction factor applied for a window that starts `shift`
    /// samples before the end of the cyclic prefix (paper Eq. 2, exposed for tests and
    /// for receivers that want to apply it manually).
    pub fn segment_phase_correction(&self, shift: usize) -> Vec<Complex> {
        let f = self.params.fft_size;
        (0..f)
            .map(|k| Complex::cis(2.0 * std::f64::consts::PI * (k * shift) as f64 / f as f64))
            .collect()
    }

    /// Extracts the values on the data subcarriers (in increasing bin order) from a
    /// demodulated symbol.
    pub fn extract_data(&self, bins: &[Complex]) -> Result<Vec<Complex>> {
        self.extract_role(bins, SubcarrierRole::Data)
    }

    /// Extracts the values on the pilot subcarriers (in increasing bin order) from a
    /// demodulated symbol.
    pub fn extract_pilots(&self, bins: &[Complex]) -> Result<Vec<Complex>> {
        self.extract_role(bins, SubcarrierRole::Pilot)
    }

    fn extract_role(&self, bins: &[Complex], role: SubcarrierRole) -> Result<Vec<Complex>> {
        if bins.len() != self.params.fft_size {
            return Err(PhyError::LengthMismatch {
                expected: self.params.fft_size,
                actual: bins.len(),
            });
        }
        Ok((0..self.params.fft_size)
            .filter(|k| self.params.roles[*k] == role)
            .map(|k| bins[k])
            .collect())
    }
}

/// Splits a received stream into consecutive OFDM symbols of `symbol_len` samples each,
/// starting at `start`. Returns as many complete symbols as are available up to
/// `max_symbols`.
pub fn split_symbols(
    samples: &[Complex],
    start: usize,
    symbol_len: usize,
    max_symbols: usize,
) -> Vec<&[Complex]> {
    let mut out = Vec::new();
    let mut pos = start;
    while out.len() < max_symbols && pos + symbol_len <= samples.len() {
        out.push(&samples[pos..pos + symbol_len]);
        pos += symbol_len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Modulation;
    use rand::{Rng, SeedableRng};

    fn engine() -> OfdmEngine {
        OfdmEngine::new(OfdmParams::ieee80211ag())
    }

    fn random_data_symbols(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Modulation::Qam16;
        (0..n)
            .map(|_| {
                let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2)).collect();
                m.map(&bits).unwrap()
            })
            .collect()
    }

    fn pilots() -> Vec<Complex> {
        vec![Complex::one(); 4]
    }

    #[test]
    fn assemble_places_values_on_correct_bins() {
        let e = engine();
        let data = random_data_symbols(48, 1);
        let bins = e.assemble_bins(&data, &pilots()).unwrap();
        assert_eq!(bins.len(), 64);
        assert_eq!(bins[0], Complex::zero());
        let data_bins = e.params().data_bins();
        assert_eq!(bins[data_bins[0]], data[0]);
        assert_eq!(bins[*data_bins.last().unwrap()], *data.last().unwrap());
        assert_eq!(bins[7], Complex::one()); // pilot
    }

    #[test]
    fn assemble_length_validation() {
        let e = engine();
        assert!(e
            .assemble_bins(&random_data_symbols(40, 2), &pilots())
            .is_err());
        assert!(e
            .assemble_bins(&random_data_symbols(48, 2), &[Complex::one(); 3])
            .is_err());
        assert!(e.modulate_symbol(&vec![Complex::zero(); 60]).is_err());
    }

    #[test]
    fn symbol_has_cyclic_prefix() {
        let e = engine();
        let sym = e.modulate(&random_data_symbols(48, 3), &pilots()).unwrap();
        assert_eq!(sym.len(), 80);
        // The CP is a copy of the last 16 samples.
        for t in 0..16 {
            assert!((sym[t] - sym[64 + t]).norm() < 1e-12);
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let e = engine();
        let data = random_data_symbols(48, 4);
        let sym = e.modulate(&data, &pilots()).unwrap();
        let bins = e.demodulate_standard(&sym).unwrap();
        let recovered = e.extract_data(&bins).unwrap();
        for (a, b) in recovered.iter().zip(&data) {
            assert!((*a - *b).norm() < 1e-9);
        }
        let recovered_pilots = e.extract_pilots(&bins).unwrap();
        assert_eq!(recovered_pilots.len(), 4);
        for p in recovered_pilots {
            assert!((p - Complex::one()).norm() < 1e-9);
        }
    }

    #[test]
    fn proposition_3_1_all_windows_agree_after_phase_correction() {
        // The heart of CPRecycle: in a clean channel, every FFT window inside the CP
        // gives the same subcarrier values once the phase ramp is corrected.
        let e = engine();
        let data = random_data_symbols(48, 5);
        let sym = e.modulate(&data, &pilots()).unwrap();
        let reference = e.demodulate_standard(&sym).unwrap();
        for window_start in 0..=16usize {
            let bins = e.demodulate_window(&sym, window_start).unwrap();
            for k in 0..64 {
                assert!(
                    (bins[k] - reference[k]).norm() < 1e-9,
                    "window {window_start}, bin {k}"
                );
            }
        }
    }

    #[test]
    fn uncorrected_windows_differ() {
        // Sanity check that the phase correction is actually doing something: raw FFTs
        // of different windows are NOT equal on non-DC bins.
        let e = engine();
        let data = random_data_symbols(48, 6);
        let sym = e.modulate(&data, &pilots()).unwrap();
        let plan = FftPlan::new(64);
        let w0 = plan.fft(&sym[0..64]);
        let w16 = plan.fft(&sym[16..80]);
        let diff: f64 = (0..64).map(|k| (w0[k] - w16[k]).norm_sqr()).sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn window_start_beyond_cp_is_rejected() {
        let e = engine();
        let sym = e.modulate(&random_data_symbols(48, 7), &pilots()).unwrap();
        assert!(e.demodulate_window(&sym, 17).is_err());
        assert!(e.demodulate_window(&sym[..70], 0).is_err());
    }

    #[test]
    fn segment_phase_correction_magnitudes_are_unity() {
        let e = engine();
        for shift in [0usize, 5, 16] {
            for c in e.segment_phase_correction(shift) {
                assert!((c.norm() - 1.0).abs() < 1e-12);
            }
        }
        // Zero shift is the identity correction.
        for c in e.segment_phase_correction(0) {
            assert!((c - Complex::one()).norm() < 1e-12);
        }
    }

    #[test]
    fn split_symbols_respects_bounds() {
        let samples = vec![Complex::zero(); 250];
        let syms = split_symbols(&samples, 10, 80, 10);
        assert_eq!(syms.len(), 3);
        assert_eq!(syms[0].len(), 80);
        let none = split_symbols(&samples, 240, 80, 10);
        assert!(none.is_empty());
        let limited = split_symbols(&samples, 0, 80, 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn extract_role_validates_length() {
        let e = engine();
        assert!(e.extract_data(&[Complex::zero(); 10]).is_err());
        assert!(e.extract_pilots(&[Complex::zero(); 10]).is_err());
    }
}
