//! OFDM numerology: FFT size, cyclic-prefix length, subcarrier roles and standard
//! presets.
//!
//! The presets reproduce the paper's Table 1 (cyclic-prefix size and duration across
//! 802.11 generations) plus the LTE normal/extended prefixes mentioned in §2.2; the
//! [`OfdmParams`] struct is the single numerology object every other module consumes.

use crate::{PhyError, Result};

/// Role of one subcarrier within an OFDM symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubcarrierRole {
    /// Carries constellation-mapped user data.
    Data,
    /// Carries a known pilot symbol used for residual phase tracking.
    Pilot,
    /// Transmitted empty (DC null or guard band).
    Null,
}

/// Complete OFDM numerology for one transmitter/receiver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OfdmParams {
    /// FFT size `F` (number of subcarriers including nulls).
    pub fft_size: usize,
    /// Cyclic prefix length `C` in samples.
    pub cp_len: usize,
    /// Sample rate in Hz (equal to the nominal channel bandwidth for 802.11 OFDM).
    pub sample_rate_hz: f64,
    /// Role of every subcarrier, indexed by FFT bin (bin 0 = DC, bins count upward with
    /// wrap-around; bin `F−k` is the subcarrier at −k).
    pub roles: Vec<SubcarrierRole>,
}

impl OfdmParams {
    /// Builds a parameter set after validating the numerology.
    pub fn new(
        fft_size: usize,
        cp_len: usize,
        sample_rate_hz: f64,
        roles: Vec<SubcarrierRole>,
    ) -> Result<Self> {
        if !fft_size.is_power_of_two() || fft_size < 8 {
            return Err(PhyError::invalid(
                "fft_size",
                "must be a power of two and at least 8",
            ));
        }
        if cp_len == 0 || cp_len >= fft_size {
            return Err(PhyError::invalid(
                "cp_len",
                "must be positive and smaller than the FFT size",
            ));
        }
        if sample_rate_hz <= 0.0 {
            return Err(PhyError::invalid("sample_rate_hz", "must be positive"));
        }
        if roles.len() != fft_size {
            return Err(PhyError::LengthMismatch {
                expected: fft_size,
                actual: roles.len(),
            });
        }
        if !roles.contains(&SubcarrierRole::Data) {
            return Err(PhyError::invalid(
                "roles",
                "at least one data subcarrier required",
            ));
        }
        Ok(OfdmParams {
            fft_size,
            cp_len,
            sample_rate_hz,
            roles,
        })
    }

    /// The IEEE 802.11a/g 20 MHz numerology used throughout the paper's experiments:
    /// 64 subcarriers at 312.5 kHz spacing, 16-sample (0.8 µs) cyclic prefix, 48 data
    /// subcarriers, 4 pilots (±7, ±21), DC null and 11 guard subcarriers.
    pub fn ieee80211ag() -> Self {
        let fft_size = 64usize;
        let mut roles = vec![SubcarrierRole::Null; fft_size];
        // Occupied subcarriers are −26..−1 and 1..26 (bins 38..63 and 1..26).
        for k in 1..=26usize {
            roles[k] = SubcarrierRole::Data;
            roles[fft_size - k] = SubcarrierRole::Data;
        }
        // Pilots at ±7 and ±21.
        for k in [7usize, 21] {
            roles[k] = SubcarrierRole::Pilot;
            roles[fft_size - k] = SubcarrierRole::Pilot;
        }
        OfdmParams {
            fft_size,
            cp_len: 16,
            sample_rate_hz: 20e6,
            roles,
        }
    }

    /// 802.11n/ac 40 MHz numerology (128-point FFT). `short_gi` selects the 16-sample
    /// short guard interval instead of the default 32 samples.
    pub fn ieee80211n_40mhz(short_gi: bool) -> Self {
        Self::wideband_80211(128, if short_gi { 16 } else { 32 }, 40e6)
    }

    /// 802.11n/ac 80 MHz numerology (256-point FFT).
    pub fn ieee80211ac_80mhz(short_gi: bool) -> Self {
        Self::wideband_80211(256, if short_gi { 32 } else { 64 }, 80e6)
    }

    /// 802.11n/ac 160 MHz numerology (512-point FFT).
    pub fn ieee80211ac_160mhz(short_gi: bool) -> Self {
        Self::wideband_80211(512, if short_gi { 64 } else { 128 }, 160e6)
    }

    /// LTE 20 MHz numerology with the normal cyclic prefix (~4.7 µs) discussed in §2.2.
    /// Subcarrier roles follow the simplified pattern of 1200 occupied subcarriers out
    /// of a 2048-point FFT (no per-RS pilot modelling; pilots every 6th subcarrier).
    pub fn lte_20mhz_normal_cp() -> Self {
        Self::lte_like(2048, 144, 30.72e6)
    }

    /// LTE 20 MHz numerology with the extended cyclic prefix (~16.7 µs).
    pub fn lte_20mhz_extended_cp() -> Self {
        Self::lte_like(2048, 512, 30.72e6)
    }

    fn wideband_80211(fft_size: usize, cp_len: usize, sample_rate_hz: f64) -> Self {
        // Simplified wideband role map: ~81% of bins occupied, pilots every 20 data
        // bins, DC and band edges null — enough structure for the CP-scaling analysis in
        // Table 1 without reproducing every 802.11n tone map detail.
        let mut roles = vec![SubcarrierRole::Null; fft_size];
        let occupied = (fft_size * 13) / 16; // e.g. 104 of 128
        let half = occupied / 2;
        for k in 1..=half {
            roles[k] = if k % 20 == 7 {
                SubcarrierRole::Pilot
            } else {
                SubcarrierRole::Data
            };
            roles[fft_size - k] = if k % 20 == 14 {
                SubcarrierRole::Pilot
            } else {
                SubcarrierRole::Data
            };
        }
        OfdmParams {
            fft_size,
            cp_len,
            sample_rate_hz,
            roles,
        }
    }

    fn lte_like(fft_size: usize, cp_len: usize, sample_rate_hz: f64) -> Self {
        let mut roles = vec![SubcarrierRole::Null; fft_size];
        let half = 600usize;
        for k in 1..=half {
            let role = if k % 6 == 3 {
                SubcarrierRole::Pilot
            } else {
                SubcarrierRole::Data
            };
            roles[k] = role;
            roles[fft_size - k] = role;
        }
        OfdmParams {
            fft_size,
            cp_len,
            sample_rate_hz,
            roles,
        }
    }

    /// Number of samples in one OFDM symbol including its cyclic prefix.
    #[inline]
    pub fn symbol_len(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// Duration of one OFDM symbol (with CP) in seconds.
    pub fn symbol_duration_s(&self) -> f64 {
        self.symbol_len() as f64 / self.sample_rate_hz
    }

    /// Duration of the cyclic prefix in seconds.
    pub fn cp_duration_s(&self) -> f64 {
        self.cp_len as f64 / self.sample_rate_hz
    }

    /// Subcarrier spacing in Hz.
    pub fn subcarrier_spacing_hz(&self) -> f64 {
        self.sample_rate_hz / self.fft_size as f64
    }

    /// FFT-bin indices of the data subcarriers, in increasing bin order.
    pub fn data_bins(&self) -> Vec<usize> {
        self.bins_with_role(SubcarrierRole::Data)
    }

    /// FFT-bin indices of the pilot subcarriers, in increasing bin order.
    pub fn pilot_bins(&self) -> Vec<usize> {
        self.bins_with_role(SubcarrierRole::Pilot)
    }

    /// FFT-bin indices of all occupied (data or pilot) subcarriers.
    pub fn occupied_bins(&self) -> Vec<usize> {
        (0..self.fft_size)
            .filter(|k| self.roles[*k] != SubcarrierRole::Null)
            .collect()
    }

    /// Number of data subcarriers per symbol.
    pub fn num_data_subcarriers(&self) -> usize {
        self.data_bins().len()
    }

    fn bins_with_role(&self, role: SubcarrierRole) -> Vec<usize> {
        (0..self.fft_size)
            .filter(|k| self.roles[*k] == role)
            .collect()
    }

    /// Fraction of the symbol duration consumed by the cyclic prefix (the overhead the
    /// paper quotes as ~20 % for 802.11 and ~7 % for LTE normal CP).
    pub fn cp_overhead(&self) -> f64 {
        self.cp_len as f64 / self.symbol_len() as f64
    }
}

/// One row of the paper's Table 1 ("Cyclic Prefix in 802.11 standards").
#[derive(Debug, Clone, PartialEq)]
pub struct CpTableRow {
    /// Standard name (e.g. "802.11a/g").
    pub standard: &'static str,
    /// Channel bandwidth in MHz.
    pub bandwidth_mhz: f64,
    /// FFT size.
    pub fft_size: usize,
    /// Long-guard-interval CP size in samples.
    pub cp_long: usize,
    /// Short-guard-interval CP size in samples (None where the standard defines only one).
    pub cp_short: Option<usize>,
    /// Long-GI CP duration in microseconds.
    pub duration_long_us: f64,
    /// Short-GI CP duration in microseconds (None where not defined).
    pub duration_short_us: Option<f64>,
}

/// Regenerates the paper's Table 1 from the preset numerologies.
///
/// Durations follow the paper's convention of quoting every CP length in 802.11a/g
/// 50 ns sample periods (the table's point is that the number of CP *samples* — and so
/// the number of ISI-free samples available for recycling — grows with channel width;
/// the physically exact per-standard durations are available from
/// [`OfdmParams::cp_duration_s`]).
pub fn cp_table() -> Vec<CpTableRow> {
    let rows = [
        ("802.11a/g", OfdmParams::ieee80211ag(), None),
        (
            "802.11n/ac 40 MHz",
            OfdmParams::ieee80211n_40mhz(false),
            Some(OfdmParams::ieee80211n_40mhz(true)),
        ),
        (
            "802.11n/ac 80 MHz",
            OfdmParams::ieee80211ac_80mhz(false),
            Some(OfdmParams::ieee80211ac_80mhz(true)),
        ),
        (
            "802.11n/ac 160 MHz",
            OfdmParams::ieee80211ac_160mhz(false),
            Some(OfdmParams::ieee80211ac_160mhz(true)),
        ),
    ];
    // Legacy 802.11a/g sample period (50 ns), the unit the paper's Table 1 uses.
    let legacy_sample_us = 1.0 / 20.0;
    rows.into_iter()
        .map(|(name, long, short)| CpTableRow {
            standard: name,
            bandwidth_mhz: long.sample_rate_hz / 1e6,
            fft_size: long.fft_size,
            cp_long: long.cp_len,
            cp_short: short.as_ref().map(|s| s.cp_len),
            duration_long_us: long.cp_len as f64 * legacy_sample_us,
            duration_short_us: short.as_ref().map(|s| s.cp_len as f64 * legacy_sample_us),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee80211ag_matches_standard() {
        let p = OfdmParams::ieee80211ag();
        assert_eq!(p.fft_size, 64);
        assert_eq!(p.cp_len, 16);
        assert_eq!(p.num_data_subcarriers(), 48);
        assert_eq!(p.pilot_bins().len(), 4);
        assert_eq!(p.occupied_bins().len(), 52);
        assert_eq!(p.symbol_len(), 80);
        // 0.8 µs CP, 4 µs symbol, 312.5 kHz spacing — the numbers quoted in the paper.
        assert!((p.cp_duration_s() - 0.8e-6).abs() < 1e-12);
        assert!((p.symbol_duration_s() - 4.0e-6).abs() < 1e-12);
        assert!((p.subcarrier_spacing_hz() - 312_500.0).abs() < 1e-6);
        assert!((p.cp_overhead() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pilot_bins_are_plus_minus_7_and_21() {
        let p = OfdmParams::ieee80211ag();
        let pilots = p.pilot_bins();
        assert!(pilots.contains(&7));
        assert!(pilots.contains(&21));
        assert!(pilots.contains(&(64 - 7)));
        assert!(pilots.contains(&(64 - 21)));
    }

    #[test]
    fn dc_bin_is_null() {
        let p = OfdmParams::ieee80211ag();
        assert_eq!(p.roles[0], SubcarrierRole::Null);
        // Guard band around ±27..31 is null.
        for k in 27..=37 {
            assert_eq!(p.roles[k], SubcarrierRole::Null, "bin {k}");
        }
    }

    #[test]
    fn table1_rows_match_paper() {
        let table = cp_table();
        assert_eq!(table.len(), 4);
        // 802.11a/g: 64-point FFT, 16-sample CP, 0.8 µs.
        assert_eq!(table[0].fft_size, 64);
        assert_eq!(table[0].cp_long, 16);
        assert!((table[0].duration_long_us - 0.8).abs() < 1e-9);
        assert_eq!(table[0].cp_short, None);
        // 40 MHz: 128 FFT, 32 (16) CP, 1.6 (0.8) µs.
        assert_eq!(table[1].fft_size, 128);
        assert_eq!(table[1].cp_long, 32);
        assert_eq!(table[1].cp_short, Some(16));
        assert!((table[1].duration_long_us - 1.6).abs() < 1e-9);
        assert!((table[1].duration_short_us.unwrap() - 0.8).abs() < 1e-9);
        // 80 MHz: 256 FFT, 64 (32) CP, 3.2 (1.6) µs.
        assert_eq!(table[2].fft_size, 256);
        assert_eq!(table[2].cp_long, 64);
        assert!((table[2].duration_long_us - 3.2).abs() < 1e-9);
        // 160 MHz: 512 FFT, 128 (64) CP, 6.4 (3.2) µs.
        assert_eq!(table[3].fft_size, 512);
        assert_eq!(table[3].cp_long, 128);
        assert!((table[3].duration_long_us - 6.4).abs() < 1e-9);
        assert!((table[3].duration_short_us.unwrap() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn lte_cp_overheads_match_paper_quotes() {
        let normal = OfdmParams::lte_20mhz_normal_cp();
        let extended = OfdmParams::lte_20mhz_extended_cp();
        // Paper §2.2: normal CP ≈ 4.7 µs (~7 % overhead), extended ≈ 16.7 µs (~25 %).
        assert!((normal.cp_duration_s() * 1e6 - 4.69).abs() < 0.05);
        assert!(normal.cp_overhead() < 0.08);
        assert!((extended.cp_duration_s() * 1e6 - 16.67).abs() < 0.05);
        assert!((extended.cp_overhead() - 0.2).abs() < 0.05);
    }

    #[test]
    fn validation_rejects_bad_numerology() {
        let roles64 = vec![SubcarrierRole::Data; 64];
        assert!(OfdmParams::new(60, 16, 20e6, vec![SubcarrierRole::Data; 60]).is_err());
        assert!(OfdmParams::new(64, 0, 20e6, roles64.clone()).is_err());
        assert!(OfdmParams::new(64, 64, 20e6, roles64.clone()).is_err());
        assert!(OfdmParams::new(64, 16, 0.0, roles64.clone()).is_err());
        assert!(OfdmParams::new(64, 16, 20e6, vec![SubcarrierRole::Data; 32]).is_err());
        assert!(OfdmParams::new(64, 16, 20e6, vec![SubcarrierRole::Null; 64]).is_err());
        assert!(OfdmParams::new(64, 16, 20e6, roles64).is_ok());
    }

    #[test]
    fn wider_channels_have_more_isi_free_samples() {
        // Paper §2.2: delay spread is independent of channel width, so the number of
        // over-provisioned CP samples grows with bandwidth.
        let delay_spread_s = 200e-9;
        for (p, expect_cp) in [
            (OfdmParams::ieee80211ag(), 16),
            (OfdmParams::ieee80211n_40mhz(false), 32),
            (OfdmParams::ieee80211ac_80mhz(false), 64),
            (OfdmParams::ieee80211ac_160mhz(false), 128),
        ] {
            assert_eq!(p.cp_len, expect_cp);
            let spread_samples = (delay_spread_s * p.sample_rate_hz).ceil() as usize;
            let isi_free = p.cp_len - spread_samples;
            assert!(isi_free as f64 / p.cp_len as f64 >= 0.5);
        }
    }
}
