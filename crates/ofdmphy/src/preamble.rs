//! IEEE 802.11a/g training fields: the short training field (STF) and long training
//! field (LTF).
//!
//! The LTF matters doubly here: the standard receiver estimates the channel from it,
//! and the CPRecycle receiver additionally builds its per-subcarrier interference model
//! from the LTF's ISI-free FFT segments ("the variation of the signal in different
//! segments in this long training field is used to create the interference model",
//! paper §5.1).

use crate::params::OfdmParams;
use rfdsp::fft::FftPlan;
use rfdsp::Complex;

/// Frequency-domain short-training sequence for subcarriers −26…+26 (53 entries,
/// DC in the middle), before the √(13/6) power normalisation.
fn stf_sequence() -> Vec<Complex> {
    let p = Complex::new(1.0, 1.0);
    let m = Complex::new(-1.0, -1.0);
    let z = Complex::zero();
    let seq = vec![
        z, z, p, z, z, z, m, z, z, z, p, z, z, z, m, z, z, z, m, z, z, z, p, z, z,
        z, // −26..−1
        z, // DC
        z, z, z, m, z, z, z, m, z, z, z, p, z, z, z, p, z, z, z, p, z, z, z, p, z,
        z, // +1..+26
    ];
    let scale = (13.0f64 / 6.0).sqrt();
    seq.into_iter().map(|c| c.scale(scale)).collect()
}

/// Frequency-domain long-training sequence for subcarriers −26…+26 (53 entries,
/// DC = 0 in the middle). Values are ±1 (BPSK).
pub fn ltf_sequence() -> Vec<Complex> {
    let vals: [f64; 53] = [
        1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0,
        1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // −26..−1
        0.0, // DC
        1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0,
        -1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // +1..+26
    ];
    vals.iter().map(|v| Complex::new(*v, 0.0)).collect()
}

/// Places a −26…+26 sequence (53 entries, DC in the middle) into a 64-bin FFT-ordered
/// vector (bin 0 = DC, bins 1..26 = +1..+26, bins 38..63 = −26..−1).
pub fn sequence_to_bins(seq: &[Complex], fft_size: usize) -> Vec<Complex> {
    assert_eq!(seq.len(), 53, "802.11 training sequences span -26..+26");
    let mut bins = vec![Complex::zero(); fft_size];
    for (i, &v) in seq.iter().enumerate() {
        let k = i as isize - 26; // subcarrier index −26..+26
        if k == 0 {
            continue;
        }
        let bin = if k > 0 {
            k as usize
        } else {
            fft_size - (-k) as usize
        };
        bins[bin] = v;
    }
    bins
}

/// The frequency-domain LTF symbol in FFT bin order for the given FFT size — the known
/// reference `X_s[f]` that channel estimation and the CPRecycle interference model
/// compare received segments against.
pub fn ltf_bins(params: &OfdmParams) -> Vec<Complex> {
    sequence_to_bins(&ltf_sequence(), params.fft_size)
}

/// Period in samples of the short training symbol: the STF sequence only occupies
/// subcarriers at multiples of 4, so its IFFT repeats every `fft_size / 4` samples
/// (16 samples for 802.11a/g).
pub fn stf_period(params: &OfdmParams) -> usize {
    params.fft_size / 4
}

/// Length in samples of the short training field: ten repetitions of the short symbol
/// (160 samples for 802.11a/g, scaling with the FFT size for wider numerologies, e.g.
/// 320 samples at 40 MHz / 128-point FFT as in 802.11n).
pub fn stf_len(params: &OfdmParams) -> usize {
    10 * stf_period(params)
}

/// Length in samples of the long training field: the double guard interval followed by
/// two full long symbols (160 samples for 802.11a/g).
pub fn ltf_len(params: &OfdmParams) -> usize {
    2 * params.cp_len + 2 * params.fft_size
}

/// Offset of the LTF from the frame start (i.e. the STF length). Receivers must derive
/// their channel-estimation window from this rather than hard-coding the 802.11a/g
/// value of 160.
pub fn ltf_start_offset(params: &OfdmParams) -> usize {
    stf_len(params)
}

/// Generates the short training field: ten repetitions of the `fft_size / 4`-sample
/// short symbol (160 samples of 16-sample symbols for 802.11a/g).
pub fn generate_stf(params: &OfdmParams) -> Vec<Complex> {
    let bins = sequence_to_bins(&stf_sequence(), params.fft_size);
    let plan = FftPlan::new(params.fft_size);
    let time = plan.ifft(&bins);
    // The IFFT of the STF sequence is periodic with period fft_size/4; the STF is 2.5
    // repetitions of the full block = 10 short symbols.
    let n = stf_len(params);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(time[i % params.fft_size]);
    }
    out
}

/// Generates the 160-sample long training field: a 32-sample guard interval (the tail
/// of the long symbol, i.e. a double-length cyclic prefix) followed by two identical
/// 64-sample long training symbols.
pub fn generate_ltf(params: &OfdmParams) -> Vec<Complex> {
    let bins = ltf_bins(params);
    let plan = FftPlan::new(params.fft_size);
    let time = plan.ifft(&bins);
    let f = params.fft_size;
    let gi2 = 2 * params.cp_len;
    let mut out = Vec::with_capacity(gi2 + 2 * f);
    out.extend_from_slice(&time[f - gi2..]);
    out.extend_from_slice(&time);
    out.extend_from_slice(&time);
    out
}

/// Total preamble length in samples (STF + LTF) for the given numerology.
pub fn preamble_len(params: &OfdmParams) -> usize {
    stf_len(params) + ltf_len(params)
}

/// Generates the full 802.11a/g preamble (STF followed by LTF).
pub fn generate_preamble(params: &OfdmParams) -> Vec<Complex> {
    let mut p = generate_stf(params);
    p.extend(generate_ltf(params));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdsp::power::signal_power;

    fn params() -> OfdmParams {
        OfdmParams::ieee80211ag()
    }

    #[test]
    fn sequences_have_expected_structure() {
        let stf = stf_sequence();
        let ltf = ltf_sequence();
        assert_eq!(stf.len(), 53);
        assert_eq!(ltf.len(), 53);
        // STF occupies 12 subcarriers.
        assert_eq!(stf.iter().filter(|c| c.norm_sqr() > 0.0).count(), 12);
        // LTF occupies 52 subcarriers (every non-DC of the occupied set), all ±1.
        assert_eq!(ltf.iter().filter(|c| c.norm_sqr() > 0.0).count(), 52);
        for v in ltf.iter().filter(|c| c.norm_sqr() > 0.0) {
            assert!((v.norm() - 1.0).abs() < 1e-12);
            assert_eq!(v.im, 0.0);
        }
        // DC is null in both.
        assert_eq!(stf[26], Complex::zero());
        assert_eq!(ltf[26], Complex::zero());
    }

    #[test]
    fn sequence_to_bins_places_subcarriers() {
        let ltf = ltf_sequence();
        let bins = sequence_to_bins(&ltf, 64);
        assert_eq!(bins.len(), 64);
        assert_eq!(bins[0], Complex::zero()); // DC
                                              // Subcarrier +1 is the entry right of DC (index 27), subcarrier −1 is index 25.
        assert_eq!(bins[1], ltf[27]);
        assert_eq!(bins[63], ltf[25]);
        assert_eq!(bins[26], ltf[52]);
        assert_eq!(bins[64 - 26], ltf[0]);
        // Guard bins are empty.
        for bin in bins.iter().take(38).skip(27) {
            assert_eq!(*bin, Complex::zero());
        }
    }

    #[test]
    fn stf_is_periodic_with_period_16() {
        let stf = generate_stf(&params());
        assert_eq!(stf.len(), 160);
        for t in 0..160 - 16 {
            assert!(
                (stf[t] - stf[t + 16]).norm() < 1e-9,
                "STF not periodic at {t}"
            );
        }
        assert!(signal_power(&stf).unwrap() > 0.0);
    }

    #[test]
    fn ltf_structure_gi2_plus_two_symbols() {
        let p = params();
        let ltf = generate_ltf(&p);
        assert_eq!(ltf.len(), 160);
        // The two long symbols are identical.
        for t in 0..64 {
            assert!((ltf[32 + t] - ltf[96 + t]).norm() < 1e-9);
        }
        // The GI2 is the tail of the long symbol.
        for t in 0..32 {
            assert!((ltf[t] - ltf[32 + 32 + t]).norm() < 1e-9);
        }
    }

    #[test]
    fn ltf_symbol_demodulates_to_known_sequence() {
        let p = params();
        let ltf = generate_ltf(&p);
        let plan = FftPlan::new(p.fft_size);
        let sym = plan.fft(&ltf[32..96]);
        let expected = ltf_bins(&p);
        for k in 0..64 {
            assert!((sym[k] - expected[k]).norm() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn preamble_length_and_composition() {
        let p = params();
        let pre = generate_preamble(&p);
        assert_eq!(pre.len(), preamble_len(&p));
        assert_eq!(pre.len(), 320);
        assert_eq!(&pre[..160], &generate_stf(&p)[..]);
        assert_eq!(&pre[160..], &generate_ltf(&p)[..]);
    }

    #[test]
    fn preamble_layout_scales_with_the_numerology() {
        // The satellite fix for non-802.11a/g numerologies: STF/LTF offsets must be
        // derived, never the hard-coded 160/320 of the 20 MHz numerology.
        let ag = OfdmParams::ieee80211ag();
        assert_eq!(stf_len(&ag), 160);
        assert_eq!(ltf_len(&ag), 160);
        assert_eq!(ltf_start_offset(&ag), 160);
        for p in [
            OfdmParams::ieee80211n_40mhz(false),
            OfdmParams::ieee80211ac_80mhz(false),
        ] {
            let stf = generate_stf(&p);
            let ltf = generate_ltf(&p);
            assert_eq!(stf.len(), stf_len(&p));
            assert_eq!(ltf.len(), ltf_len(&p));
            assert_eq!(stf.len() + ltf.len(), preamble_len(&p));
            assert_eq!(ltf_start_offset(&p), stf.len());
            // The STF stays periodic with fft/4 at every numerology.
            let period = stf_period(&p);
            for t in 0..stf.len() - period {
                assert!((stf[t] - stf[t + period]).norm() < 1e-9);
            }
            // The two long symbols remain identical.
            let gi2 = 2 * p.cp_len;
            for t in 0..p.fft_size {
                assert!((ltf[gi2 + t] - ltf[gi2 + p.fft_size + t]).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn preamble_mean_power_is_close_to_unity() {
        // Both fields are normalised so the preamble power matches the data symbols
        // (52 occupied subcarriers of unit power over a 64-point IFFT → 52/64² scale in
        // time domain; what matters is STF and LTF powers agree within ~1 dB).
        let p = params();
        let stf_p = signal_power(&generate_stf(&p)).unwrap();
        let ltf_p = signal_power(&generate_ltf(&p)).unwrap();
        let ratio_db = 10.0 * (stf_p / ltf_p).log10();
        assert!(ratio_db.abs() < 1.0, "STF/LTF power ratio {ratio_db} dB");
    }
}
