//! The standard OFDM receiver — the paper's baseline.
//!
//! It does exactly what a conventional 802.11a/g receiver does: discard the cyclic
//! prefix (take the FFT window that starts right after it), equalise with the LTF
//! channel estimate, correct the common phase error from the pilots, hard-demap,
//! deinterleave, Viterbi-decode, descramble and check the FCS.
//!
//! The bit-level back end ([`decode_psdu_from_symbols`]) is deliberately independent of
//! *how* the per-subcarrier decisions were produced so the CPRecycle receiver can reuse
//! it unchanged: CPRecycle only replaces the subcarrier-decision stage.

use crate::chanest::{common_phase_correction, ChannelEstimate};
use crate::convcode::CodeRate;
use crate::crc;
use crate::frame::{parse_signal_bits, pilot_polarity_sequence, Mcs, SERVICE_BITS, TAIL_BITS};
use crate::interleaver::Interleaver;
use crate::modulation::Modulation;
use crate::ofdm::OfdmEngine;
use crate::params::OfdmParams;
use crate::preamble;
use crate::scrambler::Scrambler;
use crate::viterbi::ViterbiDecoder;
use crate::{PhyError, Result};
use obs::{NoopRecorder, Recorder, Span, StageTimer};
use rfdsp::Complex;

/// Frame metadata either decoded from the SIGNAL field or supplied by the caller
/// (genie-aided mode used by controlled experiments, where sync/SIGNAL failures would
/// otherwise confound the packet-success-rate comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// The MCS of the DATA symbols.
    pub mcs: Mcs,
    /// PSDU length in bytes (including the FCS).
    pub psdu_len: usize,
}

impl FrameInfo {
    /// Number of DATA OFDM symbols this frame carries.
    pub fn num_data_symbols(&self, params: &OfdmParams) -> usize {
        let payload_bits = SERVICE_BITS + 8 * self.psdu_len + TAIL_BITS;
        payload_bits.div_ceil(self.mcs.n_dbps(params))
    }

    /// Total frame length in samples: preamble + SIGNAL + DATA symbols. Streaming
    /// sessions use this to know where a decoded frame ends and detection of the next
    /// one should resume.
    pub fn frame_sample_len(&self, params: &OfdmParams) -> usize {
        preamble::preamble_len(params) + (1 + self.num_data_symbols(params)) * params.symbol_len()
    }
}

/// How a streaming receiver session treats its interference model across frames
/// (paper §4.3: "the interference model is constantly updated when subsequent
/// preambles are received").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelPersistence {
    /// Retrain the model from scratch on every frame's preamble — each decode is
    /// bit-for-bit identical to a batch
    /// [`decode_frame`](StandardReceiver::decode_frame)-style call, the mode the
    /// equivalence properties pin.
    #[default]
    PerFrame,
    /// Keep the model across frames and feed each new frame's LTF segments through the
    /// incremental dirty-bin `InterferenceModel::update()`: the density sharpens as
    /// preambles accumulate (`N_p` grows by 2 per frame) instead of resetting.
    /// Receivers without an interference model ignore this knob.
    Rolling,
}

impl ModelPersistence {
    /// Short label used in campaign arm labels and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModelPersistence::PerFrame => "PerFrame",
            ModelPersistence::Rolling => "Rolling",
        }
    }
}

/// A frame-level receiver that can decode frames out of a sample stream while
/// carrying per-stream state across frames.
///
/// Both [`StandardReceiver`] and `cprecycle::CpRecycleReceiver` implement this trait;
/// `cprecycle::session::RxSession` is generic over it, so one streaming session type
/// serves the whole receiver family. The per-stream state ([`FrameReceiver::Stream`])
/// holds whatever the receiver wants to persist between frames of one stream —
/// scratch buffers, and for CPRecycle the interference model under
/// [`ModelPersistence::Rolling`].
pub trait FrameReceiver {
    /// Per-stream state threaded through every decode of one session (constructed
    /// via [`new_stream`](Self::new_stream), so it may need receiver context).
    type Stream;

    /// The numerology this receiver was built for.
    fn params(&self) -> &OfdmParams;

    /// Fresh per-stream state honouring the session's persistence policy.
    fn new_stream(&self, persistence: ModelPersistence) -> Self::Stream;

    /// Marks the start of a newly detected frame, before the first decode attempt.
    ///
    /// Sessions call this exactly once per detection; receivers with cross-frame
    /// model state use it to make a retried decode of the *same* frame idempotent
    /// (a partial buffer raises `InsufficientSamples` and the session retries with
    /// more samples — the rolling model must absorb the frame's preamble once, not
    /// once per retry).
    fn begin_frame(&self, _stream: &mut Self::Stream) {}

    /// Decodes a frame starting at `frame_start` of `samples`, threading the stream
    /// state. `info: None` decodes the SIGNAL field (the over-the-air mode sessions
    /// use); an insufficient buffer must surface as
    /// [`PhyError::InsufficientSamples`] with an accurate `needed`, which is the
    /// contract sessions use to wait for exactly the right amount of further samples.
    fn decode_stream(
        &self,
        stream: &mut Self::Stream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> Result<RxFrame>;

    /// Like [`decode_stream`](Self::decode_stream), but emitting stage timings
    /// into `obs`. The default forwards to the unobserved path, so existing
    /// implementations stay valid; both in-tree receivers override it with a
    /// fully instrumented pipeline. Implementations must guarantee the decode
    /// result is bit-for-bit independent of the recorder (the observability
    /// layer's core invariant, pinned by the `obs_equivalence` tests).
    fn decode_stream_observed<O: Recorder>(
        &self,
        stream: &mut Self::Stream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        obs: &O,
    ) -> Result<RxFrame> {
        let _ = obs;
        self.decode_stream(stream, samples, frame_start, info)
    }
}

/// Result of decoding one frame.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// Frame metadata (decoded or supplied).
    pub info: FrameInfo,
    /// The decoded PSDU bytes (payload + FCS), regardless of CRC outcome.
    pub psdu: Vec<u8>,
    /// Whether the FCS check passed — the packet-success criterion of every figure.
    pub crc_ok: bool,
    /// The payload without the FCS, present only when the CRC passed.
    pub payload: Option<Vec<u8>>,
    /// Equalised data-subcarrier values per DATA symbol (48 values each), useful for
    /// EVM analysis and for the interference-power diagnostics.
    pub equalized_symbols: Vec<Vec<Complex>>,
}

/// The standard (CP-discarding) OFDM receiver.
#[derive(Debug, Clone)]
pub struct StandardReceiver {
    engine: OfdmEngine,
    viterbi: ViterbiDecoder,
}

impl StandardReceiver {
    /// Creates a receiver for the given numerology.
    pub fn new(params: OfdmParams) -> Self {
        StandardReceiver {
            engine: OfdmEngine::new(params),
            viterbi: ViterbiDecoder::new(),
        }
    }

    /// Access to the OFDM engine (shared by diagnostics).
    pub fn engine(&self) -> &OfdmEngine {
        &self.engine
    }

    /// Decodes a frame that starts at sample `frame_start` of `samples`.
    ///
    /// If `info` is `None` the SIGNAL field is decoded to obtain the MCS and length;
    /// otherwise the supplied values are used (and the SIGNAL symbol is skipped), which
    /// is how the controlled experiments isolate DATA-symbol errors.
    pub fn decode_frame(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> Result<RxFrame> {
        self.decode_frame_observed(samples, frame_start, info, &NoopRecorder)
    }

    /// [`decode_frame`](Self::decode_frame) with stage timings emitted into
    /// `obs` under the spans `("sync", "Standard")`, `("decide", "Standard")`
    /// (the per-symbol demodulate/equalise/CPE chain — the standard receiver's
    /// whole subcarrier-decision stage) and `("bits", "Standard")`. With a
    /// [`NoopRecorder`] this monomorphises to exactly the uninstrumented code.
    pub fn decode_frame_observed<O: Recorder>(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        obs: &O,
    ) -> Result<RxFrame> {
        let params = self.engine.params();
        let preamble_len = preamble::preamble_len(params);
        let sym_len = params.symbol_len();
        let ltf_start = frame_start + preamble::ltf_start_offset(params);
        let signal_start = frame_start + preamble_len;
        let data_start = signal_start + sym_len;
        if samples.len() < data_start + sym_len {
            return Err(PhyError::InsufficientSamples {
                needed: data_start + sym_len,
                available: samples.len(),
            });
        }

        // Channel estimation from the LTF, plus SIGNAL decoding when the
        // caller supplied no metadata — together the frame-acquisition stage.
        let timer = StageTimer::start(obs, Span::new("sync", "Standard"));
        let estimate = ChannelEstimate::from_ltf(&self.engine, &samples[ltf_start..signal_start])?;
        let polarity = pilot_polarity_sequence();

        // Frame metadata.
        let info = match info {
            Some(i) => i,
            None => {
                self.decode_signal(&samples[signal_start..signal_start + sym_len], &estimate)?
            }
        };
        timer.finish(obs);

        // DATA symbols.
        let num_symbols = info.num_data_symbols(params);
        let needed = data_start + num_symbols * sym_len;
        if samples.len() < needed {
            return Err(PhyError::InsufficientSamples {
                needed,
                available: samples.len(),
            });
        }

        let mut equalized_symbols = Vec::with_capacity(num_symbols);
        for s in 0..num_symbols {
            let timer = StageTimer::start(obs, Span::new("decide", "Standard"));
            let start = data_start + s * sym_len;
            let bins = self
                .engine
                .demodulate_standard(&samples[start..start + sym_len])?;
            let eq = estimate.equalize(&bins)?;
            let p = polarity[(s + 1) % polarity.len()];
            let cpe = common_phase_correction(&self.engine, &eq, p)?;
            let corrected: Vec<Complex> = eq.iter().map(|v| *v * cpe).collect();
            equalized_symbols.push(self.engine.extract_data(&corrected)?);
            timer.finish(obs);
        }

        let timer = StageTimer::start(obs, Span::new("bits", "Standard"));
        let (psdu, crc_ok) =
            decode_psdu_from_symbols(&self.viterbi, params, &equalized_symbols, info)?;
        timer.finish(obs);
        let payload = if crc_ok {
            Some(psdu[..psdu.len() - 4].to_vec())
        } else {
            None
        };
        Ok(RxFrame {
            info,
            psdu,
            crc_ok,
            payload,
            equalized_symbols,
        })
    }

    /// Decodes the SIGNAL symbol into frame metadata.
    fn decode_signal(
        &self,
        symbol_samples: &[Complex],
        estimate: &ChannelEstimate,
    ) -> Result<FrameInfo> {
        let params = self.engine.params();
        let bins = self.engine.demodulate_standard(symbol_samples)?;
        let eq = estimate.equalize(&bins)?;
        let polarity = pilot_polarity_sequence();
        let cpe = common_phase_correction(&self.engine, &eq, polarity[0])?;
        let corrected: Vec<Complex> = eq.iter().map(|v| *v * cpe).collect();
        let data = self.engine.extract_data(&corrected)?;
        let bits = Modulation::Bpsk.demap_hard_all(&data);
        let interleaver = Interleaver::new(params.num_data_subcarriers(), 1)?;
        let deinterleaved = interleaver.deinterleave(&bits)?;
        let decoded = self.viterbi.decode(&deinterleaved, CodeRate::Half)?;
        let (mcs, psdu_len) = parse_signal_bits(&decoded)?;
        if psdu_len == 0 {
            return Err(PhyError::DecodeFailure("SIGNAL length of zero".into()));
        }
        Ok(FrameInfo { mcs, psdu_len })
    }
}

impl FrameReceiver for StandardReceiver {
    /// The standard receiver keeps no cross-frame state.
    type Stream = ();

    fn params(&self) -> &OfdmParams {
        self.engine.params()
    }

    fn new_stream(&self, _persistence: ModelPersistence) -> Self::Stream {}

    fn decode_stream(
        &self,
        _stream: &mut Self::Stream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> Result<RxFrame> {
        self.decode_frame(samples, frame_start, info)
    }

    fn decode_stream_observed<O: Recorder>(
        &self,
        _stream: &mut Self::Stream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        obs: &O,
    ) -> Result<RxFrame> {
        self.decode_frame_observed(samples, frame_start, info, obs)
    }
}

/// Decodes the PSDU from per-symbol subcarrier decisions.
///
/// `symbols` holds, per DATA OFDM symbol, the 48 (equalised) data-subcarrier values in
/// increasing bin order. Every value is hard-demapped; the resulting coded bits are
/// deinterleaved, Viterbi-decoded, descrambled and the PSDU bytes extracted. Returns
/// the PSDU and whether its FCS checks out.
///
/// The CPRecycle receiver calls this with its sphere-ML decisions substituted for the
/// equalised values, so the entire bit pipeline is shared between receivers.
pub fn decode_psdu_from_symbols(
    viterbi: &ViterbiDecoder,
    params: &OfdmParams,
    symbols: &[Vec<Complex>],
    info: FrameInfo,
) -> Result<(Vec<u8>, bool)> {
    let n_cbps = info.mcs.n_cbps(params);
    let num_symbols = info.num_data_symbols(params);
    if symbols.len() < num_symbols {
        return Err(PhyError::InsufficientSamples {
            needed: num_symbols,
            available: symbols.len(),
        });
    }
    let interleaver = Interleaver::new(n_cbps, info.mcs.n_bpsc())?;
    let mut coded_bits = Vec::with_capacity(num_symbols * n_cbps);
    for sym in symbols.iter().take(num_symbols) {
        if sym.len() != params.num_data_subcarriers() {
            return Err(PhyError::LengthMismatch {
                expected: params.num_data_subcarriers(),
                actual: sym.len(),
            });
        }
        let bits = info.mcs.modulation.demap_hard_all(sym);
        coded_bits.extend(interleaver.deinterleave(&bits)?);
    }
    let decoded = viterbi.decode(&coded_bits, info.mcs.code_rate)?;

    // Descramble: recover the transmitter's scrambler state from the 7 known-zero
    // SERVICE bits, then descramble the whole DATA field.
    let mut descrambled = decoded.clone();
    if let Some(mut scrambler) =
        Scrambler::state_from_service_bits(&decoded[..7.min(decoded.len())])
    {
        scrambler.scramble_in_place(&mut descrambled);
    }

    // Extract the PSDU bytes (LSB-first within each byte).
    let mut psdu = vec![0u8; info.psdu_len];
    for (i, byte) in psdu.iter_mut().enumerate() {
        for b in 0..8 {
            let idx = SERVICE_BITS + 8 * i + b;
            if idx < descrambled.len() && descrambled[idx] == 1 {
                *byte |= 1 << b;
            }
        }
    }
    let crc_ok = crc::check_fcs(&psdu).is_some();
    Ok((psdu, crc_ok))
}

/// Error-vector-magnitude (RMS, in dB relative to unit signal power) of equalised
/// subcarrier decisions against the nearest constellation points — a handy diagnostic
/// for comparing receivers below the packet-error cliff.
///
/// Takes one flat slice of decisions (EVM is layout-independent), matching the flat
/// bin-major storage the rest of the pipeline uses; callers with per-symbol rows
/// flatten with [`flatten_symbols`] or score symbol-by-symbol.
pub fn evm_db(decisions: &[Complex], modulation: Modulation) -> f64 {
    if decisions.is_empty() {
        return f64::NEG_INFINITY;
    }
    let mut acc = 0.0;
    for v in decisions {
        let (nearest, _) = modulation.nearest_point(*v);
        acc += (*v - nearest).norm_sqr();
    }
    10.0 * (acc / decisions.len() as f64).max(1e-30).log10()
}

/// Flattens per-symbol decision rows (e.g. [`RxFrame::equalized_symbols`]) into the
/// single contiguous slice [`evm_db`] consumes.
pub fn flatten_symbols(symbols: &[Vec<Complex>]) -> Vec<Complex> {
    symbols.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Transmitter;
    use rand::{Rng, SeedableRng};
    use wirelesschan::awgn::AwgnChannel;
    use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

    fn setup() -> (Transmitter, StandardReceiver) {
        (
            Transmitter::new(OfdmParams::ieee80211ag()),
            StandardReceiver::new(OfdmParams::ieee80211ag()),
        )
    }

    fn random_payload(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn clean_channel_roundtrip_all_mcs() {
        let (tx, rx) = setup();
        let payload = random_payload(200, 1);
        for mcs in Mcs::all_80211ag() {
            let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
            let decoded = rx.decode_frame(&frame.samples, 0, None).unwrap();
            assert!(decoded.crc_ok, "{}", mcs.label());
            assert_eq!(
                decoded.payload.as_deref(),
                Some(&payload[..]),
                "{}",
                mcs.label()
            );
            assert_eq!(decoded.info.mcs, mcs);
            assert_eq!(decoded.info.psdu_len, payload.len() + 4);
        }
    }

    #[test]
    fn genie_info_path_matches_signal_path() {
        let (tx, rx) = setup();
        let payload = random_payload(100, 2);
        let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
        let frame = tx.build_frame(&payload, mcs, 0x2B).unwrap();
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let a = rx.decode_frame(&frame.samples, 0, Some(info)).unwrap();
        let b = rx.decode_frame(&frame.samples, 0, None).unwrap();
        assert!(a.crc_ok && b.crc_ok);
        assert_eq!(a.psdu, b.psdu);
    }

    #[test]
    fn decodes_through_awgn_at_high_snr() {
        let (tx, rx) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut chan = AwgnChannel::new();
        let payload = random_payload(150, 4);
        for mcs in Mcs::paper_set() {
            let frame = tx.build_frame(&payload, mcs, 0x45).unwrap();
            let mut noisy = frame.samples.clone();
            chan.add_noise_snr(&mut rng, &mut noisy, 35.0).unwrap();
            let decoded = rx.decode_frame(&noisy, 0, None).unwrap();
            assert!(decoded.crc_ok, "{}", mcs.label());
            assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
        }
    }

    #[test]
    fn decodes_through_multipath_within_cp() {
        let (tx, rx) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let payload = random_payload(120, 6);
        let pdp = PowerDelayProfile::exponential(6, 2.0).unwrap();
        let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
        let mut successes = 0;
        let trials = 10;
        for _ in 0..trials {
            let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
            let frame = tx.build_frame(&payload, mcs, 0x11).unwrap();
            let faded = chan.apply(&frame.samples);
            let decoded = rx.decode_frame(&faded, 0, None).unwrap();
            if decoded.crc_ok {
                successes += 1;
            }
        }
        // Rayleigh fading occasionally wipes out subcarriers entirely (deep fade across
        // a coded block), but most realisations must decode.
        assert!(successes >= 7, "only {successes}/{trials} packets decoded");
    }

    #[test]
    fn heavy_noise_fails_crc_not_panics() {
        let (tx, rx) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut chan = AwgnChannel::new();
        let payload = random_payload(80, 8);
        let mcs = Mcs::new(Modulation::Qam64, CodeRate::TwoThirds);
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let mut noisy = frame.samples.clone();
        chan.add_noise_snr(&mut rng, &mut noisy, -5.0).unwrap();
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let decoded = rx.decode_frame(&noisy, 0, Some(info)).unwrap();
        assert!(!decoded.crc_ok);
        assert!(decoded.payload.is_none());
    }

    #[test]
    fn frame_offset_is_respected() {
        let (tx, rx) = setup();
        let payload = random_payload(60, 9);
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let frame = tx.build_frame(&payload, mcs, 0x33).unwrap();
        let mut padded = vec![Complex::zero(); 500];
        padded.extend_from_slice(&frame.samples);
        let decoded = rx.decode_frame(&padded, 500, None).unwrap();
        assert!(decoded.crc_ok);
        assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn truncated_capture_is_an_error() {
        let (tx, rx) = setup();
        let payload = random_payload(60, 10);
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let frame = tx.build_frame(&payload, mcs, 0x33).unwrap();
        let short = &frame.samples[..400];
        assert!(rx.decode_frame(short, 0, None).is_err());
        // Enough for SIGNAL but not for all data symbols.
        let partial = &frame.samples[..600];
        assert!(rx.decode_frame(partial, 0, None).is_err());
    }

    #[test]
    fn evm_reflects_noise_level() {
        let (tx, rx) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut chan = AwgnChannel::new();
        let payload = random_payload(100, 12);
        let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let mut low_noise = frame.samples.clone();
        chan.add_noise_snr(&mut rng, &mut low_noise, 30.0).unwrap();
        let mut high_noise = frame.samples.clone();
        chan.add_noise_snr(&mut rng, &mut high_noise, 10.0).unwrap();
        let a = rx.decode_frame(&low_noise, 0, Some(info)).unwrap();
        let b = rx.decode_frame(&high_noise, 0, Some(info)).unwrap();
        let evm_low = evm_db(&flatten_symbols(&a.equalized_symbols), mcs.modulation);
        let evm_high = evm_db(&flatten_symbols(&b.equalized_symbols), mcs.modulation);
        assert!(evm_low < evm_high - 5.0, "low {evm_low} high {evm_high}");
        assert_eq!(evm_db(&[], Modulation::Qpsk), f64::NEG_INFINITY);
        // Flattening preserves per-value order within and across symbols.
        let rows = vec![vec![Complex::one()], vec![Complex::zero(), Complex::one()]];
        assert_eq!(
            flatten_symbols(&rows),
            vec![Complex::one(), Complex::zero(), Complex::one()]
        );
    }

    #[test]
    fn frame_info_length_matches_built_frames() {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        for (len, mcs) in [
            (60usize, Mcs::new(Modulation::Qpsk, CodeRate::Half)),
            (400, Mcs::new(Modulation::Qam16, CodeRate::Half)),
            (123, Mcs::new(Modulation::Qam64, CodeRate::TwoThirds)),
        ] {
            let payload = random_payload(len, len as u64);
            let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
            let info = FrameInfo {
                mcs,
                psdu_len: payload.len() + 4,
            };
            assert_eq!(info.frame_sample_len(&params), frame.samples.len(), "{len}");
            assert_eq!(info.num_data_symbols(&params), frame.num_data_symbols);
        }
    }

    #[test]
    // The standard receiver's stream state is deliberately `()` — the binding is the
    // point of the test.
    #[allow(clippy::let_unit_value)]
    fn standard_receiver_implements_frame_receiver() {
        let (tx, rx) = setup();
        let payload = random_payload(80, 21);
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let mut stream = rx.new_stream(ModelPersistence::Rolling);
        rx.begin_frame(&mut stream);
        let via_trait =
            FrameReceiver::decode_stream(&rx, &mut stream, &frame.samples, 0, None).unwrap();
        let direct = rx.decode_frame(&frame.samples, 0, None).unwrap();
        assert_eq!(via_trait.psdu, direct.psdu);
        assert!(via_trait.crc_ok);
        assert_eq!(FrameReceiver::params(&rx).fft_size, 64);
        assert_eq!(ModelPersistence::PerFrame.label(), "PerFrame");
        assert_eq!(ModelPersistence::Rolling.label(), "Rolling");
        assert_eq!(ModelPersistence::default(), ModelPersistence::PerFrame);
    }

    #[test]
    fn decode_psdu_rejects_malformed_symbol_lists() {
        let params = OfdmParams::ieee80211ag();
        let viterbi = ViterbiDecoder::new();
        let info = FrameInfo {
            mcs: Mcs::new(Modulation::Qpsk, CodeRate::Half),
            psdu_len: 50,
        };
        assert!(decode_psdu_from_symbols(&viterbi, &params, &[], info).is_err());
        let bad = vec![vec![Complex::one(); 40]; 20];
        assert!(decode_psdu_from_symbols(&viterbi, &params, &bad, info).is_err());
    }
}
