//! Packet detection, timing synchronisation and carrier-frequency-offset estimation.
//!
//! Detection uses the classic Schmidl–Cox style delay-and-correlate on the periodic
//! short training field (period 16); fine timing comes from cross-correlating with the
//! known long-training symbol; coarse and fine CFO estimates come from the phase of the
//! STF / LTF autocorrelations.
//!
//! The module has two layers:
//!
//! * [`CoarseDetector`] — the **resumable incremental core**: an `O(1)`-per-sample
//!   state machine holding the running STF autocorrelation and energy accumulators
//!   plus a short ring of recent samples. Samples are pushed one at a time, so
//!   detection works across arbitrary chunk boundaries — the streaming sessions
//!   (`cprecycle::session::RxSession`) feed it directly from their carry-over buffer.
//! * [`Synchronizer`] — the whole-buffer view: [`Synchronizer::detect`] and
//!   [`Synchronizer::detect_from`] are thin wrappers that drive a [`CoarseDetector`]
//!   over a capture and then run the fine-timing/CFO stage ([`Synchronizer::refine`]).
//!
//! The controlled experiments use genie timing (the frame start is known exactly), so
//! synchronisation errors never confound the packet-success-rate comparisons — but the
//! module is exercised by its own tests, the streaming sessions and the quickstart
//! example, since a receiver without sync would not be adoptable.

use crate::params::OfdmParams;
use crate::preamble;
use crate::{PhyError, Result};
use rfdsp::Complex;

/// Number of consecutive above-threshold metrics required before a detection fires:
/// the STF makes the delay-and-correlate metric sit near 1 for ~100 consecutive
/// samples, so requiring a short run rejects isolated noise spikes while locking on
/// to the plateau start (which coincides with the frame start to within a few
/// samples).
const SUSTAIN: usize = 8;

/// Output of frame detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Estimated index of the first STF sample.
    pub frame_start: usize,
    /// Estimated carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Peak normalised STF correlation metric (0..1), useful as a detection confidence.
    pub detection_metric: f64,
}

/// A coarse detection emitted by the incremental [`CoarseDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseDetection {
    /// Index (in the detector's sample space — see [`CoarseDetector::new`]) of the
    /// start of the sustained above-threshold plateau.
    pub start: usize,
    /// Maximum metric observed over the qualifying plateau run.
    pub metric: f64,
}

/// The resumable incremental Schmidl–Cox detector: a delay-and-correlate over the STF
/// periodicity, updated in `O(1)` per pushed sample.
///
/// The detector owns the running correlation accumulator `acc`, the running energy,
/// and a ring buffer of the last `window + period` samples — everything needed to
/// continue detection across arbitrary chunk boundaries. It performs the **same
/// floating-point operations in the same order** as a whole-buffer sweep, so a capture
/// pushed sample-by-sample yields bit-identical metrics to [`Synchronizer::detect`]
/// (which is itself implemented on top of this core).
///
/// After a detection fires the caller decides how to resume: construct a fresh
/// detector at the position where scanning should continue (the streaming session
/// resumes after the decoded frame, or a few samples past a false alarm).
#[derive(Debug, Clone)]
pub struct CoarseDetector {
    period: usize,
    window: usize,
    threshold: f64,
    /// Index (caller's sample space) of the first sample this detector consumes.
    origin: usize,
    /// Number of samples pushed so far.
    count: usize,
    /// Ring of the last `window + period + 1` samples (indexed modulo capacity).
    ring: Vec<Complex>,
    acc: Complex,
    /// Energy of the window's leading half (the samples one STF period ahead).
    energy_ahead: f64,
    /// Energy of the window's lagged half.
    energy_lag: f64,
    /// Length of the current run of consecutive above-threshold metrics.
    run: usize,
    /// Maximum metric over the current run.
    run_max: f64,
}

impl CoarseDetector {
    /// Creates a detector whose first pushed sample has index `origin` in the caller's
    /// sample space (stream-absolute for sessions, slice-relative for batch sweeps).
    pub fn new(params: &OfdmParams, threshold: f64, origin: usize) -> Self {
        let period = preamble::stf_period(params);
        let window = 3 * period; // correlation accumulation window
        CoarseDetector {
            period,
            window,
            threshold,
            origin,
            count: 0,
            ring: vec![Complex::zero(); window + period + 1],
            acc: Complex::zero(),
            energy_ahead: 0.0,
            energy_lag: 0.0,
            run: 0,
            run_max: 0.0,
        }
    }

    /// Index (caller's sample space) of the next sample this detector expects.
    pub fn position(&self) -> usize {
        self.origin + self.count
    }

    /// Number of trailing samples a caller must retain so that a detection's plateau
    /// start is always inside its buffer when [`push`](Self::push) fires: the metric
    /// for plateau start `s` is only complete once sample
    /// `s + SUSTAIN + window + period − 2` has been pushed.
    pub fn lookback(&self) -> usize {
        self.window + self.period + SUSTAIN
    }

    /// Pushes one sample; returns the coarse detection the moment a sustained
    /// above-threshold plateau completes.
    ///
    /// After a detection is returned the detector keeps accepting samples but will not
    /// fire again until the metric first drops below the threshold (the plateau must
    /// end before a new one can begin); batch wrappers stop feeding it instead.
    pub fn push(&mut self, sample: Complex) -> Option<CoarseDetection> {
        let cap = self.ring.len();
        let n = self.count;
        self.ring[n % cap] = sample;
        if n >= self.period {
            let lagged = self.ring[(n - self.period) % cap];
            self.acc += sample * lagged.conj();
            self.energy_ahead += sample.norm_sqr();
            self.energy_lag += lagged.norm_sqr();
        }
        let mut fired = None;
        if n + 1 >= self.window + self.period {
            // The metric for plateau-candidate `start` is complete. Normalising by
            // the *larger* of the two half-window energies keeps the metric ≤ 1
            // (Cauchy–Schwarz): a one-sided normaliser explodes on a burst's
            // trailing edge (large lagged energy over near-noise ahead energy) and
            // fakes plateaus there — fatal for a streaming scanner that keeps
            // hunting after each decoded frame.
            let metric = if self.energy_ahead.max(self.energy_lag) > 1e-18 {
                self.acc.norm() / self.energy_ahead.max(self.energy_lag)
            } else {
                0.0
            };
            let start = n + 1 - self.window - self.period;
            if metric > self.threshold {
                self.run += 1;
                self.run_max = self.run_max.max(metric);
                if self.run == SUSTAIN {
                    fired = Some(CoarseDetection {
                        start: self.origin + start + 1 - SUSTAIN,
                        metric: self.run_max,
                    });
                }
            } else {
                self.run = 0;
                self.run_max = 0.0;
            }
            // Retire the oldest pair so the accumulators cover the next window.
            let old_ahead = self.ring[(start + self.period) % cap];
            let old_lag = self.ring[start % cap];
            self.acc -= old_ahead * old_lag.conj();
            self.energy_ahead -= old_ahead.norm_sqr();
            self.energy_lag -= old_lag.norm_sqr();
        }
        self.count += 1;
        fired
    }
}

/// The synchroniser for one numerology.
#[derive(Debug, Clone)]
pub struct Synchronizer {
    params: OfdmParams,
    /// Time-domain reference of one 64-sample long training symbol.
    ltf_reference: Vec<Complex>,
    /// Detection threshold on the normalised STF autocorrelation.
    detection_threshold: f64,
}

impl Synchronizer {
    /// Default detection threshold on the normalised STF autocorrelation: high enough
    /// to reject noise, low enough to fire on a clean or mildly interfered preamble.
    pub const DEFAULT_THRESHOLD: f64 = 0.8;

    /// Creates a synchroniser for the given numerology with the default detection
    /// threshold.
    pub fn new(params: OfdmParams) -> Self {
        Self::with_threshold(params, Self::DEFAULT_THRESHOLD)
    }

    /// Creates a synchroniser with an explicit detection threshold — lower values
    /// trade false-alarm rate for detection under stronger interference (asynchronous
    /// interference inflates the energy normaliser, deflating the plateau metric).
    pub fn with_threshold(params: OfdmParams, detection_threshold: f64) -> Self {
        let ltf = preamble::generate_ltf(&params);
        let f = params.fft_size;
        let gi2 = 2 * params.cp_len;
        let ltf_reference = ltf[gi2..gi2 + f].to_vec();
        Synchronizer {
            params,
            ltf_reference,
            detection_threshold,
        }
    }

    /// The configured detection threshold.
    pub fn detection_threshold(&self) -> f64 {
        self.detection_threshold
    }

    /// The numerology this synchroniser was built for.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// A fresh incremental detector whose first sample has index `origin` in the
    /// caller's sample space, using this synchroniser's threshold.
    pub fn coarse_detector(&self, origin: usize) -> CoarseDetector {
        CoarseDetector::new(&self.params, self.detection_threshold, origin)
    }

    /// Detects the first frame in `samples`, returning its estimated start and CFO.
    ///
    /// Returns `Ok(None)` when no region of the capture exceeds the detection
    /// threshold (no packet present).
    pub fn detect(&self, samples: &[Complex]) -> Result<Option<SyncResult>> {
        self.detect_from(samples, 0)
    }

    /// Detects the first frame at or after `offset`, scanning `samples[offset..]`
    /// without slicing (returned indices stay relative to the full buffer) — the entry
    /// point for finding a second frame mid-buffer after a first one was decoded.
    pub fn detect_from(&self, samples: &[Complex], offset: usize) -> Result<Option<SyncResult>> {
        let preamble_len = preamble::preamble_len(&self.params);
        let min_len = preamble_len + self.params.symbol_len();
        if samples.len() < offset + min_len {
            return Err(PhyError::InsufficientSamples {
                needed: offset + min_len,
                available: samples.len(),
            });
        }
        let mut detector = self.coarse_detector(offset);
        let mut coarse = None;
        for &s in &samples[offset..] {
            if let Some(d) = detector.push(s) {
                coarse = Some(d);
                break;
            }
        }
        match coarse {
            Some(d) => self.refine(samples, d).map(Some),
            None => Ok(None),
        }
    }

    /// The fine-synchronisation stage: given a coarse STF detection, estimates the
    /// coarse CFO from the STF autocorrelation, refines the timing by
    /// cross-correlating with the known LTF symbol, and resolves the CFO ambiguity
    /// with the fine LTF estimate. Indices in `coarse` and the returned
    /// [`SyncResult::frame_start`] are relative to `samples`.
    ///
    /// Works on truncated captures (the LTF search window and CFO accumulations clamp
    /// to the available samples); streaming callers should buffer at least
    /// `coarse.start +` [`refine_lookahead`](Self::refine_lookahead) samples first so
    /// a chunked capture refines exactly like a whole one.
    pub fn refine(&self, samples: &[Complex], coarse: CoarseDetection) -> Result<SyncResult> {
        let period = preamble::stf_period(&self.params);
        let coarse_start = coarse.start;

        // Coarse CFO from the STF autocorrelation phase at the detected position.
        let mut acc = Complex::zero();
        for t in coarse_start..coarse_start + 6 * period {
            if t + period >= samples.len() {
                break;
            }
            acc += samples[t + period] * samples[t].conj();
        }
        let coarse_cfo =
            acc.arg() / (2.0 * std::f64::consts::PI * period as f64) * self.params.sample_rate_hz;

        // Fine timing: cross-correlate with the known LTF symbol around the expected
        // position (coarse + STF + GI2). The search is asymmetric: a plateau fires at
        // the first metric that clears the threshold, so a *low* threshold can fire
        // up to roughly a correlation window early (never late) — the upper margin
        // covers that bias so the true LTF stays inside the search for any threshold.
        let gi2 = 2 * self.params.cp_len;
        let f = self.params.fft_size;
        let expected_ltf = coarse_start + preamble::stf_len(&self.params) + gi2;
        let search_lo = expected_ltf.saturating_sub(24);
        let search_hi =
            (expected_ltf + 24 + 3 * period + period).min(samples.len().saturating_sub(2 * f));
        // The two long training symbols are identical, so a search window this wide
        // can contain *two* near-equal correlation peaks 64 samples apart; taking the
        // global max would randomly lock onto the second symbol. Take the earliest
        // position within a whisker of the best correlation instead.
        let mut corrs = Vec::with_capacity(search_hi.saturating_sub(search_lo) + 1);
        let mut best_corr = 0.0f64;
        for pos in search_lo..=search_hi {
            let corr = rfdsp::stats::normalized_cross_correlation(
                &samples[pos..pos + f],
                &self.ltf_reference,
            )?;
            best_corr = best_corr.max(corr);
            corrs.push(corr);
        }
        let mut best_pos = expected_ltf;
        for (i, corr) in corrs.iter().enumerate() {
            if *corr >= 0.9 * best_corr && best_corr > 0.0 {
                // Climb from the threshold crossing to the local peak: under
                // interference the 90 % crossing can sit a sample or two early, and
                // segment extraction is far less forgiving of early timing (early
                // windows reach into the previous symbol) than of late.
                let mut peak = i;
                while peak + 1 < corrs.len() && corrs[peak + 1] > corrs[peak] {
                    peak += 1;
                }
                best_pos = search_lo + peak;
                break;
            }
        }
        let frame_start = best_pos.saturating_sub(preamble::stf_len(&self.params) + gi2);

        // Fine CFO from the two identical LTF symbols (64 samples apart).
        let mut acc = Complex::zero();
        if best_pos + 2 * f <= samples.len() {
            for t in best_pos..best_pos + f {
                acc += samples[t + f] * samples[t].conj();
            }
        }
        let fine_cfo = if acc.norm_sqr() > 0.0 {
            acc.arg() / (2.0 * std::f64::consts::PI * f as f64) * self.params.sample_rate_hz
        } else {
            0.0
        };
        // The fine estimate is unambiguous only within ±(fs/2F); combine: coarse gives
        // the integer part, fine refines it.
        let cfo_hz = if fine_cfo.abs() > 0.0 {
            fine_cfo
                + ((coarse_cfo - fine_cfo) / (self.params.sample_rate_hz / f as f64)).round()
                    * (self.params.sample_rate_hz / f as f64)
        } else {
            coarse_cfo
        };

        Ok(SyncResult {
            frame_start,
            cfo_hz,
            detection_metric: coarse.metric,
        })
    }

    /// Samples needed past a coarse detection before [`refine`](Self::refine) has its
    /// full LTF search window and fine-CFO span available — the chunk-boundary
    /// invariant streaming sessions wait on so that a chunked refine is bit-identical
    /// to a whole-capture one.
    pub fn refine_lookahead(&self) -> usize {
        let gi2 = 2 * self.params.cp_len;
        let f = self.params.fft_size;
        let period = preamble::stf_period(&self.params);
        // expected_ltf offset + asymmetric search margin + the two LTF symbols the
        // fine CFO uses (mirrors the search bounds in `refine`).
        preamble::stf_len(&self.params) + gi2 + 24 + 3 * period + period + 2 * f
    }

    /// Removes a carrier frequency offset estimate from a capture (multiplies by the
    /// conjugate rotation).
    pub fn correct_cfo(&self, samples: &mut [Complex], cfo_hz: f64) {
        let step = -2.0 * std::f64::consts::PI * cfo_hz / self.params.sample_rate_hz;
        for (t, s) in samples.iter_mut().enumerate() {
            *s *= Complex::cis(step * t as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::CodeRate;
    use crate::frame::{Mcs, Transmitter};
    use crate::modulation::Modulation;
    use rand::SeedableRng;
    use wirelesschan::awgn::AwgnChannel;
    use wirelesschan::impairments::apply_cfo;

    fn build_capture(pad: usize, seed: u64, snr_db: f64, cfo_hz: f64) -> (Vec<Complex>, usize) {
        let tx = Transmitter::new(OfdmParams::ieee80211ag());
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let frame = tx.build_frame(&[0xA5; 100], mcs, 0x5D).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = rfdsp::noise::GaussianSource::new();
        let frame_power = rfdsp::power::signal_power(&frame.samples).unwrap();
        let noise_var = frame_power / rfdsp::power::db_to_lin(snr_db);
        let mut capture = g.complex_vector(&mut rng, pad, noise_var);
        let mut body = frame.samples.clone();
        if cfo_hz != 0.0 {
            apply_cfo(&mut body, cfo_hz, 20e6).unwrap();
        }
        capture.extend(body);
        capture.extend(g.complex_vector(&mut rng, 200, noise_var));
        let mut chan = AwgnChannel::new();
        chan.add_noise_variance(&mut rng, &mut capture, noise_var)
            .unwrap();
        (capture, pad)
    }

    #[test]
    fn detects_frame_start_within_cp_tolerance() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        for (pad, seed) in [(400usize, 1u64), (1000, 2), (123, 3)] {
            let (capture, true_start) = build_capture(pad, seed, 25.0, 0.0);
            let result = sync.detect(&capture).unwrap().expect("frame detected");
            let err = result.frame_start as isize - true_start as isize;
            assert!(err.abs() <= 8, "timing error {err} at pad {pad}");
            assert!(result.detection_metric > 0.8);
        }
    }

    #[test]
    fn estimates_cfo() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        for cfo in [-60_000.0, 30_000.0, 100_000.0] {
            let (capture, _) = build_capture(600, 4, 30.0, cfo);
            let result = sync.detect(&capture).unwrap().expect("frame detected");
            assert!(
                (result.cfo_hz - cfo).abs() < 3_000.0,
                "cfo {cfo} estimated {}",
                result.cfo_hz
            );
        }
    }

    #[test]
    fn cfo_correction_enables_decoding() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let rx = crate::rx::StandardReceiver::new(OfdmParams::ieee80211ag());
        let (mut capture, _) = build_capture(500, 5, 30.0, 80_000.0);
        let result = sync.detect(&capture).unwrap().expect("frame detected");
        sync.correct_cfo(&mut capture, result.cfo_hz);
        // Allow a small residual timing error by decoding at the estimated start.
        let decoded = rx.decode_frame(&capture, result.frame_start, None);
        // With CFO corrected the SIGNAL field should parse; CRC may still fail if the
        // timing estimate is at the edge of the CP, so only require successful parsing.
        assert!(decoded.is_ok());
    }

    #[test]
    fn no_frame_returns_none() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut g = rfdsp::noise::GaussianSource::new();
        let noise = g.complex_vector(&mut rng, 2000, 1.0);
        assert!(sync.detect(&noise).unwrap().is_none());
    }

    #[test]
    fn short_capture_is_an_error() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let samples = vec![Complex::zero(); 100];
        assert!(sync.detect(&samples).is_err());
        // detect_from applies the same minimum to the scanned tail.
        let longer = vec![Complex::zero(); 600];
        assert!(sync.detect_from(&longer, 300).is_err());
    }

    #[test]
    fn threshold_is_a_constructor_parameter() {
        let params = OfdmParams::ieee80211ag();
        let default = Synchronizer::new(params.clone());
        assert_eq!(
            default.detection_threshold(),
            Synchronizer::DEFAULT_THRESHOLD
        );
        let loose = Synchronizer::with_threshold(params, 0.55);
        assert_eq!(loose.detection_threshold(), 0.55);
        // A tighter threshold must never fire where the default does not: a clean
        // capture is detected by both.
        let (capture, _) = build_capture(300, 9, 30.0, 0.0);
        assert!(loose.detect(&capture).unwrap().is_some());
    }

    #[test]
    fn detect_from_finds_a_second_frame_mid_buffer() {
        // Two frames in one capture, separated by a noise gap: `detect` locks to the
        // first; `detect_from` past the first frame finds the second without slicing
        // (so the returned start indexes the full buffer).
        let tx = Transmitter::new(OfdmParams::ieee80211ag());
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let frame1 = tx.build_frame(&[0x11; 60], mcs, 0x5D).unwrap();
        let frame2 = tx.build_frame(&[0x22; 60], mcs, 0x2B).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut g = rfdsp::noise::GaussianSource::new();
        let p = rfdsp::power::signal_power(&frame1.samples).unwrap();
        let noise_var = p / rfdsp::power::db_to_lin(30.0);
        let mut capture = g.complex_vector(&mut rng, 400, noise_var);
        capture.extend_from_slice(&frame1.samples);
        let second_start = capture.len() + 350;
        capture.extend(g.complex_vector(&mut rng, 350, noise_var));
        capture.extend_from_slice(&frame2.samples);
        capture.extend(g.complex_vector(&mut rng, 250, noise_var));
        let mut chan = AwgnChannel::new();
        chan.add_noise_variance(&mut rng, &mut capture, noise_var)
            .unwrap();

        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let first = sync.detect(&capture).unwrap().expect("first frame");
        assert!((first.frame_start as isize - 400).abs() <= 8);
        let resume = first.frame_start + frame1.samples.len();
        let second = sync
            .detect_from(&capture, resume)
            .unwrap()
            .expect("second frame");
        let err = second.frame_start as isize - second_start as isize;
        assert!(err.abs() <= 8, "second-frame timing error {err}");
        // And detect_from at 0 reproduces detect exactly.
        let again = sync.detect_from(&capture, 0).unwrap().unwrap();
        assert_eq!(again, first);
    }

    #[test]
    fn incremental_detector_matches_batch_across_chunk_boundaries() {
        // The chunk-boundary invariant: pushing the capture one sample at a time must
        // fire at exactly the coarse start the batch sweep finds, with the same metric
        // bits — the property the streaming sessions rely on.
        let params = OfdmParams::ieee80211ag();
        let sync = Synchronizer::new(params.clone());
        let (capture, _) = build_capture(700, 8, 25.0, 0.0);
        let batch = sync.detect(&capture).unwrap().expect("frame detected");

        let mut detector = sync.coarse_detector(0);
        let mut fired = None;
        for &s in &capture {
            if let Some(d) = detector.push(s) {
                fired = Some(d);
                break;
            }
        }
        let d = fired.expect("incremental detection");
        assert_eq!(d.metric.to_bits(), batch.detection_metric.to_bits());
        let refined = sync.refine(&capture, d).unwrap();
        assert_eq!(refined, batch);
    }

    #[test]
    fn detector_position_and_lookback_are_consistent() {
        let params = OfdmParams::ieee80211ag();
        let mut det = CoarseDetector::new(&params, 0.8, 1000);
        assert_eq!(det.position(), 1000);
        det.push(Complex::zero());
        assert_eq!(det.position(), 1001);
        // Lookback covers the full metric window plus the sustain run.
        assert!(
            det.lookback() >= 3 * preamble::stf_period(&params) + preamble::stf_period(&params)
        );
    }
}
