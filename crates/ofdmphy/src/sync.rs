//! Packet detection, timing synchronisation and carrier-frequency-offset estimation.
//!
//! Detection uses the classic Schmidl–Cox style delay-and-correlate on the periodic
//! short training field (period 16); fine timing comes from cross-correlating with the
//! known long-training symbol; coarse and fine CFO estimates come from the phase of the
//! STF / LTF autocorrelations. The controlled experiments use genie timing (the frame
//! start is known exactly), so synchronisation errors never confound the
//! packet-success-rate comparisons — but the module is exercised by its own tests and by
//! the quickstart example, since a receiver without sync would not be adoptable.

use crate::params::OfdmParams;
use crate::preamble;
use crate::{PhyError, Result};
use rfdsp::Complex;

/// Output of frame detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Estimated index of the first STF sample.
    pub frame_start: usize,
    /// Estimated carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Peak normalised STF correlation metric (0..1), useful as a detection confidence.
    pub detection_metric: f64,
}

/// The synchroniser for one numerology.
#[derive(Debug, Clone)]
pub struct Synchronizer {
    params: OfdmParams,
    /// Time-domain reference of one 64-sample long training symbol.
    ltf_reference: Vec<Complex>,
    /// Detection threshold on the normalised STF autocorrelation (default 0.8).
    pub detection_threshold: f64,
}

impl Synchronizer {
    /// Creates a synchroniser for the given numerology.
    pub fn new(params: OfdmParams) -> Self {
        let ltf = preamble::generate_ltf(&params);
        let f = params.fft_size;
        let gi2 = 2 * params.cp_len;
        let ltf_reference = ltf[gi2..gi2 + f].to_vec();
        Synchronizer {
            params,
            ltf_reference,
            detection_threshold: 0.8,
        }
    }

    /// Detects a frame in `samples`, returning its estimated start and CFO.
    ///
    /// Returns `Ok(None)` when no region of the capture exceeds the detection
    /// threshold (no packet present).
    pub fn detect(&self, samples: &[Complex]) -> Result<Option<SyncResult>> {
        let period = preamble::stf_period(&self.params);
        let window = 3 * period; // correlation accumulation window
        let preamble_len = preamble::preamble_len(&self.params);
        if samples.len() < preamble_len + self.params.symbol_len() {
            return Err(PhyError::InsufficientSamples {
                needed: preamble_len + self.params.symbol_len(),
                available: samples.len(),
            });
        }

        // Delay-and-correlate over the STF periodicity.
        let mut best_metric = 0.0f64;
        let mut coarse_start = None;
        let mut acc = Complex::zero();
        let mut energy = 0.0f64;
        // Initialise the running sums for position 0.
        for t in 0..window {
            acc += samples[t + period] * samples[t].conj();
            energy += samples[t + period].norm_sqr();
        }
        let limit = samples.len() - window - period - 1;
        let mut metrics = vec![0.0f64; limit + 1];
        metrics[0] = if energy > 1e-18 {
            acc.norm() / energy
        } else {
            0.0
        };
        for (start, metric) in metrics.iter_mut().enumerate().take(limit + 1).skip(1) {
            let drop = start - 1;
            acc -= samples[drop + period] * samples[drop].conj();
            energy -= samples[drop + period].norm_sqr();
            let add = start + window - 1;
            acc += samples[add + period] * samples[add].conj();
            energy += samples[add + period].norm_sqr();
            *metric = if energy > 1e-18 {
                acc.norm() / energy
            } else {
                0.0
            };
        }
        // Find the beginning of the first sustained plateau above the threshold: the
        // STF makes the metric sit near 1 for ~100 consecutive samples, so requiring a
        // short run rejects isolated noise spikes while locking on to the plateau start
        // (which coincides with the frame start to within a few samples).
        const SUSTAIN: usize = 8;
        for start in 0..metrics.len().saturating_sub(SUSTAIN) {
            if metrics[start..start + SUSTAIN]
                .iter()
                .all(|m| *m > self.detection_threshold)
            {
                coarse_start = Some(start);
                best_metric = metrics[start..start + SUSTAIN]
                    .iter()
                    .fold(0.0f64, |a, b| a.max(*b));
                break;
            }
        }
        let coarse = match coarse_start {
            Some(c) => c,
            None => return Ok(None),
        };

        // Coarse CFO from the STF autocorrelation phase at the detected position.
        let mut acc = Complex::zero();
        for t in coarse..coarse + 6 * period {
            if t + period >= samples.len() {
                break;
            }
            acc += samples[t + period] * samples[t].conj();
        }
        let coarse_cfo =
            acc.arg() / (2.0 * std::f64::consts::PI * period as f64) * self.params.sample_rate_hz;

        // Fine timing: cross-correlate with the known LTF symbol around the expected
        // position (coarse + STF + GI2).
        let gi2 = 2 * self.params.cp_len;
        let f = self.params.fft_size;
        let expected_ltf = coarse + preamble::stf_len(&self.params) + gi2;
        let search_lo = expected_ltf.saturating_sub(24);
        let search_hi = (expected_ltf + 24).min(samples.len().saturating_sub(2 * f));
        let mut best_corr = 0.0;
        let mut best_pos = expected_ltf;
        for pos in search_lo..=search_hi {
            let corr = rfdsp::stats::normalized_cross_correlation(
                &samples[pos..pos + f],
                &self.ltf_reference,
            )?;
            if corr > best_corr {
                best_corr = corr;
                best_pos = pos;
            }
        }
        let frame_start = best_pos.saturating_sub(preamble::stf_len(&self.params) + gi2);

        // Fine CFO from the two identical LTF symbols (64 samples apart).
        let mut acc = Complex::zero();
        if best_pos + 2 * f <= samples.len() {
            for t in best_pos..best_pos + f {
                acc += samples[t + f] * samples[t].conj();
            }
        }
        let fine_cfo = if acc.norm_sqr() > 0.0 {
            acc.arg() / (2.0 * std::f64::consts::PI * f as f64) * self.params.sample_rate_hz
        } else {
            0.0
        };
        // The fine estimate is unambiguous only within ±(fs/2F); combine: coarse gives
        // the integer part, fine refines it.
        let cfo_hz = if fine_cfo.abs() > 0.0 {
            fine_cfo
                + ((coarse_cfo - fine_cfo) / (self.params.sample_rate_hz / f as f64)).round()
                    * (self.params.sample_rate_hz / f as f64)
        } else {
            coarse_cfo
        };

        Ok(Some(SyncResult {
            frame_start,
            cfo_hz,
            detection_metric: best_metric,
        }))
    }

    /// Removes a carrier frequency offset estimate from a capture (multiplies by the
    /// conjugate rotation).
    pub fn correct_cfo(&self, samples: &mut [Complex], cfo_hz: f64) {
        let step = -2.0 * std::f64::consts::PI * cfo_hz / self.params.sample_rate_hz;
        for (t, s) in samples.iter_mut().enumerate() {
            *s *= Complex::cis(step * t as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::CodeRate;
    use crate::frame::{Mcs, Transmitter};
    use crate::modulation::Modulation;
    use rand::SeedableRng;
    use wirelesschan::awgn::AwgnChannel;
    use wirelesschan::impairments::apply_cfo;

    fn build_capture(pad: usize, seed: u64, snr_db: f64, cfo_hz: f64) -> (Vec<Complex>, usize) {
        let tx = Transmitter::new(OfdmParams::ieee80211ag());
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let frame = tx.build_frame(&[0xA5; 100], mcs, 0x5D).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = rfdsp::noise::GaussianSource::new();
        let frame_power = rfdsp::power::signal_power(&frame.samples).unwrap();
        let noise_var = frame_power / rfdsp::power::db_to_lin(snr_db);
        let mut capture = g.complex_vector(&mut rng, pad, noise_var);
        let mut body = frame.samples.clone();
        if cfo_hz != 0.0 {
            apply_cfo(&mut body, cfo_hz, 20e6).unwrap();
        }
        capture.extend(body);
        capture.extend(g.complex_vector(&mut rng, 200, noise_var));
        let mut chan = AwgnChannel::new();
        chan.add_noise_variance(&mut rng, &mut capture, noise_var)
            .unwrap();
        (capture, pad)
    }

    #[test]
    fn detects_frame_start_within_cp_tolerance() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        for (pad, seed) in [(400usize, 1u64), (1000, 2), (123, 3)] {
            let (capture, true_start) = build_capture(pad, seed, 25.0, 0.0);
            let result = sync.detect(&capture).unwrap().expect("frame detected");
            let err = result.frame_start as isize - true_start as isize;
            assert!(err.abs() <= 8, "timing error {err} at pad {pad}");
            assert!(result.detection_metric > 0.8);
        }
    }

    #[test]
    fn estimates_cfo() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        for cfo in [-60_000.0, 30_000.0, 100_000.0] {
            let (capture, _) = build_capture(600, 4, 30.0, cfo);
            let result = sync.detect(&capture).unwrap().expect("frame detected");
            assert!(
                (result.cfo_hz - cfo).abs() < 3_000.0,
                "cfo {cfo} estimated {}",
                result.cfo_hz
            );
        }
    }

    #[test]
    fn cfo_correction_enables_decoding() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let rx = crate::rx::StandardReceiver::new(OfdmParams::ieee80211ag());
        let (mut capture, _) = build_capture(500, 5, 30.0, 80_000.0);
        let result = sync.detect(&capture).unwrap().expect("frame detected");
        sync.correct_cfo(&mut capture, result.cfo_hz);
        // Allow a small residual timing error by decoding at the estimated start.
        let decoded = rx.decode_frame(&capture, result.frame_start, None);
        // With CFO corrected the SIGNAL field should parse; CRC may still fail if the
        // timing estimate is at the edge of the CP, so only require successful parsing.
        assert!(decoded.is_ok());
    }

    #[test]
    fn no_frame_returns_none() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut g = rfdsp::noise::GaussianSource::new();
        let noise = g.complex_vector(&mut rng, 2000, 1.0);
        assert!(sync.detect(&noise).unwrap().is_none());
    }

    #[test]
    fn short_capture_is_an_error() {
        let sync = Synchronizer::new(OfdmParams::ieee80211ag());
        let samples = vec![Complex::zero(); 100];
        assert!(sync.detect(&samples).is_err());
    }
}
