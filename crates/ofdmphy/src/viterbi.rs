//! Hard-decision Viterbi decoding of the 802.11 convolutional code.
//!
//! The decoder operates on the depunctured coded stream (erasures from puncturing are
//! simply skipped in the branch metric) and performs a full traceback. Trellis
//! transition tables are precomputed once per decoder instance; the add-compare-select
//! inner loop avoids allocation beyond the path-metric/back-pointer matrices.

use crate::convcode::{depuncture, CodeRate, G0, G1, NUM_STATES};
use crate::{PhyError, Result};

/// Precomputed trellis description: for every `(state, input_bit)` pair, the two coded
/// output bits and the successor state.
#[derive(Debug, Clone)]
struct Trellis {
    /// `outputs[state][bit] = (a, b)` coded bits.
    outputs: Vec<[(u8, u8); 2]>,
    /// `next[state][bit]` successor state.
    next: Vec<[usize; 2]>,
}

impl Trellis {
    fn new() -> Self {
        let mut outputs = vec![[(0u8, 0u8); 2]; NUM_STATES];
        let mut next = vec![[0usize; 2]; NUM_STATES];
        for state in 0..NUM_STATES {
            for bit in 0..2usize {
                let reg = ((bit as u32) << 6) | state as u32;
                let a = (reg & G0 as u32).count_ones() as u8 & 1;
                let b = (reg & G1 as u32).count_ones() as u8 & 1;
                outputs[state][bit] = (a, b);
                next[state][bit] = ((reg >> 1) & 0x3F) as usize;
            }
        }
        Trellis { outputs, next }
    }
}

/// A hard-decision Viterbi decoder for the 802.11 rate-1/2 mother code with optional
/// puncturing.
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    trellis: Trellis,
}

impl Default for ViterbiDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ViterbiDecoder {
    /// Creates a decoder (precomputes the trellis).
    pub fn new() -> Self {
        ViterbiDecoder {
            trellis: Trellis::new(),
        }
    }

    /// Decodes a punctured hard-bit stream at the given code rate.
    ///
    /// The decoder assumes the encoder started in the all-zero state (true for 802.11,
    /// where the scrambled SERVICE field is preceded by a reset encoder) and ends the
    /// traceback at the best final state; if the caller appended the standard six zero
    /// tail bits the final state is the all-zero state and the tail should be stripped
    /// from the returned bits by the caller.
    pub fn decode(&self, received: &[u8], rate: CodeRate) -> Result<Vec<u8>> {
        if received.iter().any(|b| *b > 1) {
            return Err(PhyError::invalid("received", "bit values must be 0 or 1"));
        }
        let aligned = depuncture(received, rate);
        self.decode_depunctured(&aligned)
    }

    /// Decodes a stream that is already aligned with the rate-1/2 trellis, where `None`
    /// marks an erasure (punctured position).
    pub fn decode_depunctured(&self, coded: &[Option<u8>]) -> Result<Vec<u8>> {
        if coded.len() < 2 {
            return Err(PhyError::InsufficientSamples {
                needed: 2,
                available: coded.len(),
            });
        }
        let num_steps = coded.len() / 2;
        let infinity = u32::MAX / 2;
        let mut metrics = vec![infinity; NUM_STATES];
        metrics[0] = 0;
        let mut back_pointers = vec![[0u8; NUM_STATES]; num_steps];

        let mut new_metrics = vec![infinity; NUM_STATES];
        for step in 0..num_steps {
            let obs_a = coded[2 * step];
            let obs_b = coded.get(2 * step + 1).copied().flatten();
            new_metrics.iter_mut().for_each(|m| *m = infinity);
            let mut best_prev = [0u8; NUM_STATES];
            for (state, &metric) in metrics.iter().enumerate() {
                if metric >= infinity {
                    continue;
                }
                for bit in 0..2usize {
                    let (a, b) = self.trellis.outputs[state][bit];
                    let next = self.trellis.next[state][bit];
                    let mut branch = 0u32;
                    if let Some(oa) = obs_a {
                        branch += (oa != a) as u32;
                    }
                    if let Some(ob) = obs_b {
                        branch += (ob != b) as u32;
                    }
                    let candidate = metric + branch;
                    if candidate < new_metrics[next] {
                        new_metrics[next] = candidate;
                        // The input bit is recoverable from the next state (it is the
                        // MSB of the 6-bit state), so the back pointer only needs to
                        // record the predecessor's low state bit that was shifted out.
                        best_prev[next] = ((state & 1) as u8) | ((bit as u8) << 1);
                    }
                }
            }
            back_pointers[step]
                .iter_mut()
                .zip(best_prev.iter())
                .for_each(|(dst, src)| *dst = *src);
            std::mem::swap(&mut metrics, &mut new_metrics);
        }

        // Traceback from the best final state.
        let mut state = metrics
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| **m)
            .map(|(s, _)| s)
            .unwrap_or(0);
        let mut decoded = vec![0u8; num_steps];
        for step in (0..num_steps).rev() {
            let record = back_pointers[step][state];
            let bit = (record >> 1) & 1;
            let shifted_out = record & 1;
            decoded[step] = bit;
            // Previous state: remove the input bit from the MSB and restore the bit that
            // was shifted out at the LSB end.
            state = ((state << 1) | shifted_out as usize) & 0x3F;
        }
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::{encode, encode_rate_half};
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..2u8)).collect()
    }

    /// Appends the 802.11 tail of six zero bits so the trellis terminates.
    fn with_tail(mut bits: Vec<u8>) -> Vec<u8> {
        bits.extend_from_slice(&[0; 6]);
        bits
    }

    #[test]
    fn decodes_clean_rate_half() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(200, 1));
        let coded = encode_rate_half(&data).unwrap();
        let decoded = decoder.decode(&coded, CodeRate::Half).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn decodes_clean_punctured_rates() {
        let decoder = ViterbiDecoder::new();
        for rate in [CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let data = with_tail(random_bits(240, 2));
            let coded = encode(&data, rate).unwrap();
            let decoded = decoder.decode(&coded, rate).unwrap();
            assert_eq!(decoded, data, "rate {rate:?}");
        }
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(300, 3));
        let mut coded = encode_rate_half(&data).unwrap();
        // Flip well-separated bits — comfortably within the free distance budget.
        for idx in (0..coded.len()).step_by(47) {
            coded[idx] ^= 1;
        }
        let decoded = decoder.decode(&coded, CodeRate::Half).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn corrects_errors_in_punctured_stream() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(300, 4));
        let mut coded = encode(&data, CodeRate::ThreeQuarters).unwrap();
        for idx in (0..coded.len()).step_by(97) {
            coded[idx] ^= 1;
        }
        let decoded = decoder.decode(&coded, CodeRate::ThreeQuarters).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn heavy_corruption_causes_errors_but_not_panics() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(100, 5));
        let coded = encode_rate_half(&data).unwrap();
        // Invert every second bit — far beyond correction capability.
        let corrupted: Vec<u8> = coded
            .iter()
            .enumerate()
            .map(|(i, b)| if i % 2 == 0 { b ^ 1 } else { *b })
            .collect();
        let decoded = decoder.decode(&corrupted, CodeRate::Half).unwrap();
        assert_eq!(decoded.len(), data.len());
        let errors: usize = decoded.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert!(errors > 0);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let decoder = ViterbiDecoder::new();
        assert!(decoder.decode(&[0, 1, 2, 0], CodeRate::Half).is_err());
        assert!(decoder.decode(&[], CodeRate::Half).is_err());
        assert!(decoder.decode_depunctured(&[Some(1)]).is_err());
    }

    #[test]
    fn erasures_alone_decode_to_all_zero_path_consistently() {
        let decoder = ViterbiDecoder::new();
        // A fully erased stream has no evidence; the decoder must still return a valid
        // length without panicking.
        let erased = vec![None; 40];
        let decoded = decoder.decode_depunctured(&erased).unwrap();
        assert_eq!(decoded.len(), 20);
    }

    #[test]
    fn all_zero_and_all_one_messages() {
        let decoder = ViterbiDecoder::new();
        for data in [vec![0u8; 64], with_tail(vec![1u8; 58])] {
            let coded = encode_rate_half(&data).unwrap();
            assert_eq!(decoder.decode(&coded, CodeRate::Half).unwrap(), data);
        }
    }

    #[test]
    fn long_message_roundtrip() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(4000, 6));
        let coded = encode(&data, CodeRate::TwoThirds).unwrap();
        assert_eq!(decoder.decode(&coded, CodeRate::TwoThirds).unwrap(), data);
    }
}
