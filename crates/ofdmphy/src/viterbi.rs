//! Hard-decision Viterbi decoding of the 802.11 convolutional code.
//!
//! The decoder operates on the depunctured coded stream (erasures from puncturing are
//! simply skipped in the branch metric) and performs a full traceback.
//!
//! # The butterfly add-compare-select
//!
//! The rate-1/2 mother code shifts one input bit into a 6-bit register, so successor
//! state `n` has exactly two predecessors — `2·(n mod 32)` and `2·(n mod 32) + 1` —
//! and the input bit that reaches `n` is `n div 32` (the state's MSB). The inner loop
//! exploits this: path metrics live in fixed `[u32; 64]` arrays, each step
//! deinterleaves them into even/odd predecessor planes and runs a **branchless
//! butterfly** over 32 lanes per input bit. Branch costs are computed arithmetically
//! from precomputed output-bit planes (`(output ^ observed) & mask`, with `mask = 0`
//! erasing punctured positions), and the compare-select is a `<` + conditional move —
//! no data-dependent branches anywhere, so LLVM unrolls and vectorizes the step.
//!
//! The decoder owns its traceback scratch (back-pointer matrix, depuncture buffer)
//! behind a mutex, so repeated decodes through `&self` perform **zero heap
//! allocations** after the first frame of a given size ([`ViterbiDecoder::decode_into`]
//! is the fully allocation-free entry point; the counting-allocator test in
//! `crates/core/tests/model_alloc.rs` pins this). A straightforward scalar
//! implementation is kept in the test module as the reference the butterfly is pinned
//! against, decision-for-decision.

use crate::convcode::{depuncture_into, CodeRate, G0, G1, NUM_STATES};
use crate::{PhyError, Result};
use std::sync::Mutex;

/// Half the state count — the number of butterfly lanes per input bit.
const HALF_STATES: usize = NUM_STATES / 2;

/// Path-metric "infinity": large enough to never be caught by a real path (branch
/// costs are ≤ 2 per step), small enough that accumulating further costs on top of it
/// cannot wrap a `u32`.
const INFINITY: u32 = u32::MAX / 2;

/// Precomputed trellis description.
///
/// `outputs` / `next` are the classic per-`(state, input_bit)` tables (fixed arrays —
/// no heap); the four plane pairs below are the same output bits rearranged for the
/// butterfly: plane `[bit][i]` holds the coded output of predecessor `2i` (even) or
/// `2i + 1` (odd) under input `bit`, which is exactly the operand order the
/// add-compare-select consumes.
#[derive(Debug, Clone)]
struct Trellis {
    /// `outputs[state][bit] = (a, b)` coded bits. Consumed (beyond plane
    /// construction) only by the scalar reference decoder in the test module.
    #[cfg_attr(not(test), allow(dead_code))]
    outputs: [[(u8, u8); 2]; NUM_STATES],
    /// `next[state][bit]` successor state — same test-only consumer.
    #[cfg_attr(not(test), allow(dead_code))]
    next: [[usize; 2]; NUM_STATES],
    /// First coded bit of even predecessors: `a_even[bit][i]` = A-output of `(2i, bit)`.
    a_even: [[u8; HALF_STATES]; 2],
    /// Second coded bit of even predecessors.
    b_even: [[u8; HALF_STATES]; 2],
    /// First coded bit of odd predecessors: `a_odd[bit][i]` = A-output of `(2i+1, bit)`.
    a_odd: [[u8; HALF_STATES]; 2],
    /// Second coded bit of odd predecessors.
    b_odd: [[u8; HALF_STATES]; 2],
}

impl Trellis {
    fn new() -> Self {
        let mut outputs = [[(0u8, 0u8); 2]; NUM_STATES];
        let mut next = [[0usize; 2]; NUM_STATES];
        for (state, (out, nxt)) in outputs.iter_mut().zip(next.iter_mut()).enumerate() {
            for bit in 0..2usize {
                let reg = ((bit as u32) << 6) | state as u32;
                let a = (reg & G0 as u32).count_ones() as u8 & 1;
                let b = (reg & G1 as u32).count_ones() as u8 & 1;
                out[bit] = (a, b);
                nxt[bit] = ((reg >> 1) & 0x3F) as usize;
            }
        }
        let mut a_even = [[0u8; HALF_STATES]; 2];
        let mut b_even = [[0u8; HALF_STATES]; 2];
        let mut a_odd = [[0u8; HALF_STATES]; 2];
        let mut b_odd = [[0u8; HALF_STATES]; 2];
        for bit in 0..2usize {
            for i in 0..HALF_STATES {
                let (ae, be) = outputs[2 * i][bit];
                let (ao, bo) = outputs[2 * i + 1][bit];
                a_even[bit][i] = ae;
                b_even[bit][i] = be;
                a_odd[bit][i] = ao;
                b_odd[bit][i] = bo;
            }
        }
        Trellis {
            outputs,
            next,
            a_even,
            b_even,
            a_odd,
            b_odd,
        }
    }
}

/// Reusable per-decode buffers: sized on the first frame, then stable — the capacity
/// plateaus at the longest frame decoded, and every later decode of that size (or
/// smaller) allocates nothing.
#[derive(Debug, Default)]
struct ViterbiScratch {
    /// Depunctured stream, refilled per [`ViterbiDecoder::decode_into`] call.
    depunctured: Vec<Option<u8>>,
    /// Flat back-pointer matrix, `num_steps × NUM_STATES`.
    back_pointers: Vec<u8>,
}

/// A hard-decision Viterbi decoder for the 802.11 rate-1/2 mother code with optional
/// puncturing.
#[derive(Debug)]
pub struct ViterbiDecoder {
    trellis: Trellis,
    /// Owned scratch behind a mutex so decoding stays `&self` (the receivers store the
    /// decoder in shared structs) without per-call allocation; contention is nil — one
    /// decode holds the lock at a time per decoder instance.
    scratch: Mutex<ViterbiScratch>,
}

impl Default for ViterbiDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ViterbiDecoder {
    fn clone(&self) -> Self {
        // Scratch is pure cache — a clone starts cold with the same trellis.
        ViterbiDecoder {
            trellis: self.trellis.clone(),
            scratch: Mutex::new(ViterbiScratch::default()),
        }
    }
}

impl ViterbiDecoder {
    /// Creates a decoder (precomputes the trellis).
    pub fn new() -> Self {
        ViterbiDecoder {
            trellis: Trellis::new(),
            scratch: Mutex::new(ViterbiScratch::default()),
        }
    }

    /// Decodes a punctured hard-bit stream at the given code rate.
    ///
    /// The decoder assumes the encoder started in the all-zero state (true for 802.11,
    /// where the scrambled SERVICE field is preceded by a reset encoder) and ends the
    /// traceback at the best final state; if the caller appended the standard six zero
    /// tail bits the final state is the all-zero state and the tail should be stripped
    /// from the returned bits by the caller.
    pub fn decode(&self, received: &[u8], rate: CodeRate) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.decode_into(received, rate, &mut out)?;
        Ok(out)
    }

    /// [`decode`](Self::decode) into a caller-owned buffer (cleared first) — with a
    /// warmed-up output buffer this path performs no heap allocation at all.
    pub fn decode_into(&self, received: &[u8], rate: CodeRate, out: &mut Vec<u8>) -> Result<()> {
        if received.iter().any(|b| *b > 1) {
            return Err(PhyError::invalid("received", "bit values must be 0 or 1"));
        }
        let mut scratch = self.scratch.lock().expect("viterbi scratch poisoned");
        let ViterbiScratch {
            depunctured,
            back_pointers,
        } = &mut *scratch;
        depuncture_into(received, rate, depunctured);
        decode_core(&self.trellis, depunctured, back_pointers, out)
    }

    /// Decodes a stream that is already aligned with the rate-1/2 trellis, where `None`
    /// marks an erasure (punctured position).
    pub fn decode_depunctured(&self, coded: &[Option<u8>]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut scratch = self.scratch.lock().expect("viterbi scratch poisoned");
        decode_core(&self.trellis, coded, &mut scratch.back_pointers, &mut out)?;
        Ok(out)
    }
}

/// The butterfly forward pass + traceback. Decisions are identical to the classic
/// per-state scalar loop (kept as `decode_reference` in the test module): for every
/// successor the even predecessor is considered first and the odd one replaces it only
/// on a strictly smaller metric, matching the scalar loop's ascending state order with
/// strict `<` — so ties break the same way, bit for bit.
fn decode_core(
    trellis: &Trellis,
    coded: &[Option<u8>],
    back_pointers: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<()> {
    if coded.len() < 2 {
        return Err(PhyError::InsufficientSamples {
            needed: 2,
            available: coded.len(),
        });
    }
    let num_steps = coded.len() / 2;
    let mut metrics = [INFINITY; NUM_STATES];
    metrics[0] = 0;
    back_pointers.clear();
    back_pointers.resize(num_steps * NUM_STATES, 0);

    let mut even = [0u32; HALF_STATES];
    let mut odd = [0u32; HALF_STATES];
    for (step, bp) in back_pointers.chunks_exact_mut(NUM_STATES).enumerate() {
        // Observation masks: an erasure zeroes the mask, erasing that output bit's
        // cost contribution arithmetically instead of with a branch.
        let (oa, ma) = match coded[2 * step] {
            Some(v) => (v, 1u8),
            None => (0, 0),
        };
        let (ob, mb) = match coded.get(2 * step + 1).copied().flatten() {
            Some(v) => (v, 1u8),
            None => (0, 0),
        };
        // Deinterleave predecessors: even[i] = state 2i, odd[i] = state 2i + 1.
        for i in 0..HALF_STATES {
            even[i] = metrics[2 * i];
            odd[i] = metrics[2 * i + 1];
        }
        let mut new_metrics = [0u32; NUM_STATES];
        for bit in 0..2usize {
            let ae = &trellis.a_even[bit];
            let be = &trellis.b_even[bit];
            let ao = &trellis.a_odd[bit];
            let bo = &trellis.b_odd[bit];
            let base = bit * HALF_STATES;
            for i in 0..HALF_STATES {
                let cost_even = (((ae[i] ^ oa) & ma) + ((be[i] ^ ob) & mb)) as u32;
                let cost_odd = (((ao[i] ^ oa) & ma) + ((bo[i] ^ ob) & mb)) as u32;
                let c0 = even[i] + cost_even;
                let c1 = odd[i] + cost_odd;
                let take1 = (c1 < c0) as u8;
                new_metrics[base + i] = if take1 != 0 { c1 } else { c0 };
                // The input bit is recoverable from the next state (it is the MSB of
                // the 6-bit state), so the record only needs the predecessor's low
                // state bit that was shifted out, plus the input bit.
                bp[base + i] = take1 | ((bit as u8) << 1);
            }
        }
        metrics = new_metrics;
    }

    // Traceback from the best final state (first minimum wins, as before).
    let mut state = 0usize;
    let mut best = metrics[0];
    for (s, &m) in metrics.iter().enumerate().skip(1) {
        if m < best {
            best = m;
            state = s;
        }
    }
    out.clear();
    out.resize(num_steps, 0);
    for step in (0..num_steps).rev() {
        let record = back_pointers[step * NUM_STATES + state];
        out[step] = (record >> 1) & 1;
        // Previous state: remove the input bit from the MSB and restore the bit that
        // was shifted out at the LSB end.
        state = ((state << 1) | (record & 1) as usize) & 0x3F;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::{encode, encode_rate_half};
    use rand::{Rng, SeedableRng};

    /// The pre-butterfly scalar decoder, kept verbatim as the equivalence reference:
    /// per-state iteration in ascending order, strict `<` compare, skip of
    /// unreachable states.
    fn decode_reference(trellis: &Trellis, coded: &[Option<u8>]) -> Result<Vec<u8>> {
        if coded.len() < 2 {
            return Err(PhyError::InsufficientSamples {
                needed: 2,
                available: coded.len(),
            });
        }
        let num_steps = coded.len() / 2;
        let infinity = u32::MAX / 2;
        let mut metrics = vec![infinity; NUM_STATES];
        metrics[0] = 0;
        let mut back_pointers = vec![[0u8; NUM_STATES]; num_steps];
        let mut new_metrics = vec![infinity; NUM_STATES];
        for step in 0..num_steps {
            let obs_a = coded[2 * step];
            let obs_b = coded.get(2 * step + 1).copied().flatten();
            new_metrics.iter_mut().for_each(|m| *m = infinity);
            let mut best_prev = [0u8; NUM_STATES];
            for (state, &metric) in metrics.iter().enumerate() {
                if metric >= infinity {
                    continue;
                }
                for bit in 0..2usize {
                    let (a, b) = trellis.outputs[state][bit];
                    let next = trellis.next[state][bit];
                    let mut branch = 0u32;
                    if let Some(oa) = obs_a {
                        branch += (oa != a) as u32;
                    }
                    if let Some(ob) = obs_b {
                        branch += (ob != b) as u32;
                    }
                    let candidate = metric + branch;
                    if candidate < new_metrics[next] {
                        new_metrics[next] = candidate;
                        best_prev[next] = ((state & 1) as u8) | ((bit as u8) << 1);
                    }
                }
            }
            back_pointers[step] = best_prev;
            std::mem::swap(&mut metrics, &mut new_metrics);
        }
        let mut state = metrics
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| **m)
            .map(|(s, _)| s)
            .unwrap_or(0);
        let mut decoded = vec![0u8; num_steps];
        for step in (0..num_steps).rev() {
            let record = back_pointers[step][state];
            decoded[step] = (record >> 1) & 1;
            state = ((state << 1) | (record & 1) as usize) & 0x3F;
        }
        Ok(decoded)
    }

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..2u8)).collect()
    }

    /// Appends the 802.11 tail of six zero bits so the trellis terminates.
    fn with_tail(mut bits: Vec<u8>) -> Vec<u8> {
        bits.extend_from_slice(&[0; 6]);
        bits
    }

    #[test]
    fn butterfly_matches_the_scalar_reference_decision_for_decision() {
        // Random depunctured streams with erasures and heavy corruption — well past
        // the correction capability, so the decoders are compared on arbitrary
        // tie-laden metric landscapes, not just on "both recover the message".
        let decoder = ViterbiDecoder::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..40 {
            let steps = rng.gen_range(1..120usize);
            let coded: Vec<Option<u8>> = (0..2 * steps)
                .map(|_| match rng.gen_range(0..10u8) {
                    0..=2 => None,
                    b => Some(b & 1),
                })
                .collect();
            let fast = decoder.decode_depunctured(&coded).unwrap();
            let slow = decode_reference(&decoder.trellis, &coded).unwrap();
            assert_eq!(fast, slow, "trial {trial} diverged");
        }
    }

    #[test]
    fn decode_into_reuses_caller_and_scratch_buffers() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(120, 8));
        let coded = encode_rate_half(&data).unwrap();
        let mut out = Vec::new();
        decoder
            .decode_into(&coded, CodeRate::Half, &mut out)
            .unwrap();
        assert_eq!(out, data);
        let capacity = out.capacity();
        decoder
            .decode_into(&coded, CodeRate::Half, &mut out)
            .unwrap();
        assert_eq!(out, data);
        assert_eq!(out.capacity(), capacity, "output buffer must not regrow");
    }

    #[test]
    fn decodes_clean_rate_half() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(200, 1));
        let coded = encode_rate_half(&data).unwrap();
        let decoded = decoder.decode(&coded, CodeRate::Half).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn decodes_clean_punctured_rates() {
        let decoder = ViterbiDecoder::new();
        for rate in [CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let data = with_tail(random_bits(240, 2));
            let coded = encode(&data, rate).unwrap();
            let decoded = decoder.decode(&coded, rate).unwrap();
            assert_eq!(decoded, data, "rate {rate:?}");
        }
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(300, 3));
        let mut coded = encode_rate_half(&data).unwrap();
        // Flip well-separated bits — comfortably within the free distance budget.
        for idx in (0..coded.len()).step_by(47) {
            coded[idx] ^= 1;
        }
        let decoded = decoder.decode(&coded, CodeRate::Half).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn corrects_errors_in_punctured_stream() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(300, 4));
        let mut coded = encode(&data, CodeRate::ThreeQuarters).unwrap();
        for idx in (0..coded.len()).step_by(97) {
            coded[idx] ^= 1;
        }
        let decoded = decoder.decode(&coded, CodeRate::ThreeQuarters).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn heavy_corruption_causes_errors_but_not_panics() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(100, 5));
        let coded = encode_rate_half(&data).unwrap();
        // Invert every second bit — far beyond correction capability.
        let corrupted: Vec<u8> = coded
            .iter()
            .enumerate()
            .map(|(i, b)| if i % 2 == 0 { b ^ 1 } else { *b })
            .collect();
        let decoded = decoder.decode(&corrupted, CodeRate::Half).unwrap();
        assert_eq!(decoded.len(), data.len());
        let errors: usize = decoded.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert!(errors > 0);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let decoder = ViterbiDecoder::new();
        assert!(decoder.decode(&[0, 1, 2, 0], CodeRate::Half).is_err());
        assert!(decoder.decode(&[], CodeRate::Half).is_err());
        assert!(decoder.decode_depunctured(&[Some(1)]).is_err());
    }

    #[test]
    fn erasures_alone_decode_to_all_zero_path_consistently() {
        let decoder = ViterbiDecoder::new();
        // A fully erased stream has no evidence; the decoder must still return a valid
        // length without panicking.
        let erased = vec![None; 40];
        let decoded = decoder.decode_depunctured(&erased).unwrap();
        assert_eq!(decoded.len(), 20);
    }

    #[test]
    fn all_zero_and_all_one_messages() {
        let decoder = ViterbiDecoder::new();
        for data in [vec![0u8; 64], with_tail(vec![1u8; 58])] {
            let coded = encode_rate_half(&data).unwrap();
            assert_eq!(decoder.decode(&coded, CodeRate::Half).unwrap(), data);
        }
    }

    #[test]
    fn long_message_roundtrip() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(4000, 6));
        let coded = encode(&data, CodeRate::TwoThirds).unwrap();
        assert_eq!(decoder.decode(&coded, CodeRate::TwoThirds).unwrap(), data);
    }

    #[test]
    fn cloned_decoder_decodes_identically() {
        let decoder = ViterbiDecoder::new();
        let data = with_tail(random_bits(100, 7));
        let coded = encode_rate_half(&data).unwrap();
        // Warm the original's scratch, then clone (cold scratch, same trellis).
        let first = decoder.decode(&coded, CodeRate::Half).unwrap();
        let second = decoder.clone().decode(&coded, CodeRate::Half).unwrap();
        assert_eq!(first, second);
    }
}
