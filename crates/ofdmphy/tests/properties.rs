//! Property-based tests of the 802.11a/g PHY building blocks.

use ofdmphy::convcode::{encode, CodeRate};
use ofdmphy::crc::{append_fcs, check_fcs};
use ofdmphy::interleaver::Interleaver;
use ofdmphy::modulation::Modulation;
use ofdmphy::scrambler::Scrambler;
use ofdmphy::viterbi::ViterbiDecoder;
use proptest::prelude::*;

fn bits(len: impl Into<proptest::collection::SizeRange>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scrambling is an involution: applying it twice with the same seed is identity.
    #[test]
    fn scrambler_involution(data in bits(1..512), seed in 1u8..=127) {
        let mut a = Scrambler::new(seed);
        let mut b = Scrambler::new(seed);
        let once = a.scramble(&data);
        let twice = b.scramble(&once);
        prop_assert_eq!(twice, data);
    }

    /// Encode → Viterbi-decode recovers the message at every 802.11 code rate.
    #[test]
    fn conv_code_roundtrip(mut data in bits(8..300), rate_idx in 0usize..3) {
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rate_idx];
        data.extend_from_slice(&[0; 6]); // tail to terminate the trellis
        let coded = encode(&data, rate).unwrap();
        let decoder = ViterbiDecoder::new();
        let decoded = decoder.decode(&coded, rate).unwrap();
        prop_assert_eq!(decoded, data);
    }

    /// The interleaver is a bijection: deinterleave(interleave(x)) == x.
    #[test]
    fn interleaver_bijection(seed_bits in bits(288..=288), n_bpsc_idx in 0usize..4) {
        let n_bpsc = [1usize, 2, 4, 6][n_bpsc_idx];
        let n_cbps = 48 * n_bpsc;
        let il = Interleaver::new(n_cbps, n_bpsc).unwrap();
        let block = &seed_bits[..n_cbps];
        let restored = il.deinterleave(&il.interleave(block).unwrap()).unwrap();
        prop_assert_eq!(restored, block.to_vec());
    }

    /// Constellation mapping followed by hard demapping recovers the bits for every
    /// modulation order.
    #[test]
    fn map_demap_roundtrip(data in bits(24..240), m_idx in 0usize..5) {
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64, Modulation::Qam256][m_idx];
        let n = m.bits_per_symbol();
        let usable = &data[..(data.len() / n) * n];
        prop_assume!(!usable.is_empty());
        let symbols = m.map_bits(usable).unwrap();
        prop_assert_eq!(m.demap_hard_all(&symbols), usable.to_vec());
    }

    /// The FCS accepts the original frame and rejects any single corrupted byte.
    #[test]
    fn crc_detects_single_byte_corruption(payload in prop::collection::vec(any::<u8>(), 1..256),
                                          idx in any::<prop::sample::Index>(),
                                          flip in 1u8..=255) {
        let frame = append_fcs(&payload);
        prop_assert!(check_fcs(&frame).is_some());
        let mut corrupted = frame.clone();
        let pos = idx.index(corrupted.len());
        corrupted[pos] ^= flip;
        prop_assert!(check_fcs(&corrupted).is_none());
    }
}
