//! A small, self-contained complex number type.
//!
//! The reproduction deliberately avoids external numeric crates, so baseband samples are
//! represented by this `Copy` struct of two `f64`s. The API mirrors the subset of
//! `num_complex::Complex64` that signal-processing code actually uses: arithmetic
//! operators (including mixed complex/scalar forms), conjugation, magnitude/phase,
//! polar construction and the complex exponential.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` with `f64` components.
///
/// `#[repr(C)]` guarantees the `(re, im)` field order in memory, so a slice of
/// `Complex` is a well-defined interleaved `f64` buffer — the layout the
/// runtime-detected SIMD kernels in [`crate::simd`] load directly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

/// The additive identity, `0 + 0i`.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity, `1 + 0i`.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit, `0 + 1i`.
pub const I: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity, `0 + 0i`.
    #[inline]
    pub const fn zero() -> Self {
        ZERO
    }

    /// The multiplicative identity, `1 + 0i`.
    #[inline]
    pub const fn one() -> Self {
        ONE
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        I
    }

    /// Creates a complex number from polar coordinates: `magnitude · e^{i·phase}`.
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex::new(magnitude * phase.cos(), magnitude * phase.sin())
    }

    /// Complex exponential `e^{i·theta}` (a point on the unit circle).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (absolute value) `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`; cheaper than [`Complex::norm`] because it avoids the
    /// square root, and the quantity signal-power computations actually need.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns `(magnitude, phase)` polar coordinates.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.norm(), self.arg())
    }

    /// Multiplicative inverse `1/z`. Returns `None` for (near-)zero input, where the
    /// inverse would not be finite.
    #[inline]
    pub fn inv(self) -> Option<Self> {
        let d = self.norm_sqr();
        if d == 0.0 || !d.is_finite() {
            None
        } else {
            Some(Complex::new(self.re / d, -self.im / d))
        }
    }

    /// Full complex exponential `e^z = e^{re}·(cos im + i·sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Scales the complex number by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Euclidean distance between two constellation points, `|a − b|`.
    #[inline]
    pub fn distance(self, other: Complex) -> f64 {
        (self - other).norm()
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl From<(f64, f64)> for Complex {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Complex::new(re, im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl DivAssign<f64> for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(ZERO, |acc, x| acc + *x)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    fn ccl(a: Complex, b: Complex) -> bool {
        close(a.re, b.re) && close(a.im, b.im)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 4.0);
        assert!(ccl(a + b - b, a));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, 7.0);
        // (3+2i)(1+7i) = 3 + 21i + 2i + 14i² = -11 + 23i
        assert!(ccl(a * b, Complex::new(-11.0, 23.0)));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(-1.5, 0.25);
        assert!(ccl((a * b) / b, a));
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let a = Complex::new(2.0, -5.0);
        assert_eq!(a.conj(), Complex::new(2.0, 5.0));
        assert!(close((a * a.conj()).re, a.norm_sqr()));
        assert!(close((a * a.conj()).im, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 0.7);
        let (r, th) = z.to_polar();
        assert!(close(r, 2.5));
        assert!(close(th, 0.7));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex::cis(2.0 * PI * k as f64 / 16.0);
            assert!(close(z.norm(), 1.0));
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let z = Complex::new(0.0, 1.2).exp();
        assert!(ccl(z, Complex::cis(1.2)));
    }

    #[test]
    fn inverse_multiplies_to_one() {
        let z = Complex::new(0.3, -4.0);
        let inv = z.inv().unwrap();
        assert!(ccl(z * inv, ONE));
        assert!(ZERO.inv().is_none());
    }

    #[test]
    fn scalar_operations() {
        let z = Complex::new(1.0, -1.0);
        assert!(ccl(z * 2.0, Complex::new(2.0, -2.0)));
        assert!(ccl(2.0 * z, Complex::new(2.0, -2.0)));
        assert!(ccl(z / 2.0, Complex::new(0.5, -0.5)));
        assert!(ccl(z + 1.0, Complex::new(2.0, -1.0)));
        assert!(ccl(z - 1.0, Complex::new(0.0, -1.0)));
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(1.0, 0.0);
        z -= Complex::new(0.0, 1.0);
        z *= Complex::new(0.0, 1.0);
        z /= Complex::new(0.0, 1.0);
        z *= 2.0;
        z /= 4.0;
        assert!(ccl(z, Complex::new(1.0, 0.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let xs = vec![Complex::new(1.0, 1.0); 10];
        let s: Complex = xs.iter().sum();
        assert!(ccl(s, Complex::new(10.0, 10.0)));
        let s2: Complex = xs.into_iter().sum();
        assert!(ccl(s2, Complex::new(10.0, 10.0)));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-2.0, 6.0);
        assert!(close(a.distance(b), 5.0));
        assert!(close(b.distance(a), 5.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn norm_sqr_consistent_with_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.norm(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Complex::from(2.0), Complex::new(2.0, 0.0));
        assert_eq!(Complex::from((2.0, 3.0)), Complex::new(2.0, 3.0));
    }
}
