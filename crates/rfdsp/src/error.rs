//! Error type shared by all rfdsp modules.

use std::fmt;

/// Errors produced by DSP primitives.
///
/// The library never panics on malformed caller input in release paths; instead the
/// offending call returns one of these variants so the simulation harness can surface a
/// useful message.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// An input slice had a length that the operation cannot handle
    /// (e.g. an FFT plan applied to a buffer of the wrong size).
    LengthMismatch {
        /// Length the operation expected.
        expected: usize,
        /// Length that was actually provided.
        actual: usize,
    },
    /// The operation requires a non-empty input but received an empty slice.
    EmptyInput,
    /// A numeric parameter was outside its valid domain (negative bandwidth,
    /// zero-length window, cutoff outside (0, 0.5), …).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// The requested FFT length is not supported by the chosen algorithm.
    UnsupportedLength(usize),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::EmptyInput => write!(f, "input must not be empty"),
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::UnsupportedLength(n) => {
                write!(f, "unsupported transform length {n}")
            }
        }
    }
}

impl std::error::Error for DspError {}

impl DspError {
    /// Helper for building an [`DspError::InvalidParameter`] with a formatted reason.
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        DspError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = DspError::LengthMismatch {
            expected: 64,
            actual: 60,
        };
        assert_eq!(e.to_string(), "length mismatch: expected 64, got 60");
    }

    #[test]
    fn display_empty() {
        assert_eq!(DspError::EmptyInput.to_string(), "input must not be empty");
    }

    #[test]
    fn display_invalid_parameter() {
        let e = DspError::invalid("cutoff", "must lie in (0, 0.5)");
        assert_eq!(
            e.to_string(),
            "invalid parameter `cutoff`: must lie in (0, 0.5)"
        );
    }

    #[test]
    fn display_unsupported_length() {
        assert_eq!(
            DspError::UnsupportedLength(3).to_string(),
            "unsupported transform length 3"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DspError::EmptyInput);
        assert!(e.to_string().contains("empty"));
    }
}
