//! Discrete Fourier transforms.
//!
//! OFDM modulation and demodulation reduce to repeated fixed-size FFTs (64 points for
//! 802.11a/g, up to 512 for 802.11ac, 2048 for LTE). [`FftPlan`] precomputes the
//! bit-reversal permutation and twiddle factors for one transform length and can then be
//! applied to any number of buffers without further allocation of trigonometric tables.
//!
//! Conventions (matching the paper's Eq. 1 and standard OFDM practice):
//!
//! * Forward FFT: `X[k] = Σ_t x[t]·e^{−i2πkt/N}` (no scaling).
//! * Inverse FFT: `x[t] = (1/N)·Σ_k X[k]·e^{+i2πkt/N}` (scaled by `1/N`).
//!
//! A direct `O(N²)` DFT is provided for odd or otherwise non-power-of-two lengths; it is
//! used only in tests and diagnostics, never on the per-symbol hot path.

use crate::complex::Complex;
use crate::error::DspError;
use crate::Result;

/// A reusable FFT plan for one power-of-two transform length.
///
/// The plan owns the twiddle-factor table and the bit-reversal permutation, so repeated
/// transforms only allocate their output buffer (or nothing at all when the in-place
/// entry points are used).
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Twiddles for the forward transform: `e^{-i2πk/N}` for `k = 0..N/2`.
    twiddles_fwd: Vec<Complex>,
    /// Twiddles for the inverse transform: `e^{+i2πk/N}` for `k = 0..N/2`.
    twiddles_inv: Vec<Complex>,
    /// Bit-reversal permutation indices.
    bitrev: Vec<usize>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two. Use [`dft`] for arbitrary lengths.
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let half = n / 2;
        let mut twiddles_fwd = Vec::with_capacity(half.max(1));
        let mut twiddles_inv = Vec::with_capacity(half.max(1));
        for k in 0..half.max(1) {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            twiddles_fwd.push(Complex::cis(theta));
            twiddles_inv.push(Complex::cis(-theta));
        }
        let bits = n.trailing_zeros();
        let bitrev = if bits == 0 {
            vec![0]
        } else {
            (0..n)
                .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
                .collect()
        };
        FftPlan {
            n,
            twiddles_fwd,
            twiddles_inv,
            bitrev,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the plan length is zero (never the case for a constructed plan,
    /// provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT. `buf.len()` must equal the plan length.
    pub fn fft_in_place(&self, buf: &mut [Complex]) -> Result<()> {
        self.check_len(buf)?;
        self.transform(buf, false);
        Ok(())
    }

    /// In-place inverse FFT (includes the `1/N` scaling). `buf.len()` must equal the
    /// plan length.
    pub fn ifft_in_place(&self, buf: &mut [Complex]) -> Result<()> {
        self.check_len(buf)?;
        self.transform(buf, true);
        let scale = 1.0 / self.n as f64;
        for x in buf.iter_mut() {
            *x = x.scale(scale);
        }
        Ok(())
    }

    /// Forward FFT returning a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length (this is a programming
    /// error in fixed-size OFDM code; the in-place variants return a `Result` instead).
    pub fn fft(&self, input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        self.fft_in_place(&mut buf)
            .expect("fft: input length must match plan length");
        buf
    }

    /// Inverse FFT returning a new vector (includes the `1/N` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn ifft(&self, input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        self.ifft_in_place(&mut buf)
            .expect("ifft: input length must match plan length");
        buf
    }

    fn check_len(&self, buf: &[Complex]) -> Result<()> {
        if buf.len() != self.n {
            Err(DspError::LengthMismatch {
                expected: self.n,
                actual: buf.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Iterative radix-2 decimation-in-time butterfly network.
    fn transform(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i];
            if i < j {
                buf.swap(i, j);
            }
        }
        let twiddles = if inverse {
            &self.twiddles_inv
        } else {
            &self.twiddles_fwd
        };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            let mut start = 0;
            while start < n {
                for k in 0..half {
                    let w = twiddles[k * step];
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
                start += len;
            }
            len <<= 1;
        }
    }
}

/// Direct `O(N²)` forward DFT for arbitrary lengths.
///
/// Used for validation and for the occasional odd-length diagnostic transform; OFDM hot
/// paths always use [`FftPlan`].
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::zero(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (t, x) in input.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += *x * Complex::cis(theta);
        }
        *o = acc;
    }
    out
}

/// Direct `O(N²)` inverse DFT for arbitrary lengths (includes `1/N` scaling).
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::zero(); n];
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (k, x) in input.iter().enumerate() {
            let theta = 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += *x * Complex::cis(theta);
        }
        *o = acc.scale(1.0 / n as f64);
    }
    out
}

/// Rotates (`circularly shifts`) a frequency-domain vector so that the DC bin moves to
/// the centre, mirroring the usual `fftshift` plotting convention.
pub fn fftshift<T: Copy>(input: &[T]) -> Vec<T> {
    let n = input.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&input[half..]);
    out.extend_from_slice(&input[..half]);
    out
}

/// Inverse of [`fftshift`].
pub fn ifftshift<T: Copy>(input: &[T]) -> Vec<T> {
    let n = input.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&input[half..]);
    out.extend_from_slice(&input[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).norm() < tol, "mismatch: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 16;
        let plan = FftPlan::new(n);
        let mut x = vec![Complex::zero(); n];
        x[0] = Complex::one();
        let spec = plan.fft(&x);
        for s in spec {
            assert!((s - Complex::one()).norm() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let plan = FftPlan::new(n);
        for bin in [0usize, 1, 5, 31, 32, 63] {
            let x: Vec<Complex> = (0..n)
                .map(|t| {
                    Complex::cis(2.0 * std::f64::consts::PI * bin as f64 * t as f64 / n as f64)
                })
                .collect();
            let spec = plan.fft(&x);
            for (k, s) in spec.iter().enumerate() {
                if k == bin {
                    assert!((s.norm() - n as f64).abs() < 1e-9);
                } else {
                    assert!(s.norm() < 1e-9, "leakage at bin {k} for tone {bin}");
                }
            }
        }
    }

    #[test]
    fn fft_ifft_roundtrip_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut gauss = GaussianSource::new();
        for n in [2usize, 4, 8, 64, 128, 256] {
            let plan = FftPlan::new(n);
            let x: Vec<Complex> = (0..n)
                .map(|_| gauss.complex_sample(&mut rng, 1.0))
                .collect();
            let y = plan.ifft(&plan.fft(&x));
            assert_close(&x, &y, 1e-9);
        }
    }

    #[test]
    fn matches_direct_dft() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut gauss = GaussianSource::new();
        let n = 32;
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|_| gauss.complex_sample(&mut rng, 1.0))
            .collect();
        assert_close(&plan.fft(&x), &dft(&x), 1e-9);
        assert_close(&plan.ifft(&x), &idft(&x), 1e-9);
    }

    #[test]
    fn dft_idft_roundtrip_non_power_of_two() {
        let n = 12;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::new(t as f64, -(t as f64) / 3.0))
            .collect();
        let y = idft(&dft(&x));
        assert_close(&x, &y, 1e-9);
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut gauss = GaussianSource::new();
        let n = 128;
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n)
            .map(|_| gauss.complex_sample(&mut rng, 1.0))
            .collect();
        let spec = plan.fft(&x);
        let et: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((et - ef).abs() < 1e-9 * et.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 16;
        let plan = FftPlan::new(n);
        let a: Vec<Complex> = (0..n).map(|t| Complex::new(t as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|t| Complex::new(0.0, (n - t) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = plan.fft(&a);
        let fb = plan.fft(&b);
        let fs = plan.fft(&sum);
        let fab: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fs, &fab, 1e-9);
    }

    #[test]
    fn circular_time_shift_is_phase_ramp() {
        // The property CPRecycle Proposition 3.1 relies on: a cyclic shift in time is a
        // per-bin phase rotation in frequency.
        let n = 64;
        let shift = 5usize;
        let plan = FftPlan::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut gauss = GaussianSource::new();
        let x: Vec<Complex> = (0..n)
            .map(|_| gauss.complex_sample(&mut rng, 1.0))
            .collect();
        let shifted: Vec<Complex> = (0..n).map(|t| x[(t + shift) % n]).collect();
        let fx = plan.fft(&x);
        let fs = plan.fft(&shifted);
        for k in 0..n {
            let expected =
                fx[k] * Complex::cis(2.0 * std::f64::consts::PI * (k * shift) as f64 / n as f64);
            assert!((fs[k] - expected).norm() < 1e-9);
        }
    }

    #[test]
    fn in_place_wrong_length_is_error() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::zero(); 4];
        assert_eq!(
            plan.fft_in_place(&mut buf),
            Err(DspError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        );
        assert_eq!(
            plan.ifft_in_place(&mut buf),
            Err(DspError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_plan_panics() {
        let _ = FftPlan::new(12);
    }

    #[test]
    fn length_one_plan_is_identity() {
        let plan = FftPlan::new(1);
        let x = vec![Complex::new(3.0, -2.0)];
        assert_eq!(plan.fft(&x), x);
        assert_eq!(plan.ifft(&x), x);
    }

    #[test]
    fn fftshift_roundtrip_even_and_odd() {
        let even: Vec<i32> = (0..8).collect();
        assert_eq!(ifftshift(&fftshift(&even)), even);
        assert_eq!(fftshift(&even), vec![4, 5, 6, 7, 0, 1, 2, 3]);
        let odd: Vec<i32> = (0..7).collect();
        assert_eq!(fftshift(&odd), vec![4, 5, 6, 0, 1, 2, 3]);
        assert_eq!(ifftshift(&fftshift(&odd)), odd);
    }

    #[test]
    fn plan_len_reporting() {
        let plan = FftPlan::new(64);
        assert_eq!(plan.len(), 64);
        assert!(!plan.is_empty());
    }
}
