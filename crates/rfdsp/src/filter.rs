//! FIR filter design and application.
//!
//! The channel simulator uses these filters to shape interferer spectra (transmit
//! spectral masks) and to model the imperfect front-end filtering the paper cites as one
//! cause of adjacent-channel leakage. Filters are designed with the windowed-sinc method
//! and applied by direct convolution (filter lengths here are a few tens of taps, so an
//! FFT-based convolution would not pay off).

use crate::complex::Complex;
use crate::error::DspError;
use crate::window;
use crate::Result;

/// A finite-impulse-response filter described by its real tap coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Creates a filter directly from tap coefficients.
    pub fn from_taps(taps: Vec<f64>) -> Result<Self> {
        if taps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        Ok(FirFilter { taps })
    }

    /// Designs a low-pass filter with the windowed-sinc method.
    ///
    /// * `num_taps` — filter length (odd lengths give exact linear phase with an
    ///   integer group delay; even lengths are accepted).
    /// * `cutoff` — normalised cutoff frequency in cycles/sample, in `(0, 0.5)`.
    /// * `win` — window applied to the ideal sinc response (e.g. [`window::hamming`]).
    pub fn lowpass(num_taps: usize, cutoff: f64, win: &[f64]) -> Result<Self> {
        if num_taps == 0 {
            return Err(DspError::invalid("num_taps", "must be at least 1"));
        }
        if !(0.0 < cutoff && cutoff < 0.5) {
            return Err(DspError::invalid(
                "cutoff",
                "must lie in (0, 0.5) cycles/sample",
            ));
        }
        if win.len() != num_taps {
            return Err(DspError::LengthMismatch {
                expected: num_taps,
                actual: win.len(),
            });
        }
        let center = (num_taps as f64 - 1.0) / 2.0;
        let mut taps: Vec<f64> = (0..num_taps)
            .map(|k| {
                let t = k as f64 - center;
                let sinc = if t.abs() < 1e-12 {
                    2.0 * cutoff
                } else {
                    (2.0 * std::f64::consts::PI * cutoff * t).sin() / (std::f64::consts::PI * t)
                };
                sinc * win[k]
            })
            .collect();
        // Normalise to unit DC gain.
        let dc: f64 = taps.iter().sum();
        for t in taps.iter_mut() {
            *t /= dc;
        }
        Ok(FirFilter { taps })
    }

    /// Convenience constructor: Hamming-windowed low-pass.
    pub fn lowpass_hamming(num_taps: usize, cutoff: f64) -> Result<Self> {
        Self::lowpass(num_taps, cutoff, &window::hamming(num_taps))
    }

    /// Convenience constructor: Kaiser-windowed low-pass with shape parameter `beta`.
    pub fn lowpass_kaiser(num_taps: usize, cutoff: f64, beta: f64) -> Result<Self> {
        Self::lowpass(num_taps, cutoff, &window::kaiser(num_taps, beta))
    }

    /// The filter's tap coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True if the filter has no taps (never the case for a constructed filter).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Group delay in samples for a linear-phase (symmetric) design.
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() as f64 - 1.0) / 2.0
    }

    /// Filters a complex signal, returning an output of the same length
    /// ("same" convolution: the output is aligned with the input, i.e. the group delay
    /// is compensated by truncation at both ends, zero-padding at the edges).
    pub fn filter_same(&self, x: &[Complex]) -> Vec<Complex> {
        let full = self.filter_full(x);
        let delay = (self.taps.len() - 1) / 2;
        full[delay..delay + x.len()].to_vec()
    }

    /// Full convolution: output length is `x.len() + taps.len() − 1`.
    pub fn filter_full(&self, x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        let m = self.taps.len();
        if n == 0 {
            return Vec::new();
        }
        let mut y = vec![Complex::zero(); n + m - 1];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &tj) in self.taps.iter().enumerate() {
                y[i + j] += xi.scale(tj);
            }
        }
        y
    }

    /// Frequency response of the filter evaluated at `num_points` normalised frequencies
    /// spanning `[-0.5, 0.5)` cycles/sample. Returns `(frequency, |H| in dB)` pairs.
    pub fn frequency_response_db(&self, num_points: usize) -> Vec<(f64, f64)> {
        (0..num_points)
            .map(|k| {
                let f = k as f64 / num_points as f64 - 0.5;
                let mut h = Complex::zero();
                for (n, &t) in self.taps.iter().enumerate() {
                    h += Complex::cis(-2.0 * std::f64::consts::PI * f * n as f64).scale(t);
                }
                (f, 20.0 * h.norm().max(1e-30).log10())
            })
            .collect()
    }
}

/// Applies a complex frequency shift `x[t]·e^{i2π·freq·t}` (frequency in cycles/sample).
///
/// This is how the adjacent-channel interferer is moved to its channel offset relative
/// to the receiver's centre frequency before being added to the received waveform.
pub fn frequency_shift(x: &[Complex], freq: f64) -> Vec<Complex> {
    x.iter()
        .enumerate()
        .map(|(t, v)| *v * Complex::cis(2.0 * std::f64::consts::PI * freq * t as f64))
        .collect()
}

/// Applies a frequency shift starting from an arbitrary initial sample index, so that
/// consecutive blocks of one waveform can be shifted consistently.
pub fn frequency_shift_from(x: &[Complex], freq: f64, start_index: usize) -> Vec<Complex> {
    x.iter()
        .enumerate()
        .map(|(t, v)| {
            *v * Complex::cis(2.0 * std::f64::consts::PI * freq * (t + start_index) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::signal_power;

    #[test]
    fn from_taps_rejects_empty() {
        assert!(FirFilter::from_taps(vec![]).is_err());
        assert!(FirFilter::from_taps(vec![1.0]).is_ok());
    }

    #[test]
    fn lowpass_design_validation() {
        assert!(FirFilter::lowpass_hamming(0, 0.25).is_err());
        assert!(FirFilter::lowpass_hamming(31, 0.0).is_err());
        assert!(FirFilter::lowpass_hamming(31, 0.5).is_err());
        assert!(FirFilter::lowpass(31, 0.25, &[1.0; 30]).is_err());
        assert!(FirFilter::lowpass_hamming(31, 0.25).is_ok());
    }

    #[test]
    fn lowpass_has_unit_dc_gain() {
        let f = FirFilter::lowpass_hamming(41, 0.2).unwrap();
        let dc: f64 = f.taps().iter().sum();
        assert!((dc - 1.0).abs() < 1e-12);
        assert_eq!(f.len(), 41);
        assert!(!f.is_empty());
        assert_eq!(f.group_delay(), 20.0);
    }

    #[test]
    fn lowpass_taps_are_symmetric() {
        let f = FirFilter::lowpass_kaiser(33, 0.15, 8.0).unwrap();
        let t = f.taps();
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lowpass_passes_dc_and_attenuates_high_frequency() {
        let f = FirFilter::lowpass_hamming(63, 0.1).unwrap();
        let n = 512;
        let dc = vec![Complex::one(); n];
        let hf: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 0.4 * t as f64))
            .collect();
        let out_dc = f.filter_same(&dc);
        let out_hf = f.filter_same(&hf);
        // Ignore edge transients.
        let p_dc = signal_power(&out_dc[100..n - 100]).unwrap();
        let p_hf = signal_power(&out_hf[100..n - 100]).unwrap();
        assert!(p_dc > 0.99);
        assert!(p_hf < 1e-4, "stop-band power {p_hf}");
    }

    #[test]
    fn frequency_response_matches_behavior() {
        let f = FirFilter::lowpass_hamming(63, 0.1).unwrap();
        let resp = f.frequency_response_db(256);
        // Find response near DC and near 0.4 cycles/sample.
        let near = |target: f64| {
            resp.iter()
                .min_by(|a, b| {
                    (a.0 - target)
                        .abs()
                        .partial_cmp(&(b.0 - target).abs())
                        .unwrap()
                })
                .unwrap()
                .1
        };
        assert!(near(0.0) > -0.1);
        assert!(near(0.4) < -40.0);
    }

    #[test]
    fn full_convolution_length_and_identity() {
        let ident = FirFilter::from_taps(vec![1.0]).unwrap();
        let x: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, 0.0)).collect();
        assert_eq!(ident.filter_full(&x), x);
        assert_eq!(ident.filter_same(&x), x);
        let f = FirFilter::from_taps(vec![0.5, 0.5]).unwrap();
        assert_eq!(f.filter_full(&x).len(), 11);
        assert!(f.filter_full(&[]).is_empty());
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let f = FirFilter::from_taps(vec![0.25; 4]).unwrap();
        let mut x = vec![Complex::zero(); 8];
        x[3] = Complex::new(4.0, 0.0);
        let y = f.filter_full(&x);
        let expected_ones = &y[3..7];
        for v in expected_ones {
            assert!((v.re - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn frequency_shift_moves_tone() {
        let n = 256;
        let tone: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 0.1 * t as f64))
            .collect();
        let shifted = frequency_shift(&tone, 0.2);
        // The shifted tone should now sit at 0.3 cycles/sample.
        for (t, v) in shifted.iter().enumerate() {
            let expected = Complex::cis(2.0 * std::f64::consts::PI * 0.3 * t as f64);
            assert!((*v - expected).norm() < 1e-9);
        }
    }

    #[test]
    fn frequency_shift_preserves_power() {
        let x: Vec<Complex> = (0..128).map(|t| Complex::new(t as f64, 1.0)).collect();
        let y = frequency_shift(&x, 0.37);
        assert!((signal_power(&x).unwrap() - signal_power(&y).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn frequency_shift_from_is_consistent_with_block_processing() {
        let x: Vec<Complex> = (0..64).map(|t| Complex::new((t % 7) as f64, 0.5)).collect();
        let whole = frequency_shift(&x, 0.123);
        let mut blocks = frequency_shift_from(&x[..32], 0.123, 0);
        blocks.extend(frequency_shift_from(&x[32..], 0.123, 32));
        for (a, b) in whole.iter().zip(&blocks) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }
}
