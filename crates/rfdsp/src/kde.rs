//! Gaussian kernel density estimation.
//!
//! The heart of the CPRecycle interference model (paper §4.1, Eq. 4) is a **bivariate
//! Gaussian product kernel density estimate** over the amplitude deviation and phase
//! deviation of each FFT-segment observation from the transmitted lattice point:
//!
//! ```text
//! f(a, φ) = 1/(P·Np) · Σ_j  K_a((a − R_A^j)/B_a) · K_φ((φ − R_φ^j)/B_φ)
//! ```
//!
//! This module provides the generic machinery — univariate and bivariate product KDEs,
//! Silverman's rule-of-thumb and a data-driven (leave-one-out maximum-likelihood grid
//! search) bandwidth selector — while the `cprecycle` crate layers the per-subcarrier
//! interference-model bookkeeping on top.
//!
//! The kernels follow the paper's definition `K(u) = (1/2π)·e^{−u²/2}` (an unnormalised
//! Gaussian shape shared by both axes; the overall scaling cancels in the ML decoder's
//! `argmax`, and the likelihood comparisons only require values proportional to a
//! density).

use crate::error::DspError;
use crate::stats;
use crate::Result;

/// Strategy used to pick the kernel bandwidth(s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthSelector {
    /// A fixed, caller-supplied bandwidth.
    Fixed(f64),
    /// Silverman's rule of thumb `1.06·min(σ̂, IQR/1.34)·n^{−1/5}` — a good default for
    /// unimodal data and the fallback when only one preamble is available.
    Silverman,
    /// Data-driven selection by leave-one-out log-likelihood over a multiplicative grid
    /// around the Silverman bandwidth. This is what the paper means by "the data driven
    /// approach … possible in the presence of at least two preambles".
    LeaveOneOut,
}

/// Gaussian kernel shape used throughout: `K(u) = (1/2π)·e^{−u²/2}`.
#[inline]
pub fn gaussian_kernel(u: f64) -> f64 {
    (1.0 / (2.0 * std::f64::consts::PI)) * (-0.5 * u * u).exp()
}

/// Silverman's rule-of-thumb bandwidth for a univariate sample.
///
/// Returns a small positive floor when the sample is degenerate (all values equal),
/// so that the resulting KDE is still evaluable.
pub fn silverman_bandwidth(samples: &[f64]) -> Result<f64> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if samples.len() == 1 {
        return Ok(1.0);
    }
    let sigma = stats::sample_std_dev(samples)?;
    let iqr = stats::iqr(samples)?;
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let n = samples.len() as f64;
    let bw = 1.06 * spread * n.powf(-0.2);
    Ok(if bw > 1e-9 { bw } else { 1e-3 })
}

/// Leave-one-out log-likelihood of a univariate Gaussian KDE with bandwidth `bw`.
fn loo_log_likelihood(samples: &[f64], bw: f64) -> f64 {
    let n = samples.len();
    let mut ll = 0.0;
    for i in 0..n {
        let mut density = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            density += gaussian_kernel((samples[i] - samples[j]) / bw);
        }
        density /= ((n - 1) as f64) * bw;
        ll += density.max(1e-300).ln();
    }
    ll
}

/// Selects a bandwidth for `samples` according to `selector`.
pub fn select_bandwidth(samples: &[f64], selector: BandwidthSelector) -> Result<f64> {
    match selector {
        BandwidthSelector::Fixed(bw) => {
            if bw > 0.0 {
                Ok(bw)
            } else {
                Err(DspError::invalid("bandwidth", "must be positive"))
            }
        }
        BandwidthSelector::Silverman => silverman_bandwidth(samples),
        BandwidthSelector::LeaveOneOut => {
            let base = silverman_bandwidth(samples)?;
            if samples.len() < 3 {
                return Ok(base);
            }
            // Multiplicative grid around the Silverman pilot bandwidth.
            let factors = [0.25, 0.4, 0.6, 0.8, 1.0, 1.3, 1.7, 2.2, 3.0];
            let mut best = base;
            let mut best_ll = f64::NEG_INFINITY;
            for f in factors {
                let bw = base * f;
                let ll = loo_log_likelihood(samples, bw);
                if ll > best_ll {
                    best_ll = ll;
                    best = bw;
                }
            }
            Ok(best)
        }
    }
}

/// A univariate Gaussian kernel density estimate.
#[derive(Debug, Clone)]
pub struct KernelDensity1d {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity1d {
    /// Builds a KDE over `samples` using the given bandwidth selection strategy.
    pub fn new(samples: &[f64], selector: BandwidthSelector) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let bandwidth = select_bandwidth(samples, selector)?;
        Ok(KernelDensity1d {
            samples: samples.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the KDE holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Evaluates the (unnormalised-kernel) density at `x`.
    ///
    /// The value is `1/(n·B) · Σ K((x − xᵢ)/B)` with `K` the paper's `(1/2π)e^{−u²/2}`
    /// kernel, so it is proportional to a true probability density; ratios and argmax
    /// comparisons between evaluations are exact.
    pub fn eval(&self, x: f64) -> f64 {
        let b = self.bandwidth;
        let sum: f64 = self
            .samples
            .iter()
            .map(|s| gaussian_kernel((x - s) / b))
            .sum();
        sum / (self.samples.len() as f64 * b)
    }

    /// Evaluates the density on a regular grid of `n` points spanning `[lo, hi]`.
    pub fn eval_grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(lo, self.eval(lo))];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// A bivariate **product-kernel** Gaussian KDE over (amplitude, phase) pairs, exactly as
/// in the paper's Eq. 4: each sample contributes `K_a(Δa/B_a)·K_φ(Δφ/B_φ)` and the two
/// bandwidths are selected independently, which is what lets CPRecycle weight amplitude
/// and phase errors separately.
#[derive(Debug, Clone)]
pub struct ProductKde2d {
    samples: Vec<(f64, f64)>,
    bw_a: f64,
    bw_p: f64,
}

impl ProductKde2d {
    /// Builds a product KDE over `(amplitude, phase)` samples. Bandwidths for the two
    /// axes are selected independently with the same strategy.
    pub fn new(samples: &[(f64, f64)], selector: BandwidthSelector) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let a: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let p: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let bw_a = select_bandwidth(&a, selector)?;
        let bw_p = select_bandwidth(&p, selector)?;
        Ok(ProductKde2d {
            samples: samples.to_vec(),
            bw_a,
            bw_p,
        })
    }

    /// Builds a product KDE with explicit per-axis bandwidths (the paper's `B_a`, `B_φ`
    /// tuning knobs).
    pub fn with_bandwidths(samples: &[(f64, f64)], bw_a: f64, bw_p: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if bw_a <= 0.0 || bw_p <= 0.0 {
            return Err(DspError::invalid(
                "bandwidth",
                "bandwidths must be positive",
            ));
        }
        Ok(ProductKde2d {
            samples: samples.to_vec(),
            bw_a,
            bw_p,
        })
    }

    /// Amplitude-axis bandwidth `B_a`.
    pub fn bandwidth_amplitude(&self) -> f64 {
        self.bw_a
    }

    /// Phase-axis bandwidth `B_φ`.
    pub fn bandwidth_phase(&self) -> f64 {
        self.bw_p
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the KDE holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Evaluates the joint density at `(amplitude, phase)` (Eq. 4 of the paper).
    pub fn eval(&self, amplitude: f64, phase: f64) -> f64 {
        let mut sum = 0.0;
        for (sa, sp) in &self.samples {
            sum += gaussian_kernel((amplitude - sa) / self.bw_a)
                * gaussian_kernel((phase - sp) / self.bw_p);
        }
        sum / (self.samples.len() as f64 * self.bw_a * self.bw_p)
    }

    /// Natural logarithm of [`ProductKde2d::eval`], floored to avoid `-inf` so that the
    /// per-segment log-likelihood sums in the ML decoder stay finite.
    pub fn log_eval(&self, amplitude: f64, phase: f64) -> f64 {
        self.eval(amplitude, phase).max(1e-300).ln()
    }

    /// Merges additional samples into the estimate and reselects bandwidths with the
    /// given strategy — used when a new preamble arrives (paper §4.3: "probability
    /// density functions are constantly updated when subsequent preambles are received").
    pub fn update(
        &mut self,
        new_samples: &[(f64, f64)],
        selector: BandwidthSelector,
    ) -> Result<()> {
        if new_samples.is_empty() {
            return Ok(());
        }
        self.samples.extend_from_slice(new_samples);
        let a: Vec<f64> = self.samples.iter().map(|s| s.0).collect();
        let p: Vec<f64> = self.samples.iter().map(|s| s.1).collect();
        self.bw_a = select_bandwidth(&a, selector)?;
        self.bw_p = select_bandwidth(&p, selector)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    #[test]
    fn gaussian_kernel_shape() {
        assert!((gaussian_kernel(0.0) - 1.0 / (2.0 * std::f64::consts::PI)).abs() < 1e-15);
        assert!(gaussian_kernel(1.0) < gaussian_kernel(0.0));
        assert!((gaussian_kernel(2.0) - gaussian_kernel(-2.0)).abs() < 1e-15);
    }

    #[test]
    fn silverman_bandwidth_scales_with_spread() {
        let narrow: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..100).map(|i| i as f64 * 1.0).collect();
        let bn = silverman_bandwidth(&narrow).unwrap();
        let bw = silverman_bandwidth(&wide).unwrap();
        assert!(bw > bn * 50.0, "narrow {bn}, wide {bw}");
        assert!(silverman_bandwidth(&[]).is_err());
        assert_eq!(silverman_bandwidth(&[1.0]).unwrap(), 1.0);
        // Degenerate data still yields a usable positive bandwidth.
        assert!(silverman_bandwidth(&[2.0; 10]).unwrap() > 0.0);
    }

    #[test]
    fn bandwidth_selector_fixed_validation() {
        assert!(select_bandwidth(&[1.0, 2.0], BandwidthSelector::Fixed(0.0)).is_err());
        assert_eq!(
            select_bandwidth(&[1.0, 2.0], BandwidthSelector::Fixed(0.7)).unwrap(),
            0.7
        );
    }

    #[test]
    fn leave_one_out_close_to_silverman_for_gaussian_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..200).map(|_| g.sample(&mut rng, 0.0, 1.0)).collect();
        let s = select_bandwidth(&xs, BandwidthSelector::Silverman).unwrap();
        let l = select_bandwidth(&xs, BandwidthSelector::LeaveOneOut).unwrap();
        // For Gaussian data the LOO-selected bandwidth should be within the searched
        // factor range of the Silverman pilot.
        assert!(l >= 0.25 * s - 1e-12 && l <= 3.0 * s + 1e-12);
    }

    #[test]
    fn kde1d_integrates_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..300).map(|_| g.sample(&mut rng, 1.0, 0.5)).collect();
        let kde = KernelDensity1d::new(&xs, BandwidthSelector::Silverman).unwrap();
        // Numerically integrate over a wide interval; the kernel in the paper is
        // (1/2π)e^{-u²/2}, i.e. 1/sqrt(2π) times smaller than a true Gaussian pdf, so
        // the KDE integrates to 1/sqrt(2π) ≈ 0.3989.
        let grid = kde.eval_grid(-4.0, 6.0, 4001);
        let dx = 10.0 / 4000.0;
        let integral: f64 = grid.iter().map(|(_, d)| d * dx).sum();
        let expected = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((integral - expected).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn kde1d_peaks_near_data_mode() {
        let xs = vec![0.9, 1.0, 1.05, 1.1, 0.95, 1.02, 5.0];
        let kde = KernelDensity1d::new(&xs, BandwidthSelector::Silverman).unwrap();
        assert!(kde.eval(1.0) > kde.eval(3.0));
        assert!(
            kde.eval(1.0) > kde.eval(5.0),
            "single outlier should not dominate"
        );
        assert_eq!(kde.len(), 7);
        assert!(!kde.is_empty());
    }

    #[test]
    fn kde1d_bandwidth_controls_smoothness() {
        // Mirrors the paper's Fig. 6a: larger bandwidths over-smooth (lower peak).
        let xs = vec![-2.0, -1.8, 0.0, 0.1, 0.2, 3.0, 3.1];
        let narrow = KernelDensity1d::new(&xs, BandwidthSelector::Fixed(0.3)).unwrap();
        let wide = KernelDensity1d::new(&xs, BandwidthSelector::Fixed(3.0)).unwrap();
        assert!(narrow.eval(0.1) > wide.eval(0.1));
    }

    #[test]
    fn kde1d_grid_edges() {
        let kde = KernelDensity1d::new(&[0.0, 1.0], BandwidthSelector::Fixed(1.0)).unwrap();
        assert!(kde.eval_grid(0.0, 1.0, 0).is_empty());
        assert_eq!(kde.eval_grid(0.5, 1.0, 1).len(), 1);
        let g = kde.eval_grid(-1.0, 2.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[10].0, 2.0);
    }

    #[test]
    fn product_kde_requires_samples_and_positive_bandwidths() {
        assert!(ProductKde2d::new(&[], BandwidthSelector::Silverman).is_err());
        assert!(ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.0, 1.0).is_err());
        assert!(ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 1.0, -1.0).is_err());
    }

    #[test]
    fn product_kde_peaks_at_sample_cluster() {
        let samples = vec![(0.1, 0.0), (0.12, 0.05), (0.09, -0.02), (0.11, 0.01)];
        let kde = ProductKde2d::new(&samples, BandwidthSelector::Silverman).unwrap();
        assert!(kde.eval(0.1, 0.0) > kde.eval(1.0, 1.0));
        assert!(
            kde.eval(0.1, 0.0) > kde.eval(0.1, 2.0),
            "phase axis matters"
        );
        assert!(
            kde.eval(0.1, 0.0) > kde.eval(2.0, 0.0),
            "amplitude axis matters"
        );
    }

    #[test]
    fn product_kde_log_eval_is_finite_far_from_data() {
        let kde = ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.05, 0.05).unwrap();
        let ll = kde.log_eval(100.0, 100.0);
        assert!(ll.is_finite());
        assert!(ll < kde.log_eval(0.0, 0.0));
    }

    #[test]
    fn product_kde_update_extends_samples() {
        let mut kde =
            ProductKde2d::new(&[(0.0, 0.0), (0.1, 0.1)], BandwidthSelector::Silverman).unwrap();
        assert_eq!(kde.len(), 2);
        kde.update(&[(0.05, 0.02), (0.07, -0.03)], BandwidthSelector::Silverman)
            .unwrap();
        assert_eq!(kde.len(), 4);
        kde.update(&[], BandwidthSelector::Silverman).unwrap();
        assert_eq!(kde.len(), 4);
        assert!(kde.bandwidth_amplitude() > 0.0);
        assert!(kde.bandwidth_phase() > 0.0);
        assert!(!kde.is_empty());
    }

    #[test]
    fn product_kde_separates_amplitude_and_phase_scales() {
        // Samples with large amplitude spread and tiny phase spread: the selected
        // bandwidths should reflect the difference, which is the reason the paper uses a
        // product kernel instead of a single Euclidean kernel.
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 0.2, (i % 3) as f64 * 0.001))
            .collect();
        let kde = ProductKde2d::new(&samples, BandwidthSelector::Silverman).unwrap();
        assert!(kde.bandwidth_amplitude() > 10.0 * kde.bandwidth_phase());
    }
}
