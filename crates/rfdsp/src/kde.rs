//! Gaussian kernel density estimation.
//!
//! The heart of the CPRecycle interference model (paper §4.1, Eq. 4) is a **bivariate
//! Gaussian product kernel density estimate** over the amplitude deviation and phase
//! deviation of each FFT-segment observation from the transmitted lattice point:
//!
//! ```text
//! f(a, φ) = 1/(P·Np) · Σ_j  K_a((a − R_A^j)/B_a) · K_φ((φ − R_φ^j)/B_φ)
//! ```
//!
//! This module provides the generic machinery — univariate and bivariate product KDEs,
//! Silverman's rule-of-thumb and a data-driven (leave-one-out maximum-likelihood grid
//! search) bandwidth selector — while the `cprecycle` crate layers the per-subcarrier
//! interference-model bookkeeping on top.
//!
//! The kernels follow the paper's definition `K(u) = (1/2π)·e^{−u²/2}` (an unnormalised
//! Gaussian shape shared by both axes; the overall scaling cancels in the ML decoder's
//! `argmax`, and the likelihood comparisons only require values proportional to a
//! density).

use crate::error::DspError;
use crate::stats;
use crate::Result;

/// Strategy used to pick the kernel bandwidth(s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthSelector {
    /// A fixed, caller-supplied bandwidth.
    Fixed(f64),
    /// Silverman's rule of thumb `1.06·min(σ̂, IQR/1.34)·n^{−1/5}` — a good default for
    /// unimodal data and the fallback when only one preamble is available.
    Silverman,
    /// Data-driven selection by leave-one-out log-likelihood over a multiplicative grid
    /// around the Silverman bandwidth. This is what the paper means by "the data driven
    /// approach … possible in the presence of at least two preambles".
    LeaveOneOut,
}

/// Gaussian kernel shape used throughout: `K(u) = (1/2π)·e^{−u²/2}`.
#[inline]
pub fn gaussian_kernel(u: f64) -> f64 {
    (1.0 / (2.0 * std::f64::consts::PI)) * (-0.5 * u * u).exp()
}

/// Silverman's rule-of-thumb bandwidth for a univariate sample.
///
/// Returns a small positive floor when the sample is degenerate (all values equal),
/// so that the resulting KDE is still evaluable.
pub fn silverman_bandwidth(samples: &[f64]) -> Result<f64> {
    let mut scratch = Vec::new();
    silverman_bandwidth_scratch(samples, &mut scratch)
}

/// [`silverman_bandwidth`] with a caller-owned sort scratch, so repeated selection
/// (one call per subcarrier per refit) performs no allocation once the scratch has
/// grown to the largest sample count.
pub fn silverman_bandwidth_scratch(samples: &[f64], scratch: &mut Vec<f64>) -> Result<f64> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if samples.len() == 1 {
        return Ok(1.0);
    }
    let sigma = stats::sample_std_dev(samples)?;
    scratch.clear();
    scratch.extend_from_slice(samples);
    // Unstable sort: in-place (a stable sort allocates a merge buffer, which would
    // defeat the scratch), and equal keys are interchangeable for percentiles.
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in bandwidth input"));
    let iqr = stats::iqr_of_sorted(scratch)?;
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let n = samples.len() as f64;
    let bw = 1.06 * spread * n.powf(-0.2);
    Ok(if bw > 1e-9 { bw } else { 1e-3 })
}

/// Leave-one-out log-likelihood of a univariate Gaussian KDE with bandwidth `bw`.
fn loo_log_likelihood(samples: &[f64], bw: f64) -> f64 {
    let n = samples.len();
    let mut ll = 0.0;
    for i in 0..n {
        let mut density = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            density += gaussian_kernel((samples[i] - samples[j]) / bw);
        }
        density /= ((n - 1) as f64) * bw;
        ll += density.max(1e-300).ln();
    }
    ll
}

/// Selects a bandwidth for `samples` according to `selector`.
pub fn select_bandwidth(samples: &[f64], selector: BandwidthSelector) -> Result<f64> {
    let mut scratch = Vec::new();
    select_bandwidth_scratch(samples, selector, &mut scratch)
}

/// [`select_bandwidth`] with a caller-owned sort scratch (see
/// [`silverman_bandwidth_scratch`]): the allocation-free variant the per-subcarrier
/// refit loop of the interference model uses.
pub fn select_bandwidth_scratch(
    samples: &[f64],
    selector: BandwidthSelector,
    scratch: &mut Vec<f64>,
) -> Result<f64> {
    match selector {
        BandwidthSelector::Fixed(bw) => {
            if bw > 0.0 {
                Ok(bw)
            } else {
                Err(DspError::invalid("bandwidth", "must be positive"))
            }
        }
        BandwidthSelector::Silverman => silverman_bandwidth_scratch(samples, scratch),
        BandwidthSelector::LeaveOneOut => {
            let base = silverman_bandwidth_scratch(samples, scratch)?;
            if samples.len() < 3 {
                return Ok(base);
            }
            // Multiplicative grid around the Silverman pilot bandwidth.
            let factors = [0.25, 0.4, 0.6, 0.8, 1.0, 1.3, 1.7, 2.2, 3.0];
            let mut best = base;
            let mut best_ll = f64::NEG_INFINITY;
            for f in factors {
                let bw = base * f;
                let ll = loo_log_likelihood(samples, bw);
                if ll > best_ll {
                    best_ll = ll;
                    best = bw;
                }
            }
            Ok(best)
        }
    }
}

/// A univariate Gaussian kernel density estimate.
#[derive(Debug, Clone)]
pub struct KernelDensity1d {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity1d {
    /// Builds a KDE over `samples` using the given bandwidth selection strategy.
    pub fn new(samples: &[f64], selector: BandwidthSelector) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let bandwidth = select_bandwidth(samples, selector)?;
        Ok(KernelDensity1d {
            samples: samples.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the KDE holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Evaluates the (unnormalised-kernel) density at `x`.
    ///
    /// The value is `1/(n·B) · Σ K((x − xᵢ)/B)` with `K` the paper's `(1/2π)e^{−u²/2}`
    /// kernel, so it is proportional to a true probability density; ratios and argmax
    /// comparisons between evaluations are exact.
    pub fn eval(&self, x: f64) -> f64 {
        let b = self.bandwidth;
        let sum: f64 = self
            .samples
            .iter()
            .map(|s| gaussian_kernel((x - s) / b))
            .sum();
        sum / (self.samples.len() as f64 * b)
    }

    /// Evaluates the density on a regular grid of `n` points spanning `[lo, hi]`.
    pub fn eval_grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(lo, self.eval(lo))];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// A bivariate **product-kernel** Gaussian KDE over (amplitude, phase) pairs, exactly as
/// in the paper's Eq. 4: each sample contributes `K_a(Δa/B_a)·K_φ(Δφ/B_φ)` and the two
/// bandwidths are selected independently, which is what lets CPRecycle weight amplitude
/// and phase errors separately.
///
/// Samples are stored as two parallel axis vectors, so bandwidth reselection (which
/// operates per axis) reads the stored slices directly instead of collecting
/// temporary axis vectors on every refit.
#[derive(Debug, Clone)]
pub struct ProductKde2d {
    amps: Vec<f64>,
    phases: Vec<f64>,
    bw_a: f64,
    bw_p: f64,
    /// Sort scratch reused by bandwidth reselection in [`ProductKde2d::update`].
    scratch: Vec<f64>,
}

impl ProductKde2d {
    /// Builds a product KDE over `(amplitude, phase)` samples. Bandwidths for the two
    /// axes are selected independently with the same strategy.
    pub fn new(samples: &[(f64, f64)], selector: BandwidthSelector) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let amps: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let phases: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let mut scratch = Vec::with_capacity(samples.len());
        let bw_a = select_bandwidth_scratch(&amps, selector, &mut scratch)?;
        let bw_p = select_bandwidth_scratch(&phases, selector, &mut scratch)?;
        Ok(ProductKde2d {
            amps,
            phases,
            bw_a,
            bw_p,
            scratch,
        })
    }

    /// Builds a product KDE with explicit per-axis bandwidths (the paper's `B_a`, `B_φ`
    /// tuning knobs).
    pub fn with_bandwidths(samples: &[(f64, f64)], bw_a: f64, bw_p: f64) -> Result<Self> {
        let amps: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let phases: Vec<f64> = samples.iter().map(|s| s.1).collect();
        Self::from_axes(&amps, &phases, bw_a, bw_p)
    }

    /// Builds a product KDE from per-axis sample slices with explicit bandwidths — the
    /// constructor the interference model's split-axis sample store uses.
    pub fn from_axes(amps: &[f64], phases: &[f64], bw_a: f64, bw_p: f64) -> Result<Self> {
        let mut kde = ProductKde2d {
            amps: Vec::new(),
            phases: Vec::new(),
            bw_a: 1.0,
            bw_p: 1.0,
            scratch: Vec::new(),
        };
        kde.refit_axes(amps, phases, bw_a, bw_p)?;
        Ok(kde)
    }

    /// Replaces the sample set and bandwidths in place, reusing the existing buffers —
    /// the per-bin refit path, allocation-free once the buffers have grown to the
    /// largest sample count seen.
    pub fn refit_axes(&mut self, amps: &[f64], phases: &[f64], bw_a: f64, bw_p: f64) -> Result<()> {
        if amps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if amps.len() != phases.len() {
            return Err(DspError::invalid("phases", "axis sample counts must match"));
        }
        if bw_a <= 0.0 || bw_p <= 0.0 {
            return Err(DspError::invalid(
                "bandwidth",
                "bandwidths must be positive",
            ));
        }
        self.amps.clear();
        self.amps.extend_from_slice(amps);
        self.phases.clear();
        self.phases.extend_from_slice(phases);
        self.bw_a = bw_a;
        self.bw_p = bw_p;
        Ok(())
    }

    /// Amplitude-axis bandwidth `B_a`.
    pub fn bandwidth_amplitude(&self) -> f64 {
        self.bw_a
    }

    /// Phase-axis bandwidth `B_φ`.
    pub fn bandwidth_phase(&self) -> f64 {
        self.bw_p
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Whether the KDE holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.amps.is_empty()
    }

    /// The amplitude coordinates of the backing samples.
    pub fn amplitudes(&self) -> &[f64] {
        &self.amps
    }

    /// The phase coordinates of the backing samples.
    pub fn phases(&self) -> &[f64] {
        &self.phases
    }

    /// Pre-grows the sample and scratch buffers for `additional` further samples, so a
    /// subsequent [`ProductKde2d::update`] of at most that many samples allocates
    /// nothing (pinned by the `model_alloc` regression test).
    pub fn reserve(&mut self, additional: usize) {
        self.amps.reserve(additional);
        self.phases.reserve(additional);
        // `Vec::reserve(n)` guarantees capacity ≥ len + n, so size the request off
        // the scratch's *length* — subtracting its capacity would under-reserve
        // whenever capacity already exceeds length.
        let total = self.amps.len() + additional;
        self.scratch
            .reserve(total.saturating_sub(self.scratch.len()));
    }

    /// Evaluates the joint density at `(amplitude, phase)` (Eq. 4 of the paper).
    pub fn eval(&self, amplitude: f64, phase: f64) -> f64 {
        let mut sum = 0.0;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            sum += gaussian_kernel((amplitude - sa) / self.bw_a)
                * gaussian_kernel((phase - sp) / self.bw_p);
        }
        sum / (self.amps.len() as f64 * self.bw_a * self.bw_p)
    }

    /// Natural logarithm of [`ProductKde2d::eval`] with exact, **strictly ordered**
    /// far tails: a linear-domain sum underflows to the same hard floor for every
    /// candidate more than ~38 bandwidths from the data, which erases the ML ordering
    /// between distant lattice points.
    ///
    /// In-support queries (the overwhelming majority of sphere-decoder calls) take a
    /// single linear-domain pass; only when that sum underflows does the evaluation
    /// fall back to a two-pass log-sum-exp, which keeps the Gaussian tail exact down
    /// to exponents of about `−1e308`.
    pub fn log_eval(&self, amplitude: f64, phase: f64) -> f64 {
        let inv_a = 1.0 / self.bw_a;
        let inv_p = 1.0 / self.bw_p;
        let norm = self.amps.len() as f64 * self.bw_a * self.bw_p * TWO_PI_SQ;
        let mut sum = 0.0;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            let ua = (amplitude - sa) * inv_a;
            let up = (phase - sp) * inv_p;
            sum += (-0.5 * (ua * ua + up * up)).exp();
        }
        if sum > 1e-290 {
            return sum.ln() - norm.ln();
        }
        // Tail fallback: log-sum-exp over the kernel exponents.
        let mut max_e = f64::NEG_INFINITY;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            let ua = (amplitude - sa) * inv_a;
            let up = (phase - sp) * inv_p;
            let e = -0.5 * (ua * ua + up * up);
            if e > max_e {
                max_e = e;
            }
        }
        let mut scaled = 0.0;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            let ua = (amplitude - sa) * inv_a;
            let up = (phase - sp) * inv_p;
            scaled += (-0.5 * (ua * ua + up * up) - max_e).exp();
        }
        max_e + scaled.ln() - norm.ln()
    }

    /// Merges additional samples into the estimate and reselects bandwidths with the
    /// given strategy — used when a new preamble arrives (paper §4.3: "probability
    /// density functions are constantly updated when subsequent preambles are received").
    ///
    /// Bandwidth reselection reads the stored axis vectors directly (with an internal
    /// reusable sort scratch), so the call performs no allocation when the buffers
    /// have spare capacity (see [`ProductKde2d::reserve`]).
    pub fn update(
        &mut self,
        new_samples: &[(f64, f64)],
        selector: BandwidthSelector,
    ) -> Result<()> {
        if new_samples.is_empty() {
            return Ok(());
        }
        self.amps.extend(new_samples.iter().map(|s| s.0));
        self.phases.extend(new_samples.iter().map(|s| s.1));
        self.bw_a = select_bandwidth_scratch(&self.amps, selector, &mut self.scratch)?;
        self.bw_p = select_bandwidth_scratch(&self.phases, selector, &mut self.scratch)?;
        Ok(())
    }
}

/// `4π²`, the product-kernel normalisation (`1/2π` per axis).
const TWO_PI_SQ: f64 = 4.0 * std::f64::consts::PI * std::f64::consts::PI;

/// Resolution and extent policy for building a [`GridKde2d`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Grid nodes per kernel bandwidth. Higher is more accurate; the bilinear
    /// interpolation error in the log domain shrinks quadratically with this.
    pub points_per_bandwidth: f64,
    /// Upper bound on nodes per axis, capping build time and memory for very small
    /// bandwidths relative to the sample spread.
    pub max_points_per_axis: usize,
    /// How many bandwidths beyond the extreme samples the grid extends before the
    /// analytic tail extrapolation takes over.
    pub margin_bandwidths: f64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            points_per_bandwidth: 4.0,
            max_points_per_axis: 128,
            margin_bandwidths: 3.0,
        }
    }
}

/// A precomputed log-likelihood lookup table over a [`ProductKde2d`]: the `GridKde`
/// interference-estimator backend.
///
/// At build time the exact product-KDE log density is evaluated on a regular
/// (amplitude, phase) grid spanning the samples plus a margin; queries then cost an
/// **O(1) bilinear interpolation in the log domain** instead of the exact backend's
/// `O(P·N_p)` kernel sum. Because the log density of a Gaussian mixture is locally
/// near-quadratic, bilinear interpolation of the *log* values is far more accurate
/// than interpolating densities and can never produce `−inf`.
///
/// Queries outside the grid (far-tail candidates) clamp to the nearest edge and
/// subtract the analytic Gaussian tail continuation
/// `½·d² + margin·d` (with `d` the overshoot in bandwidth units), which keeps
/// far-tail log-likelihoods finite, continuous at the edge and **strictly decreasing
/// with distance** — the ordering property the ML decoder needs.
#[derive(Debug, Clone)]
pub struct GridKde2d {
    a_lo: f64,
    a_step: f64,
    n_a: usize,
    p_lo: f64,
    p_step: f64,
    n_p: usize,
    /// Log densities, row-major: `values[ia * n_p + ip]`.
    values: Vec<f64>,
    bw_a: f64,
    bw_p: f64,
    margin: f64,
}

impl GridKde2d {
    /// Precomputes the log-likelihood grid of `kde` under `spec`.
    pub fn build(kde: &ProductKde2d, spec: &GridSpec) -> Result<Self> {
        Self::from_axes(
            kde.amplitudes(),
            kde.phases(),
            kde.bandwidth_amplitude(),
            kde.bandwidth_phase(),
            spec,
        )
    }

    /// Builds the grid directly from per-axis samples and bandwidths (the refit path
    /// of the `GridKde` backend, which never materialises a `ProductKde2d`).
    pub fn from_axes(
        amps: &[f64],
        phases: &[f64],
        bw_a: f64,
        bw_p: f64,
        spec: &GridSpec,
    ) -> Result<Self> {
        if amps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if amps.len() != phases.len() {
            return Err(DspError::invalid("phases", "axis sample counts must match"));
        }
        if bw_a <= 0.0 || bw_p <= 0.0 {
            return Err(DspError::invalid(
                "bandwidth",
                "bandwidths must be positive",
            ));
        }
        if !spec.points_per_bandwidth.is_finite()
            || spec.points_per_bandwidth <= 0.0
            || spec.max_points_per_axis < 2
        {
            return Err(DspError::invalid(
                "spec",
                "points_per_bandwidth must be positive and max_points_per_axis ≥ 2",
            ));
        }
        let margin = spec.margin_bandwidths.max(1.0);
        // Amplitude deviations are magnitudes, so the axis never extends below zero;
        // phases are error-vector angles in (−π, π], so the grid never needs to
        // extend beyond that.
        let (a_lo, a_hi) = axis_extent(amps, bw_a, margin, Some(0.0), None);
        let (p_lo, p_hi) = axis_extent(
            phases,
            bw_p,
            margin,
            Some(-std::f64::consts::PI),
            Some(std::f64::consts::PI),
        );
        let (n_a, a_step) = axis_nodes(a_lo, a_hi, bw_a, spec);
        let (n_p, p_step) = axis_nodes(p_lo, p_hi, bw_p, spec);

        // Per-node kernel exponents, factored per axis: node i against sample j.
        let n = amps.len();
        let exp_a = axis_exponents(a_lo, a_step, n_a, amps, bw_a);
        let exp_p = axis_exponents(p_lo, p_step, n_p, phases, bw_p);
        // Fast path: sum the exponentials in the linear domain (one multiply-add per
        // sample per node); nodes whose sum underflows fall back to a per-node
        // log-sum-exp so tails stay finite and ordered.
        let w_a: Vec<f64> = exp_a.iter().map(|e| e.exp()).collect();
        let w_p: Vec<f64> = exp_p.iter().map(|e| e.exp()).collect();
        let log_norm = -((n as f64) * bw_a * bw_p * TWO_PI_SQ).ln();
        let mut values = vec![0.0f64; n_a * n_p];
        for ia in 0..n_a {
            let wa = &w_a[ia * n..(ia + 1) * n];
            let ea = &exp_a[ia * n..(ia + 1) * n];
            for ip in 0..n_p {
                let wp = &w_p[ip * n..(ip + 1) * n];
                let mut sum = 0.0;
                for j in 0..n {
                    sum += wa[j] * wp[j];
                }
                values[ia * n_p + ip] = if sum > 1e-290 {
                    sum.ln() + log_norm
                } else {
                    let ep = &exp_p[ip * n..(ip + 1) * n];
                    let mut max_e = f64::NEG_INFINITY;
                    for j in 0..n {
                        max_e = max_e.max(ea[j] + ep[j]);
                    }
                    let mut s = 0.0;
                    for j in 0..n {
                        s += (ea[j] + ep[j] - max_e).exp();
                    }
                    max_e + s.ln() + log_norm
                };
            }
        }
        Ok(GridKde2d {
            a_lo,
            a_step,
            n_a,
            p_lo,
            p_step,
            n_p,
            values,
            bw_a,
            bw_p,
            margin,
        })
    }

    /// Nodes along the amplitude axis.
    pub fn num_points_amplitude(&self) -> usize {
        self.n_a
    }

    /// Nodes along the phase axis.
    pub fn num_points_phase(&self) -> usize {
        self.n_p
    }

    /// O(1) log-density lookup at `(amplitude, phase)`: bilinear interpolation of the
    /// precomputed log grid, with the analytic tail continuation outside it.
    pub fn log_eval(&self, amplitude: f64, phase: f64) -> f64 {
        let a_hi = self.a_lo + self.a_step * (self.n_a - 1) as f64;
        let p_hi = self.p_lo + self.p_step * (self.n_p - 1) as f64;
        let (ca, da) = clamp_axis(amplitude, self.a_lo, a_hi, self.bw_a);
        let (cp, dp) = clamp_axis(phase, self.p_lo, p_hi, self.bw_p);

        let ta = (ca - self.a_lo) / self.a_step;
        let tp = (cp - self.p_lo) / self.p_step;
        let ia = (ta as usize).min(self.n_a - 2);
        let ip = (tp as usize).min(self.n_p - 2);
        let fa = (ta - ia as f64).clamp(0.0, 1.0);
        let fp = (tp - ip as f64).clamp(0.0, 1.0);
        let v00 = self.values[ia * self.n_p + ip];
        let v01 = self.values[ia * self.n_p + ip + 1];
        let v10 = self.values[(ia + 1) * self.n_p + ip];
        let v11 = self.values[(ia + 1) * self.n_p + ip + 1];
        let v0 = v00 + (v01 - v00) * fp;
        let v1 = v10 + (v11 - v10) * fp;
        let interior = v0 + (v1 - v0) * fa;
        // Gaussian tail continuation: at the edge the log density falls off with
        // slope ≈ −margin (in bandwidth units, the distance to the nearest extreme
        // sample) and curvature −1, so −(½d² + margin·d) per axis continues it.
        interior - (0.5 * da * da + self.margin * da) - (0.5 * dp * dp + self.margin * dp)
    }
}

/// Grid extent of one axis: the sample range padded by `margin` bandwidths, clamped
/// to the physically meaningful range of the coordinate.
fn axis_extent(
    samples: &[f64],
    bw: f64,
    margin: f64,
    floor: Option<f64>,
    ceil: Option<f64>,
) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
    }
    let mut lo = min - margin * bw;
    let mut hi = max + margin * bw;
    if let Some(f) = floor {
        lo = lo.max(f);
    }
    if let Some(c) = ceil {
        hi = hi.min(c);
    }
    if hi <= lo {
        hi = lo + bw;
    }
    (lo, hi)
}

/// Node count and exact step spanning `[lo, hi]` at the spec's resolution.
fn axis_nodes(lo: f64, hi: f64, bw: f64, spec: &GridSpec) -> (usize, f64) {
    // Clamp in the float domain: a pathologically small bandwidth makes the ideal
    // node count overflow `usize` (a debug-build panic) if cast first.
    let ideal = ((hi - lo) / (bw / spec.points_per_bandwidth))
        .ceil()
        .min(spec.max_points_per_axis as f64);
    let n = (ideal as usize + 1).clamp(2, spec.max_points_per_axis);
    (n, (hi - lo) / (n - 1) as f64)
}

/// Kernel exponents of every (node, sample) pair along one axis, row-major by node.
fn axis_exponents(lo: f64, step: f64, n_nodes: usize, samples: &[f64], bw: f64) -> Vec<f64> {
    let inv = 1.0 / bw;
    let mut out = Vec::with_capacity(n_nodes * samples.len());
    for i in 0..n_nodes {
        let x = lo + step * i as f64;
        for &s in samples {
            let u = (x - s) * inv;
            out.push(-0.5 * u * u);
        }
    }
    out
}

/// Clamps `x` into `[lo, hi]`, returning the clamped coordinate and the overshoot in
/// bandwidth units (0 when inside).
fn clamp_axis(x: f64, lo: f64, hi: f64, bw: f64) -> (f64, f64) {
    if x < lo {
        (lo, (lo - x) / bw)
    } else if x > hi {
        (hi, (x - hi) / bw)
    } else {
        (x, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    #[test]
    fn gaussian_kernel_shape() {
        assert!((gaussian_kernel(0.0) - 1.0 / (2.0 * std::f64::consts::PI)).abs() < 1e-15);
        assert!(gaussian_kernel(1.0) < gaussian_kernel(0.0));
        assert!((gaussian_kernel(2.0) - gaussian_kernel(-2.0)).abs() < 1e-15);
    }

    #[test]
    fn silverman_bandwidth_scales_with_spread() {
        let narrow: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..100).map(|i| i as f64 * 1.0).collect();
        let bn = silverman_bandwidth(&narrow).unwrap();
        let bw = silverman_bandwidth(&wide).unwrap();
        assert!(bw > bn * 50.0, "narrow {bn}, wide {bw}");
        assert!(silverman_bandwidth(&[]).is_err());
        assert_eq!(silverman_bandwidth(&[1.0]).unwrap(), 1.0);
        // Degenerate data still yields a usable positive bandwidth.
        assert!(silverman_bandwidth(&[2.0; 10]).unwrap() > 0.0);
    }

    #[test]
    fn bandwidth_selector_fixed_validation() {
        assert!(select_bandwidth(&[1.0, 2.0], BandwidthSelector::Fixed(0.0)).is_err());
        assert_eq!(
            select_bandwidth(&[1.0, 2.0], BandwidthSelector::Fixed(0.7)).unwrap(),
            0.7
        );
    }

    #[test]
    fn leave_one_out_close_to_silverman_for_gaussian_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..200).map(|_| g.sample(&mut rng, 0.0, 1.0)).collect();
        let s = select_bandwidth(&xs, BandwidthSelector::Silverman).unwrap();
        let l = select_bandwidth(&xs, BandwidthSelector::LeaveOneOut).unwrap();
        // For Gaussian data the LOO-selected bandwidth should be within the searched
        // factor range of the Silverman pilot.
        assert!(l >= 0.25 * s - 1e-12 && l <= 3.0 * s + 1e-12);
    }

    #[test]
    fn kde1d_integrates_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..300).map(|_| g.sample(&mut rng, 1.0, 0.5)).collect();
        let kde = KernelDensity1d::new(&xs, BandwidthSelector::Silverman).unwrap();
        // Numerically integrate over a wide interval; the kernel in the paper is
        // (1/2π)e^{-u²/2}, i.e. 1/sqrt(2π) times smaller than a true Gaussian pdf, so
        // the KDE integrates to 1/sqrt(2π) ≈ 0.3989.
        let grid = kde.eval_grid(-4.0, 6.0, 4001);
        let dx = 10.0 / 4000.0;
        let integral: f64 = grid.iter().map(|(_, d)| d * dx).sum();
        let expected = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((integral - expected).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn kde1d_peaks_near_data_mode() {
        let xs = vec![0.9, 1.0, 1.05, 1.1, 0.95, 1.02, 5.0];
        let kde = KernelDensity1d::new(&xs, BandwidthSelector::Silverman).unwrap();
        assert!(kde.eval(1.0) > kde.eval(3.0));
        assert!(
            kde.eval(1.0) > kde.eval(5.0),
            "single outlier should not dominate"
        );
        assert_eq!(kde.len(), 7);
        assert!(!kde.is_empty());
    }

    #[test]
    fn kde1d_bandwidth_controls_smoothness() {
        // Mirrors the paper's Fig. 6a: larger bandwidths over-smooth (lower peak).
        let xs = vec![-2.0, -1.8, 0.0, 0.1, 0.2, 3.0, 3.1];
        let narrow = KernelDensity1d::new(&xs, BandwidthSelector::Fixed(0.3)).unwrap();
        let wide = KernelDensity1d::new(&xs, BandwidthSelector::Fixed(3.0)).unwrap();
        assert!(narrow.eval(0.1) > wide.eval(0.1));
    }

    #[test]
    fn kde1d_grid_edges() {
        let kde = KernelDensity1d::new(&[0.0, 1.0], BandwidthSelector::Fixed(1.0)).unwrap();
        assert!(kde.eval_grid(0.0, 1.0, 0).is_empty());
        assert_eq!(kde.eval_grid(0.5, 1.0, 1).len(), 1);
        let g = kde.eval_grid(-1.0, 2.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[10].0, 2.0);
    }

    #[test]
    fn product_kde_requires_samples_and_positive_bandwidths() {
        assert!(ProductKde2d::new(&[], BandwidthSelector::Silverman).is_err());
        assert!(ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.0, 1.0).is_err());
        assert!(ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 1.0, -1.0).is_err());
    }

    #[test]
    fn product_kde_peaks_at_sample_cluster() {
        let samples = vec![(0.1, 0.0), (0.12, 0.05), (0.09, -0.02), (0.11, 0.01)];
        let kde = ProductKde2d::new(&samples, BandwidthSelector::Silverman).unwrap();
        assert!(kde.eval(0.1, 0.0) > kde.eval(1.0, 1.0));
        assert!(
            kde.eval(0.1, 0.0) > kde.eval(0.1, 2.0),
            "phase axis matters"
        );
        assert!(
            kde.eval(0.1, 0.0) > kde.eval(2.0, 0.0),
            "amplitude axis matters"
        );
    }

    #[test]
    fn product_kde_log_eval_is_finite_far_from_data() {
        let kde = ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.05, 0.05).unwrap();
        let ll = kde.log_eval(100.0, 100.0);
        assert!(ll.is_finite());
        assert!(ll < kde.log_eval(0.0, 0.0));
    }

    #[test]
    fn log_eval_keeps_far_tails_strictly_ordered() {
        // Regression for the old `max(1e-300).ln()` clamp: every candidate more than
        // ~38 bandwidths out used to collapse to the same −690.78 floor, erasing the
        // ML ordering between distant lattice points. The log-sum-exp form keeps the
        // Gaussian tail strictly decreasing.
        let kde = ProductKde2d::with_bandwidths(&[(0.0, 0.0), (0.1, 0.2)], 0.05, 0.05).unwrap();
        let near = kde.log_eval(5.0, 0.0);
        let far = kde.log_eval(10.0, 0.0);
        let farther = kde.log_eval(20.0, 0.0);
        assert!(near > far, "near {near} far {far}");
        assert!(far > farther, "far {far} farther {farther}");
        assert!(farther.is_finite());
        // All three are deep below the old clamp.
        assert!(near < -690.0);
        // Within the support, log-sum-exp agrees with the linear-domain log.
        let ll = kde.log_eval(0.07, 0.1);
        assert!((ll - kde.eval(0.07, 0.1).ln()).abs() < 1e-12);
    }

    #[test]
    fn product_kde_update_after_reserve_keeps_capacity() {
        let mut kde = ProductKde2d::new(
            &[(0.0, 0.0), (0.1, 0.1), (0.2, -0.1)],
            BandwidthSelector::Silverman,
        )
        .unwrap();
        kde.reserve(8);
        // Buffer-pointer stability across the update proves no reallocation took
        // place (the allocation-count pin lives in core's `model_alloc` test; this
        // is the dependency-free version).
        let amp_ptr = kde.amplitudes().as_ptr();
        let phase_ptr = kde.phases().as_ptr();
        let new: Vec<(f64, f64)> = (0..8).map(|i| (i as f64 * 0.01, 0.0)).collect();
        kde.update(&new, BandwidthSelector::LeaveOneOut).unwrap();
        assert_eq!(kde.len(), 11);
        assert_eq!(
            kde.amplitudes().as_ptr(),
            amp_ptr,
            "amplitude buffer reallocated despite reserve"
        );
        assert_eq!(
            kde.phases().as_ptr(),
            phase_ptr,
            "phase buffer reallocated despite reserve"
        );
    }

    #[test]
    fn grid_kde_matches_exact_inside_the_sample_region() {
        let samples: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let x = i as f64 / 30.0;
                (0.2 + 0.6 * (x * 9.7).sin().abs(), 1.5 * (x * 4.3).cos())
            })
            .collect();
        let kde = ProductKde2d::with_bandwidths(&samples, 0.15, 0.4).unwrap();
        let spec = GridSpec {
            points_per_bandwidth: 8.0,
            max_points_per_axis: 512,
            margin_bandwidths: 4.0,
        };
        let grid = GridKde2d::build(&kde, &spec).unwrap();
        for i in 0..40 {
            let a = 0.05 + 0.9 * i as f64 / 40.0;
            let p = -2.0 + 4.0 * ((i * 7) % 40) as f64 / 40.0;
            let exact = kde.log_eval(a, p);
            let approx = grid.log_eval(a, p);
            assert!(
                (exact - approx).abs() < 0.05,
                "({a}, {p}): exact {exact}, grid {approx}"
            );
        }
    }

    #[test]
    fn grid_kde_far_tails_are_finite_and_strictly_ordered() {
        let grid = GridKde2d::from_axes(
            &[0.1, 0.3, 0.2],
            &[0.0, 0.4, -0.3],
            0.08,
            0.25,
            &GridSpec::default(),
        )
        .unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..30 {
            let ll = grid.log_eval(0.3 + k as f64 * 0.5, 0.1);
            assert!(ll.is_finite());
            assert!(ll < prev, "tail must strictly decrease: {ll} !< {prev}");
            prev = ll;
        }
        // The low-amplitude side also extrapolates monotonically toward the data.
        assert!(grid.log_eval(0.0, 0.0) < grid.log_eval(0.1, 0.0));
    }

    #[test]
    fn grid_kde_respects_spec_caps_and_validates() {
        let amps = [0.0, 1.0];
        let phases = [0.0, 0.5];
        let spec = GridSpec {
            points_per_bandwidth: 100.0,
            max_points_per_axis: 16,
            margin_bandwidths: 3.0,
        };
        let g = GridKde2d::from_axes(&amps, &phases, 0.05, 0.05, &spec).unwrap();
        assert_eq!(g.num_points_amplitude(), 16);
        assert_eq!(g.num_points_phase(), 16);
        assert!(GridKde2d::from_axes(&[], &[], 0.1, 0.1, &GridSpec::default()).is_err());
        assert!(GridKde2d::from_axes(&[0.0], &[], 0.1, 0.1, &GridSpec::default()).is_err());
        assert!(GridKde2d::from_axes(&[0.0], &[0.0], 0.0, 0.1, &GridSpec::default()).is_err());
        let bad = GridSpec {
            points_per_bandwidth: 0.0,
            ..Default::default()
        };
        assert!(GridKde2d::from_axes(&[0.0], &[0.0], 0.1, 0.1, &bad).is_err());
        // A huge bandwidth (the kernel-ablation configuration) still builds: the
        // phase extent clamps to (−π, π] and the node count floors at 2.
        let wide = GridKde2d::from_axes(&[0.0], &[0.0], 0.1, 1.0e6, &GridSpec::default()).unwrap();
        assert!(wide.num_points_phase() >= 2);
        assert!(wide.log_eval(0.0, 3.0).is_finite());
        // …and a pathologically small one must not overflow the node count (the
        // float-domain clamp in `axis_nodes`; previously a debug-build panic).
        let tiny =
            GridKde2d::from_axes(&[0.0, 1.0], &[0.0, 0.1], 1e-300, 0.1, &GridSpec::default())
                .unwrap();
        assert_eq!(
            tiny.num_points_amplitude(),
            GridSpec::default().max_points_per_axis
        );
    }

    #[test]
    fn product_kde_update_extends_samples() {
        let mut kde =
            ProductKde2d::new(&[(0.0, 0.0), (0.1, 0.1)], BandwidthSelector::Silverman).unwrap();
        assert_eq!(kde.len(), 2);
        kde.update(&[(0.05, 0.02), (0.07, -0.03)], BandwidthSelector::Silverman)
            .unwrap();
        assert_eq!(kde.len(), 4);
        kde.update(&[], BandwidthSelector::Silverman).unwrap();
        assert_eq!(kde.len(), 4);
        assert!(kde.bandwidth_amplitude() > 0.0);
        assert!(kde.bandwidth_phase() > 0.0);
        assert!(!kde.is_empty());
    }

    #[test]
    fn product_kde_separates_amplitude_and_phase_scales() {
        // Samples with large amplitude spread and tiny phase spread: the selected
        // bandwidths should reflect the difference, which is the reason the paper uses a
        // product kernel instead of a single Euclidean kernel.
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 0.2, (i % 3) as f64 * 0.001))
            .collect();
        let kde = ProductKde2d::new(&samples, BandwidthSelector::Silverman).unwrap();
        assert!(kde.bandwidth_amplitude() > 10.0 * kde.bandwidth_phase());
    }
}
