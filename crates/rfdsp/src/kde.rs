//! Gaussian kernel density estimation.
//!
//! The heart of the CPRecycle interference model (paper §4.1, Eq. 4) is a **bivariate
//! Gaussian product kernel density estimate** over the amplitude deviation and phase
//! deviation of each FFT-segment observation from the transmitted lattice point:
//!
//! ```text
//! f(a, φ) = 1/(P·Np) · Σ_j  K_a((a − R_A^j)/B_a) · K_φ((φ − R_φ^j)/B_φ)
//! ```
//!
//! This module provides the generic machinery — univariate and bivariate product KDEs,
//! Silverman's rule-of-thumb and a data-driven (leave-one-out maximum-likelihood grid
//! search) bandwidth selector — while the `cprecycle` crate layers the per-subcarrier
//! interference-model bookkeeping on top.
//!
//! The kernels follow the paper's definition `K(u) = (1/2π)·e^{−u²/2}` (an unnormalised
//! Gaussian shape shared by both axes; the overall scaling cancels in the ML decoder's
//! `argmax`, and the likelihood comparisons only require values proportional to a
//! density).

use crate::error::DspError;
use crate::stats;
use crate::Result;

/// Strategy used to pick the kernel bandwidth(s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthSelector {
    /// A fixed, caller-supplied bandwidth.
    Fixed(f64),
    /// Silverman's rule of thumb `1.06·min(σ̂, IQR/1.34)·n^{−1/5}` — a good default for
    /// unimodal data and the fallback when only one preamble is available.
    Silverman,
    /// Data-driven selection by leave-one-out log-likelihood over a multiplicative grid
    /// around the Silverman bandwidth. This is what the paper means by "the data driven
    /// approach … possible in the presence of at least two preambles".
    LeaveOneOut,
}

/// Gaussian kernel shape used throughout: `K(u) = (1/2π)·e^{−u²/2}`.
#[inline]
pub fn gaussian_kernel(u: f64) -> f64 {
    (1.0 / (2.0 * std::f64::consts::PI)) * (-0.5 * u * u).exp()
}

/// Silverman's rule-of-thumb bandwidth for a univariate sample.
///
/// Returns a small positive floor when the sample is degenerate (all values equal),
/// so that the resulting KDE is still evaluable.
pub fn silverman_bandwidth(samples: &[f64]) -> Result<f64> {
    let mut scratch = Vec::new();
    silverman_bandwidth_scratch(samples, &mut scratch)
}

/// [`silverman_bandwidth`] with a caller-owned sort scratch, so repeated selection
/// (one call per subcarrier per refit) performs no allocation once the scratch has
/// grown to the largest sample count.
pub fn silverman_bandwidth_scratch(samples: &[f64], scratch: &mut Vec<f64>) -> Result<f64> {
    if samples.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if samples.len() == 1 {
        return Ok(1.0);
    }
    let sigma = stats::sample_std_dev(samples)?;
    scratch.clear();
    scratch.extend_from_slice(samples);
    // Unstable sort: in-place (a stable sort allocates a merge buffer, which would
    // defeat the scratch), and equal keys are interchangeable for percentiles.
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in bandwidth input"));
    let iqr = stats::iqr_of_sorted(scratch)?;
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let n = samples.len() as f64;
    let bw = 1.06 * spread * n.powf(-0.2);
    Ok(if bw > 1e-9 { bw } else { 1e-3 })
}

/// Leave-one-out log-likelihood of a univariate Gaussian KDE with bandwidth `bw`.
fn loo_log_likelihood(samples: &[f64], bw: f64) -> f64 {
    let n = samples.len();
    let mut ll = 0.0;
    for i in 0..n {
        let mut density = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            density += gaussian_kernel((samples[i] - samples[j]) / bw);
        }
        density /= ((n - 1) as f64) * bw;
        ll += density.max(1e-300).ln();
    }
    ll
}

/// Selects a bandwidth for `samples` according to `selector`.
pub fn select_bandwidth(samples: &[f64], selector: BandwidthSelector) -> Result<f64> {
    let mut scratch = Vec::new();
    select_bandwidth_scratch(samples, selector, &mut scratch)
}

/// [`select_bandwidth`] with a caller-owned sort scratch (see
/// [`silverman_bandwidth_scratch`]): the allocation-free variant the per-subcarrier
/// refit loop of the interference model uses.
pub fn select_bandwidth_scratch(
    samples: &[f64],
    selector: BandwidthSelector,
    scratch: &mut Vec<f64>,
) -> Result<f64> {
    match selector {
        BandwidthSelector::Fixed(bw) => {
            if bw > 0.0 {
                Ok(bw)
            } else {
                Err(DspError::invalid("bandwidth", "must be positive"))
            }
        }
        BandwidthSelector::Silverman => silverman_bandwidth_scratch(samples, scratch),
        BandwidthSelector::LeaveOneOut => {
            let base = silverman_bandwidth_scratch(samples, scratch)?;
            if samples.len() < 3 {
                return Ok(base);
            }
            // Multiplicative grid around the Silverman pilot bandwidth.
            let factors = [0.25, 0.4, 0.6, 0.8, 1.0, 1.3, 1.7, 2.2, 3.0];
            let mut best = base;
            let mut best_ll = f64::NEG_INFINITY;
            for f in factors {
                let bw = base * f;
                let ll = loo_log_likelihood(samples, bw);
                if ll > best_ll {
                    best_ll = ll;
                    best = bw;
                }
            }
            Ok(best)
        }
    }
}

/// A univariate Gaussian kernel density estimate.
#[derive(Debug, Clone)]
pub struct KernelDensity1d {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity1d {
    /// Builds a KDE over `samples` using the given bandwidth selection strategy.
    pub fn new(samples: &[f64], selector: BandwidthSelector) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let bandwidth = select_bandwidth(samples, selector)?;
        Ok(KernelDensity1d {
            samples: samples.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the KDE holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Evaluates the (unnormalised-kernel) density at `x`.
    ///
    /// The value is `1/(n·B) · Σ K((x − xᵢ)/B)` with `K` the paper's `(1/2π)e^{−u²/2}`
    /// kernel, so it is proportional to a true probability density; ratios and argmax
    /// comparisons between evaluations are exact.
    pub fn eval(&self, x: f64) -> f64 {
        let b = self.bandwidth;
        let sum: f64 = self
            .samples
            .iter()
            .map(|s| gaussian_kernel((x - s) / b))
            .sum();
        sum / (self.samples.len() as f64 * b)
    }

    /// Evaluates the density on a regular grid of `n` points spanning `[lo, hi]`.
    pub fn eval_grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(lo, self.eval(lo))];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// A bivariate **product-kernel** Gaussian KDE over (amplitude, phase) pairs, exactly as
/// in the paper's Eq. 4: each sample contributes `K_a(Δa/B_a)·K_φ(Δφ/B_φ)` and the two
/// bandwidths are selected independently, which is what lets CPRecycle weight amplitude
/// and phase errors separately.
///
/// Samples are stored as two parallel axis vectors, so bandwidth reselection (which
/// operates per axis) reads the stored slices directly instead of collecting
/// temporary axis vectors on every refit.
#[derive(Debug, Clone)]
pub struct ProductKde2d {
    amps: Vec<f64>,
    phases: Vec<f64>,
    bw_a: f64,
    bw_p: f64,
    /// Sort scratch reused by bandwidth reselection in [`ProductKde2d::update`].
    scratch: Vec<f64>,
}

impl ProductKde2d {
    /// Builds a product KDE over `(amplitude, phase)` samples. Bandwidths for the two
    /// axes are selected independently with the same strategy.
    pub fn new(samples: &[(f64, f64)], selector: BandwidthSelector) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let amps: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let phases: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let mut scratch = Vec::with_capacity(samples.len());
        let bw_a = select_bandwidth_scratch(&amps, selector, &mut scratch)?;
        let bw_p = select_bandwidth_scratch(&phases, selector, &mut scratch)?;
        Ok(ProductKde2d {
            amps,
            phases,
            bw_a,
            bw_p,
            scratch,
        })
    }

    /// Builds a product KDE with explicit per-axis bandwidths (the paper's `B_a`, `B_φ`
    /// tuning knobs).
    pub fn with_bandwidths(samples: &[(f64, f64)], bw_a: f64, bw_p: f64) -> Result<Self> {
        let amps: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let phases: Vec<f64> = samples.iter().map(|s| s.1).collect();
        Self::from_axes(&amps, &phases, bw_a, bw_p)
    }

    /// Builds a product KDE from per-axis sample slices with explicit bandwidths — the
    /// constructor the interference model's split-axis sample store uses.
    pub fn from_axes(amps: &[f64], phases: &[f64], bw_a: f64, bw_p: f64) -> Result<Self> {
        let mut kde = ProductKde2d {
            amps: Vec::new(),
            phases: Vec::new(),
            bw_a: 1.0,
            bw_p: 1.0,
            scratch: Vec::new(),
        };
        kde.refit_axes(amps, phases, bw_a, bw_p)?;
        Ok(kde)
    }

    /// Replaces the sample set and bandwidths in place, reusing the existing buffers —
    /// the per-bin refit path, allocation-free once the buffers have grown to the
    /// largest sample count seen.
    pub fn refit_axes(&mut self, amps: &[f64], phases: &[f64], bw_a: f64, bw_p: f64) -> Result<()> {
        if amps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if amps.len() != phases.len() {
            return Err(DspError::invalid("phases", "axis sample counts must match"));
        }
        if bw_a <= 0.0 || bw_p <= 0.0 {
            return Err(DspError::invalid(
                "bandwidth",
                "bandwidths must be positive",
            ));
        }
        self.amps.clear();
        self.amps.extend_from_slice(amps);
        self.phases.clear();
        self.phases.extend_from_slice(phases);
        self.bw_a = bw_a;
        self.bw_p = bw_p;
        Ok(())
    }

    /// Amplitude-axis bandwidth `B_a`.
    pub fn bandwidth_amplitude(&self) -> f64 {
        self.bw_a
    }

    /// Phase-axis bandwidth `B_φ`.
    pub fn bandwidth_phase(&self) -> f64 {
        self.bw_p
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Whether the KDE holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.amps.is_empty()
    }

    /// The amplitude coordinates of the backing samples.
    pub fn amplitudes(&self) -> &[f64] {
        &self.amps
    }

    /// The phase coordinates of the backing samples.
    pub fn phases(&self) -> &[f64] {
        &self.phases
    }

    /// Pre-grows the sample and scratch buffers for `additional` further samples, so a
    /// subsequent [`ProductKde2d::update`] of at most that many samples allocates
    /// nothing (pinned by the `model_alloc` regression test).
    pub fn reserve(&mut self, additional: usize) {
        self.amps.reserve(additional);
        self.phases.reserve(additional);
        // `Vec::reserve(n)` guarantees capacity ≥ len + n, so size the request off
        // the scratch's *length* — subtracting its capacity would under-reserve
        // whenever capacity already exceeds length.
        let total = self.amps.len() + additional;
        self.scratch
            .reserve(total.saturating_sub(self.scratch.len()));
    }

    /// Evaluates the joint density at `(amplitude, phase)` (Eq. 4 of the paper).
    pub fn eval(&self, amplitude: f64, phase: f64) -> f64 {
        let mut sum = 0.0;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            sum += gaussian_kernel((amplitude - sa) / self.bw_a)
                * gaussian_kernel((phase - sp) / self.bw_p);
        }
        sum / (self.amps.len() as f64 * self.bw_a * self.bw_p)
    }

    /// Natural logarithm of [`ProductKde2d::eval`] with exact, **strictly ordered**
    /// far tails: a linear-domain sum underflows to the same hard floor for every
    /// candidate more than ~38 bandwidths from the data, which erases the ML ordering
    /// between distant lattice points.
    ///
    /// In-support queries (the overwhelming majority of sphere-decoder calls) take a
    /// single linear-domain pass; only when that sum underflows does the evaluation
    /// fall back to a two-pass log-sum-exp, which keeps the Gaussian tail exact down
    /// to exponents of about `−1e308`.
    pub fn log_eval(&self, amplitude: f64, phase: f64) -> f64 {
        let inv_a = 1.0 / self.bw_a;
        let inv_p = 1.0 / self.bw_p;
        let norm = self.amps.len() as f64 * self.bw_a * self.bw_p * TWO_PI_SQ;
        let mut sum = 0.0;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            let ua = (amplitude - sa) * inv_a;
            let up = (phase - sp) * inv_p;
            sum += (-0.5 * (ua * ua + up * up)).exp();
        }
        if sum > 1e-290 {
            return sum.ln() - norm.ln();
        }
        // Tail fallback: log-sum-exp over the kernel exponents.
        let mut max_e = f64::NEG_INFINITY;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            let ua = (amplitude - sa) * inv_a;
            let up = (phase - sp) * inv_p;
            let e = -0.5 * (ua * ua + up * up);
            if e > max_e {
                max_e = e;
            }
        }
        let mut scaled = 0.0;
        for (sa, sp) in self.amps.iter().zip(&self.phases) {
            let ua = (amplitude - sa) * inv_a;
            let up = (phase - sp) * inv_p;
            scaled += (-0.5 * (ua * ua + up * up) - max_e).exp();
        }
        max_e + scaled.ln() - norm.ln()
    }

    /// Batched [`log_eval`](Self::log_eval) over split query planes: `out[q]` is the
    /// log density at `(amplitudes[q], phases[q])`.
    ///
    /// This is the sphere decoder's hot path (every lattice candidate × every segment
    /// observation of a bin in one call), so each query runs the same linear-domain
    /// fast path as the scalar reference but **lane-parallel**: kernel exponents are
    /// computed in `LANES`-wide chunks and fed through the branch-free polynomial
    /// [`crate::lanes::exp_approx`] — `f64::exp` is an opaque libm call LLVM never
    /// vectorizes. The kernel-sum loop lives in [`crate::simd::kde_kernel_sum`],
    /// which dispatches at runtime to an AVX2-compiled copy of the identical safe
    /// Rust (4 `f64` lanes per instruction) and otherwise to the baseline-compiled
    /// autovectorized copy, so a generic build still uses the full vector width of
    /// the machine it lands on. Relative to the scalar
    /// [`log_eval`](Self::log_eval) reference the result differs only by the ~1 ulp
    /// `exp` polynomial and the lane summation order; agreement within `1e-9` is
    /// property-tested in `tests/simd_equivalence.rs`. Queries whose linear sum
    /// underflows (candidates ~38+ bandwidths from every sample) are delegated to
    /// the scalar log-sum-exp fallback — bit-identical tails, exactly like the
    /// scalar path's own fallback, and far off the hot path.
    ///
    /// # Panics
    ///
    /// Panics if the query slices and `out` have different lengths.
    pub fn log_eval_batch(&self, amplitudes: &[f64], phases: &[f64], out: &mut [f64]) {
        assert_eq!(
            amplitudes.len(),
            phases.len(),
            "query planes must have equal lengths"
        );
        assert_eq!(
            amplitudes.len(),
            out.len(),
            "output must match the query count"
        );
        let inv_a = 1.0 / self.bw_a;
        let inv_p = 1.0 / self.bw_p;
        let log_norm = (self.amps.len() as f64 * self.bw_a * self.bw_p * TWO_PI_SQ).ln();
        for ((&a, &p), o) in amplitudes.iter().zip(phases).zip(out.iter_mut()) {
            let sum = crate::simd::kde_kernel_sum(a, p, inv_a, inv_p, &self.amps, &self.phases);
            *o = if sum > 1e-290 {
                sum.ln() - log_norm
            } else {
                // Far tail: the scalar path's log-sum-exp fallback keeps distant
                // candidates finite and strictly ordered; rare enough that the
                // libm-based scalar evaluation is irrelevant to throughput.
                self.log_eval(a, p)
            };
        }
    }

    /// Merges additional samples into the estimate and reselects bandwidths with the
    /// given strategy — used when a new preamble arrives (paper §4.3: "probability
    /// density functions are constantly updated when subsequent preambles are received").
    ///
    /// Bandwidth reselection reads the stored axis vectors directly (with an internal
    /// reusable sort scratch), so the call performs no allocation when the buffers
    /// have spare capacity (see [`ProductKde2d::reserve`]).
    pub fn update(
        &mut self,
        new_samples: &[(f64, f64)],
        selector: BandwidthSelector,
    ) -> Result<()> {
        if new_samples.is_empty() {
            return Ok(());
        }
        self.amps.extend(new_samples.iter().map(|s| s.0));
        self.phases.extend(new_samples.iter().map(|s| s.1));
        self.bw_a = select_bandwidth_scratch(&self.amps, selector, &mut self.scratch)?;
        self.bw_p = select_bandwidth_scratch(&self.phases, selector, &mut self.scratch)?;
        Ok(())
    }
}

/// `4π²`, the product-kernel normalisation (`1/2π` per axis).
const TWO_PI_SQ: f64 = 4.0 * std::f64::consts::PI * std::f64::consts::PI;

/// Resolution and extent policy for building a [`GridKde2d`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Grid nodes per kernel bandwidth. Higher is more accurate; the bilinear
    /// interpolation error in the log domain shrinks quadratically with this.
    pub points_per_bandwidth: f64,
    /// Upper bound on nodes per axis, capping build time and memory for very small
    /// bandwidths relative to the sample spread.
    pub max_points_per_axis: usize,
    /// How many bandwidths beyond the extreme samples the grid extends before the
    /// analytic tail extrapolation takes over.
    pub margin_bandwidths: f64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            points_per_bandwidth: 4.0,
            max_points_per_axis: 128,
            margin_bandwidths: 3.0,
        }
    }
}

/// A precomputed log-likelihood lookup table over a [`ProductKde2d`]: the `GridKde`
/// interference-estimator backend.
///
/// At build time the exact product-KDE log density is evaluated on a regular
/// (amplitude, phase) grid spanning the samples plus a margin; queries then cost an
/// **O(1) bilinear interpolation in the log domain** instead of the exact backend's
/// `O(P·N_p)` kernel sum. Because the log density of a Gaussian mixture is locally
/// near-quadratic, bilinear interpolation of the *log* values is far more accurate
/// than interpolating densities and can never produce `−inf`.
///
/// Queries outside the grid (far-tail candidates) clamp to the nearest edge and
/// subtract the analytic Gaussian tail continuation
/// `½·d² + margin·d` (with `d` the overshoot in bandwidth units), which keeps
/// far-tail log-likelihoods finite, continuous at the edge and **strictly decreasing
/// with distance** — the ordering property the ML decoder needs.
#[derive(Debug, Clone)]
pub struct GridKde2d {
    a_lo: f64,
    a_step: f64,
    n_a: usize,
    p_lo: f64,
    p_step: f64,
    n_p: usize,
    /// Log densities, row-major: `values[ia * n_p + ip]`.
    values: Vec<f64>,
    /// `f32` copy of `values` for the reduced-precision query kernel
    /// ([`log_eval_batch_f32`](Self::log_eval_batch_f32)).
    values_f32: Vec<f32>,
    bw_a: f64,
    bw_p: f64,
    margin: f64,
}

impl GridKde2d {
    /// Precomputes the log-likelihood grid of `kde` under `spec`.
    pub fn build(kde: &ProductKde2d, spec: &GridSpec) -> Result<Self> {
        Self::from_axes(
            kde.amplitudes(),
            kde.phases(),
            kde.bandwidth_amplitude(),
            kde.bandwidth_phase(),
            spec,
        )
    }

    /// Builds the grid directly from per-axis samples and bandwidths (the refit path
    /// of the `GridKde` backend, which never materialises a `ProductKde2d`).
    pub fn from_axes(
        amps: &[f64],
        phases: &[f64],
        bw_a: f64,
        bw_p: f64,
        spec: &GridSpec,
    ) -> Result<Self> {
        if amps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if amps.len() != phases.len() {
            return Err(DspError::invalid("phases", "axis sample counts must match"));
        }
        if bw_a <= 0.0 || bw_p <= 0.0 {
            return Err(DspError::invalid(
                "bandwidth",
                "bandwidths must be positive",
            ));
        }
        if !spec.points_per_bandwidth.is_finite()
            || spec.points_per_bandwidth <= 0.0
            || spec.max_points_per_axis < 2
        {
            return Err(DspError::invalid(
                "spec",
                "points_per_bandwidth must be positive and max_points_per_axis ≥ 2",
            ));
        }
        let margin = spec.margin_bandwidths.max(1.0);
        // Amplitude deviations are magnitudes, so the axis never extends below zero;
        // phases are error-vector angles in (−π, π], so the grid never needs to
        // extend beyond that.
        let (a_lo, a_hi) = axis_extent(amps, bw_a, margin, Some(0.0), None);
        let (p_lo, p_hi) = axis_extent(
            phases,
            bw_p,
            margin,
            Some(-std::f64::consts::PI),
            Some(std::f64::consts::PI),
        );
        let (n_a, a_step) = axis_nodes(a_lo, a_hi, bw_a, spec);
        let (n_p, p_step) = axis_nodes(p_lo, p_hi, bw_p, spec);

        // Per-node kernel exponents, factored per axis: node i against sample j.
        let n = amps.len();
        let exp_a = axis_exponents(a_lo, a_step, n_a, amps, bw_a);
        let exp_p = axis_exponents(p_lo, p_step, n_p, phases, bw_p);
        // Fast path: sum the exponentials in the linear domain (one multiply-add per
        // sample per node); nodes whose sum underflows fall back to a per-node
        // log-sum-exp so tails stay finite and ordered.
        let w_a: Vec<f64> = exp_a.iter().map(|e| e.exp()).collect();
        let w_p: Vec<f64> = exp_p.iter().map(|e| e.exp()).collect();
        let log_norm = -((n as f64) * bw_a * bw_p * TWO_PI_SQ).ln();
        let mut values = vec![0.0f64; n_a * n_p];
        for ia in 0..n_a {
            let wa = &w_a[ia * n..(ia + 1) * n];
            let ea = &exp_a[ia * n..(ia + 1) * n];
            for ip in 0..n_p {
                let wp = &w_p[ip * n..(ip + 1) * n];
                let mut sum = 0.0;
                for j in 0..n {
                    sum += wa[j] * wp[j];
                }
                values[ia * n_p + ip] = if sum > 1e-290 {
                    sum.ln() + log_norm
                } else {
                    let ep = &exp_p[ip * n..(ip + 1) * n];
                    let mut max_e = f64::NEG_INFINITY;
                    for j in 0..n {
                        max_e = max_e.max(ea[j] + ep[j]);
                    }
                    let mut s = 0.0;
                    for j in 0..n {
                        s += (ea[j] + ep[j] - max_e).exp();
                    }
                    max_e + s.ln() + log_norm
                };
            }
        }
        let values_f32 = values.iter().map(|&v| v as f32).collect();
        Ok(GridKde2d {
            a_lo,
            a_step,
            n_a,
            p_lo,
            p_step,
            n_p,
            values,
            values_f32,
            bw_a,
            bw_p,
            margin,
        })
    }

    /// Nodes along the amplitude axis.
    pub fn num_points_amplitude(&self) -> usize {
        self.n_a
    }

    /// Nodes along the phase axis.
    pub fn num_points_phase(&self) -> usize {
        self.n_p
    }

    /// O(1) log-density lookup at `(amplitude, phase)`: bilinear interpolation of the
    /// precomputed log grid, with the analytic tail continuation outside it.
    pub fn log_eval(&self, amplitude: f64, phase: f64) -> f64 {
        let a_hi = self.a_lo + self.a_step * (self.n_a - 1) as f64;
        let p_hi = self.p_lo + self.p_step * (self.n_p - 1) as f64;
        let (ca, da) = clamp_axis(amplitude, self.a_lo, a_hi, self.bw_a);
        let (cp, dp) = clamp_axis(phase, self.p_lo, p_hi, self.bw_p);

        let ta = (ca - self.a_lo) / self.a_step;
        let tp = (cp - self.p_lo) / self.p_step;
        let ia = (ta as usize).min(self.n_a - 2);
        let ip = (tp as usize).min(self.n_p - 2);
        let fa = (ta - ia as f64).clamp(0.0, 1.0);
        let fp = (tp - ip as f64).clamp(0.0, 1.0);
        let v00 = self.values[ia * self.n_p + ip];
        let v01 = self.values[ia * self.n_p + ip + 1];
        let v10 = self.values[(ia + 1) * self.n_p + ip];
        let v11 = self.values[(ia + 1) * self.n_p + ip + 1];
        let v0 = v00 + (v01 - v00) * fp;
        let v1 = v10 + (v11 - v10) * fp;
        let interior = v0 + (v1 - v0) * fa;
        // Gaussian tail continuation: at the edge the log density falls off with
        // slope ≈ −margin (in bandwidth units, the distance to the nearest extreme
        // sample) and curvature −1, so −(½d² + margin·d) per axis continues it.
        interior - (0.5 * da * da + self.margin * da) - (0.5 * dp * dp + self.margin * dp)
    }

    /// Batched [`log_eval`](Self::log_eval) over split query planes: `out[q]` is the
    /// log density at `(amplitudes[q], phases[q])`.
    ///
    /// The grid extent, steps and index bounds are hoisted out of the loop (the
    /// per-query work is pure clamp + bilinear arithmetic plus four table gathers),
    /// and each query performs **exactly** the scalar [`log_eval`](Self::log_eval)
    /// operations in the same order — the batch is bit-for-bit identical to scalar
    /// calls, which the equivalence property tests assert with `to_bits`.
    ///
    /// # Panics
    ///
    /// Panics if the query slices and `out` have different lengths.
    pub fn log_eval_batch(&self, amplitudes: &[f64], phases: &[f64], out: &mut [f64]) {
        assert_eq!(
            amplitudes.len(),
            phases.len(),
            "query planes must have equal lengths"
        );
        assert_eq!(
            amplitudes.len(),
            out.len(),
            "output must match the query count"
        );
        let a_hi = self.a_lo + self.a_step * (self.n_a - 1) as f64;
        let p_hi = self.p_lo + self.p_step * (self.n_p - 1) as f64;
        for ((&a, &p), o) in amplitudes.iter().zip(phases).zip(out.iter_mut()) {
            let (ca, da) = clamp_axis(a, self.a_lo, a_hi, self.bw_a);
            let (cp, dp) = clamp_axis(p, self.p_lo, p_hi, self.bw_p);
            let ta = (ca - self.a_lo) / self.a_step;
            let tp = (cp - self.p_lo) / self.p_step;
            let ia = (ta as usize).min(self.n_a - 2);
            let ip = (tp as usize).min(self.n_p - 2);
            let fa = (ta - ia as f64).clamp(0.0, 1.0);
            let fp = (tp - ip as f64).clamp(0.0, 1.0);
            let v00 = self.values[ia * self.n_p + ip];
            let v01 = self.values[ia * self.n_p + ip + 1];
            let v10 = self.values[(ia + 1) * self.n_p + ip];
            let v11 = self.values[(ia + 1) * self.n_p + ip + 1];
            let v0 = v00 + (v01 - v00) * fp;
            let v1 = v10 + (v11 - v10) * fp;
            let interior = v0 + (v1 - v0) * fa;
            *o = interior - (0.5 * da * da + self.margin * da) - (0.5 * dp * dp + self.margin * dp);
        }
    }

    /// Reduced-precision variant of [`log_eval_batch`](Self::log_eval_batch): the
    /// clamp, bilinear interpolation and tail continuation run in `f32` against the
    /// `f32` copy of the value table (`KernelPrecision::F32`). The f64 path remains
    /// the reference; tolerance and decision-equivalence against it are pinned by
    /// the `simd_equivalence` test suites.
    ///
    /// # Panics
    ///
    /// Panics if the query slices and `out` have different lengths.
    pub fn log_eval_batch_f32(&self, amplitudes: &[f64], phases: &[f64], out: &mut [f64]) {
        assert_eq!(
            amplitudes.len(),
            phases.len(),
            "query planes must have equal lengths"
        );
        assert_eq!(
            amplitudes.len(),
            out.len(),
            "output must match the query count"
        );
        let a_lo = self.a_lo as f32;
        let p_lo = self.p_lo as f32;
        let a_step = self.a_step as f32;
        let p_step = self.p_step as f32;
        let a_hi = a_lo + a_step * (self.n_a - 1) as f32;
        let p_hi = p_lo + p_step * (self.n_p - 1) as f32;
        let bw_a = self.bw_a as f32;
        let bw_p = self.bw_p as f32;
        let margin = self.margin as f32;
        for ((&aq, &pq), o) in amplitudes.iter().zip(phases).zip(out.iter_mut()) {
            let a = aq as f32;
            let p = pq as f32;
            let (ca, da) = clamp_axis_f32(a, a_lo, a_hi, bw_a);
            let (cp, dp) = clamp_axis_f32(p, p_lo, p_hi, bw_p);
            let ta = (ca - a_lo) / a_step;
            let tp = (cp - p_lo) / p_step;
            let ia = (ta as usize).min(self.n_a - 2);
            let ip = (tp as usize).min(self.n_p - 2);
            let fa = (ta - ia as f32).clamp(0.0, 1.0);
            let fp = (tp - ip as f32).clamp(0.0, 1.0);
            let v00 = self.values_f32[ia * self.n_p + ip];
            let v01 = self.values_f32[ia * self.n_p + ip + 1];
            let v10 = self.values_f32[(ia + 1) * self.n_p + ip];
            let v11 = self.values_f32[(ia + 1) * self.n_p + ip + 1];
            let v0 = v00 + (v01 - v00) * fp;
            let v1 = v10 + (v11 - v10) * fp;
            let interior = v0 + (v1 - v0) * fa;
            *o = (interior - (0.5 * da * da + margin * da) - (0.5 * dp * dp + margin * dp)) as f64;
        }
    }
}

/// Grid extent of one axis: the sample range padded by `margin` bandwidths, clamped
/// to the physically meaningful range of the coordinate.
fn axis_extent(
    samples: &[f64],
    bw: f64,
    margin: f64,
    floor: Option<f64>,
    ceil: Option<f64>,
) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
    }
    let mut lo = min - margin * bw;
    let mut hi = max + margin * bw;
    if let Some(f) = floor {
        lo = lo.max(f);
    }
    if let Some(c) = ceil {
        hi = hi.min(c);
    }
    if hi <= lo {
        hi = lo + bw;
    }
    (lo, hi)
}

/// Node count and exact step spanning `[lo, hi]` at the spec's resolution.
fn axis_nodes(lo: f64, hi: f64, bw: f64, spec: &GridSpec) -> (usize, f64) {
    // Clamp in the float domain: a pathologically small bandwidth makes the ideal
    // node count overflow `usize` (a debug-build panic) if cast first.
    let ideal = ((hi - lo) / (bw / spec.points_per_bandwidth))
        .ceil()
        .min(spec.max_points_per_axis as f64);
    let n = (ideal as usize + 1).clamp(2, spec.max_points_per_axis);
    (n, (hi - lo) / (n - 1) as f64)
}

/// Kernel exponents of every (node, sample) pair along one axis, row-major by node.
fn axis_exponents(lo: f64, step: f64, n_nodes: usize, samples: &[f64], bw: f64) -> Vec<f64> {
    let inv = 1.0 / bw;
    let mut out = Vec::with_capacity(n_nodes * samples.len());
    for i in 0..n_nodes {
        let x = lo + step * i as f64;
        for &s in samples {
            let u = (x - s) * inv;
            out.push(-0.5 * u * u);
        }
    }
    out
}

/// Clamps `x` into `[lo, hi]`, returning the clamped coordinate and the overshoot in
/// bandwidth units (0 when inside).
fn clamp_axis(x: f64, lo: f64, hi: f64, bw: f64) -> (f64, f64) {
    if x < lo {
        (lo, (lo - x) / bw)
    } else if x > hi {
        (hi, (x - hi) / bw)
    } else {
        (x, 0.0)
    }
}

/// [`clamp_axis`] in `f32`, for the reduced-precision grid query kernel.
fn clamp_axis_f32(x: f32, lo: f32, hi: f32, bw: f32) -> (f32, f32) {
    if x < lo {
        (lo, (lo - x) / bw)
    } else if x > hi {
        (hi, (x - hi) / bw)
    } else {
        (x, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    #[test]
    fn gaussian_kernel_shape() {
        assert!((gaussian_kernel(0.0) - 1.0 / (2.0 * std::f64::consts::PI)).abs() < 1e-15);
        assert!(gaussian_kernel(1.0) < gaussian_kernel(0.0));
        assert!((gaussian_kernel(2.0) - gaussian_kernel(-2.0)).abs() < 1e-15);
    }

    #[test]
    fn silverman_bandwidth_scales_with_spread() {
        let narrow: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..100).map(|i| i as f64 * 1.0).collect();
        let bn = silverman_bandwidth(&narrow).unwrap();
        let bw = silverman_bandwidth(&wide).unwrap();
        assert!(bw > bn * 50.0, "narrow {bn}, wide {bw}");
        assert!(silverman_bandwidth(&[]).is_err());
        assert_eq!(silverman_bandwidth(&[1.0]).unwrap(), 1.0);
        // Degenerate data still yields a usable positive bandwidth.
        assert!(silverman_bandwidth(&[2.0; 10]).unwrap() > 0.0);
    }

    #[test]
    fn bandwidth_selector_fixed_validation() {
        assert!(select_bandwidth(&[1.0, 2.0], BandwidthSelector::Fixed(0.0)).is_err());
        assert_eq!(
            select_bandwidth(&[1.0, 2.0], BandwidthSelector::Fixed(0.7)).unwrap(),
            0.7
        );
    }

    #[test]
    fn leave_one_out_close_to_silverman_for_gaussian_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..200).map(|_| g.sample(&mut rng, 0.0, 1.0)).collect();
        let s = select_bandwidth(&xs, BandwidthSelector::Silverman).unwrap();
        let l = select_bandwidth(&xs, BandwidthSelector::LeaveOneOut).unwrap();
        // For Gaussian data the LOO-selected bandwidth should be within the searched
        // factor range of the Silverman pilot.
        assert!(l >= 0.25 * s - 1e-12 && l <= 3.0 * s + 1e-12);
    }

    #[test]
    fn kde1d_integrates_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..300).map(|_| g.sample(&mut rng, 1.0, 0.5)).collect();
        let kde = KernelDensity1d::new(&xs, BandwidthSelector::Silverman).unwrap();
        // Numerically integrate over a wide interval; the kernel in the paper is
        // (1/2π)e^{-u²/2}, i.e. 1/sqrt(2π) times smaller than a true Gaussian pdf, so
        // the KDE integrates to 1/sqrt(2π) ≈ 0.3989.
        let grid = kde.eval_grid(-4.0, 6.0, 4001);
        let dx = 10.0 / 4000.0;
        let integral: f64 = grid.iter().map(|(_, d)| d * dx).sum();
        let expected = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((integral - expected).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn kde1d_peaks_near_data_mode() {
        let xs = vec![0.9, 1.0, 1.05, 1.1, 0.95, 1.02, 5.0];
        let kde = KernelDensity1d::new(&xs, BandwidthSelector::Silverman).unwrap();
        assert!(kde.eval(1.0) > kde.eval(3.0));
        assert!(
            kde.eval(1.0) > kde.eval(5.0),
            "single outlier should not dominate"
        );
        assert_eq!(kde.len(), 7);
        assert!(!kde.is_empty());
    }

    #[test]
    fn kde1d_bandwidth_controls_smoothness() {
        // Mirrors the paper's Fig. 6a: larger bandwidths over-smooth (lower peak).
        let xs = vec![-2.0, -1.8, 0.0, 0.1, 0.2, 3.0, 3.1];
        let narrow = KernelDensity1d::new(&xs, BandwidthSelector::Fixed(0.3)).unwrap();
        let wide = KernelDensity1d::new(&xs, BandwidthSelector::Fixed(3.0)).unwrap();
        assert!(narrow.eval(0.1) > wide.eval(0.1));
    }

    #[test]
    fn kde1d_grid_edges() {
        let kde = KernelDensity1d::new(&[0.0, 1.0], BandwidthSelector::Fixed(1.0)).unwrap();
        assert!(kde.eval_grid(0.0, 1.0, 0).is_empty());
        assert_eq!(kde.eval_grid(0.5, 1.0, 1).len(), 1);
        let g = kde.eval_grid(-1.0, 2.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[10].0, 2.0);
    }

    #[test]
    fn product_kde_requires_samples_and_positive_bandwidths() {
        assert!(ProductKde2d::new(&[], BandwidthSelector::Silverman).is_err());
        assert!(ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.0, 1.0).is_err());
        assert!(ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 1.0, -1.0).is_err());
    }

    #[test]
    fn product_kde_peaks_at_sample_cluster() {
        let samples = vec![(0.1, 0.0), (0.12, 0.05), (0.09, -0.02), (0.11, 0.01)];
        let kde = ProductKde2d::new(&samples, BandwidthSelector::Silverman).unwrap();
        assert!(kde.eval(0.1, 0.0) > kde.eval(1.0, 1.0));
        assert!(
            kde.eval(0.1, 0.0) > kde.eval(0.1, 2.0),
            "phase axis matters"
        );
        assert!(
            kde.eval(0.1, 0.0) > kde.eval(2.0, 0.0),
            "amplitude axis matters"
        );
    }

    #[test]
    fn product_kde_log_eval_is_finite_far_from_data() {
        let kde = ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.05, 0.05).unwrap();
        let ll = kde.log_eval(100.0, 100.0);
        assert!(ll.is_finite());
        assert!(ll < kde.log_eval(0.0, 0.0));
    }

    #[test]
    fn log_eval_keeps_far_tails_strictly_ordered() {
        // Regression for the old `max(1e-300).ln()` clamp: every candidate more than
        // ~38 bandwidths out used to collapse to the same −690.78 floor, erasing the
        // ML ordering between distant lattice points. The log-sum-exp form keeps the
        // Gaussian tail strictly decreasing.
        let kde = ProductKde2d::with_bandwidths(&[(0.0, 0.0), (0.1, 0.2)], 0.05, 0.05).unwrap();
        let near = kde.log_eval(5.0, 0.0);
        let far = kde.log_eval(10.0, 0.0);
        let farther = kde.log_eval(20.0, 0.0);
        assert!(near > far, "near {near} far {far}");
        assert!(far > farther, "far {far} farther {farther}");
        assert!(farther.is_finite());
        // All three are deep below the old clamp.
        assert!(near < -690.0);
        // Within the support, log-sum-exp agrees with the linear-domain log.
        let ll = kde.log_eval(0.07, 0.1);
        assert!((ll - kde.eval(0.07, 0.1).ln()).abs() < 1e-12);
    }

    #[test]
    fn product_kde_update_after_reserve_keeps_capacity() {
        let mut kde = ProductKde2d::new(
            &[(0.0, 0.0), (0.1, 0.1), (0.2, -0.1)],
            BandwidthSelector::Silverman,
        )
        .unwrap();
        kde.reserve(8);
        // Buffer-pointer stability across the update proves no reallocation took
        // place (the allocation-count pin lives in core's `model_alloc` test; this
        // is the dependency-free version).
        let amp_ptr = kde.amplitudes().as_ptr();
        let phase_ptr = kde.phases().as_ptr();
        let new: Vec<(f64, f64)> = (0..8).map(|i| (i as f64 * 0.01, 0.0)).collect();
        kde.update(&new, BandwidthSelector::LeaveOneOut).unwrap();
        assert_eq!(kde.len(), 11);
        assert_eq!(
            kde.amplitudes().as_ptr(),
            amp_ptr,
            "amplitude buffer reallocated despite reserve"
        );
        assert_eq!(
            kde.phases().as_ptr(),
            phase_ptr,
            "phase buffer reallocated despite reserve"
        );
    }

    #[test]
    fn grid_kde_matches_exact_inside_the_sample_region() {
        let samples: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let x = i as f64 / 30.0;
                (0.2 + 0.6 * (x * 9.7).sin().abs(), 1.5 * (x * 4.3).cos())
            })
            .collect();
        let kde = ProductKde2d::with_bandwidths(&samples, 0.15, 0.4).unwrap();
        let spec = GridSpec {
            points_per_bandwidth: 8.0,
            max_points_per_axis: 512,
            margin_bandwidths: 4.0,
        };
        let grid = GridKde2d::build(&kde, &spec).unwrap();
        for i in 0..40 {
            let a = 0.05 + 0.9 * i as f64 / 40.0;
            let p = -2.0 + 4.0 * ((i * 7) % 40) as f64 / 40.0;
            let exact = kde.log_eval(a, p);
            let approx = grid.log_eval(a, p);
            assert!(
                (exact - approx).abs() < 0.05,
                "({a}, {p}): exact {exact}, grid {approx}"
            );
        }
    }

    #[test]
    fn grid_kde_far_tails_are_finite_and_strictly_ordered() {
        let grid = GridKde2d::from_axes(
            &[0.1, 0.3, 0.2],
            &[0.0, 0.4, -0.3],
            0.08,
            0.25,
            &GridSpec::default(),
        )
        .unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..30 {
            let ll = grid.log_eval(0.3 + k as f64 * 0.5, 0.1);
            assert!(ll.is_finite());
            assert!(ll < prev, "tail must strictly decrease: {ll} !< {prev}");
            prev = ll;
        }
        // The low-amplitude side also extrapolates monotonically toward the data.
        assert!(grid.log_eval(0.0, 0.0) < grid.log_eval(0.1, 0.0));
    }

    #[test]
    fn grid_kde_respects_spec_caps_and_validates() {
        let amps = [0.0, 1.0];
        let phases = [0.0, 0.5];
        let spec = GridSpec {
            points_per_bandwidth: 100.0,
            max_points_per_axis: 16,
            margin_bandwidths: 3.0,
        };
        let g = GridKde2d::from_axes(&amps, &phases, 0.05, 0.05, &spec).unwrap();
        assert_eq!(g.num_points_amplitude(), 16);
        assert_eq!(g.num_points_phase(), 16);
        assert!(GridKde2d::from_axes(&[], &[], 0.1, 0.1, &GridSpec::default()).is_err());
        assert!(GridKde2d::from_axes(&[0.0], &[], 0.1, 0.1, &GridSpec::default()).is_err());
        assert!(GridKde2d::from_axes(&[0.0], &[0.0], 0.0, 0.1, &GridSpec::default()).is_err());
        let bad = GridSpec {
            points_per_bandwidth: 0.0,
            ..Default::default()
        };
        assert!(GridKde2d::from_axes(&[0.0], &[0.0], 0.1, 0.1, &bad).is_err());
        // A huge bandwidth (the kernel-ablation configuration) still builds: the
        // phase extent clamps to (−π, π] and the node count floors at 2.
        let wide = GridKde2d::from_axes(&[0.0], &[0.0], 0.1, 1.0e6, &GridSpec::default()).unwrap();
        assert!(wide.num_points_phase() >= 2);
        assert!(wide.log_eval(0.0, 3.0).is_finite());
        // …and a pathologically small one must not overflow the node count (the
        // float-domain clamp in `axis_nodes`; previously a debug-build panic).
        let tiny =
            GridKde2d::from_axes(&[0.0, 1.0], &[0.0, 0.1], 1e-300, 0.1, &GridSpec::default())
                .unwrap();
        assert_eq!(
            tiny.num_points_amplitude(),
            GridSpec::default().max_points_per_axis
        );
    }

    #[test]
    fn product_kde_batch_matches_scalar_log_eval() {
        // 13 samples: not a multiple of the lane width, so the remainder path runs.
        let samples: Vec<(f64, f64)> = (0..13)
            .map(|i| (0.1 + 0.03 * i as f64, 0.2 * ((i * 3) % 7) as f64 - 0.5))
            .collect();
        let kde = ProductKde2d::with_bandwidths(&samples, 0.08, 0.3).unwrap();
        let amps: Vec<f64> = (0..9).map(|q| 0.02 + 0.07 * q as f64).collect();
        let phases: Vec<f64> = (0..9).map(|q| -0.8 + 0.2 * q as f64).collect();
        let mut out = vec![0.0; 9];
        kde.log_eval_batch(&amps, &phases, &mut out);
        for q in 0..9 {
            let want = kde.log_eval(amps[q], phases[q]);
            assert!(
                (out[q] - want).abs() < 1e-9,
                "query {q}: batch {} vs scalar {want}",
                out[q]
            );
        }
        // Far-tail queries run the lane-parallel log-sum-exp: within the batch
        // budget of the scalar fallback, and strictly ordered in distance.
        let mut tail = [0.0; 2];
        kde.log_eval_batch(&[50.0, 55.0], &[0.0, 0.0], &mut tail);
        for (q, a) in [50.0, 55.0].iter().enumerate() {
            let want = kde.log_eval(*a, 0.0);
            let tol = 1e-9 * (1.0 + want.abs());
            assert!(
                (tail[q] - want).abs() <= tol,
                "tail query {q}: batch {} vs scalar {want}",
                tail[q]
            );
        }
        assert!(tail[1] < tail[0], "tails must stay strictly ordered");
    }

    #[test]
    #[should_panic(expected = "must match the query count")]
    fn product_kde_batch_validates_output_length() {
        let kde = ProductKde2d::with_bandwidths(&[(0.0, 0.0)], 0.1, 0.1).unwrap();
        let mut out = [0.0; 1];
        kde.log_eval_batch(&[0.0, 1.0], &[0.0, 0.0], &mut out);
    }

    #[test]
    fn grid_kde_batch_is_bit_identical_to_scalar() {
        let grid = GridKde2d::from_axes(
            &[0.1, 0.3, 0.2, 0.5],
            &[0.0, 0.4, -0.3, 0.2],
            0.08,
            0.25,
            &GridSpec::default(),
        )
        .unwrap();
        // Interior, edge and far-tail queries in one batch.
        let amps = [0.15, 0.0, 3.0, 0.42, 10.0];
        let phases = [0.1, -3.0, 0.0, 0.35, 2.0];
        let mut out = [0.0; 5];
        grid.log_eval_batch(&amps, &phases, &mut out);
        for q in 0..5 {
            let want = grid.log_eval(amps[q], phases[q]);
            assert_eq!(out[q].to_bits(), want.to_bits(), "query {q}");
        }
    }

    #[test]
    fn grid_kde_f32_batch_tracks_f64_within_budget() {
        let samples_a: Vec<f64> = (0..20).map(|i| 0.1 + 0.02 * i as f64).collect();
        let samples_p: Vec<f64> = (0..20).map(|i| 0.3 * ((i * 5) % 11) as f64 - 1.0).collect();
        let grid =
            GridKde2d::from_axes(&samples_a, &samples_p, 0.1, 0.4, &GridSpec::default()).unwrap();
        let amps = [0.15, 0.3, 0.05, 1.2, 4.0];
        let phases = [0.2, -0.9, 1.4, 0.0, -2.0];
        let mut f64_out = [0.0; 5];
        let mut f32_out = [0.0; 5];
        grid.log_eval_batch(&amps, &phases, &mut f64_out);
        grid.log_eval_batch_f32(&amps, &phases, &mut f32_out);
        for q in 0..5 {
            // Log-density values are O(1)–O(10) here; f32 gives ~7 significant
            // digits, so absolute agreement to 1e-3 is a conservative budget.
            assert!(
                (f64_out[q] - f32_out[q]).abs() < 1e-3,
                "query {q}: f64 {} vs f32 {}",
                f64_out[q],
                f32_out[q]
            );
        }
    }

    #[test]
    fn product_kde_update_extends_samples() {
        let mut kde =
            ProductKde2d::new(&[(0.0, 0.0), (0.1, 0.1)], BandwidthSelector::Silverman).unwrap();
        assert_eq!(kde.len(), 2);
        kde.update(&[(0.05, 0.02), (0.07, -0.03)], BandwidthSelector::Silverman)
            .unwrap();
        assert_eq!(kde.len(), 4);
        kde.update(&[], BandwidthSelector::Silverman).unwrap();
        assert_eq!(kde.len(), 4);
        assert!(kde.bandwidth_amplitude() > 0.0);
        assert!(kde.bandwidth_phase() > 0.0);
        assert!(!kde.is_empty());
    }

    #[test]
    fn product_kde_separates_amplitude_and_phase_scales() {
        // Samples with large amplitude spread and tiny phase spread: the selected
        // bandwidths should reflect the difference, which is the reason the paper uses a
        // product kernel instead of a single Euclidean kernel.
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 0.2, (i % 3) as f64 * 0.001))
            .collect();
        let kde = ProductKde2d::new(&samples, BandwidthSelector::Silverman).unwrap();
        assert!(kde.bandwidth_amplitude() > 10.0 * kde.bandwidth_phase());
    }
}
