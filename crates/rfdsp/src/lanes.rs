//! Lane-parallel kernel building blocks.
//!
//! The hot kernels of this workspace (sliding-DFT updates, KDE scoring, grid
//! interpolation) are all element-wise loops over a few dozen to a few thousand
//! elements. On stable rustc the reliable way to get SIMD code for them is
//! **autovectorization over fixed-width chunks**: the loops below process `LANES`
//! elements at a time through fixed-size local arrays, which LLVM lowers to packed
//! SSE2/AVX arithmetic without any `unsafe` or nightly features. Remainder elements
//! go through the *same* scalar arithmetic, so results do not depend on how an input
//! length splits into chunks.
//!
//! The module also provides [`exp_approx`] / [`exp_batch`]: a polynomial `exp`
//! whose every step (rounding, Cody–Waite reduction, Horner evaluation, exponent
//! bit-twiddling) is branch-free data parallelism, so the compiler can vectorize
//! the surrounding loops — `f64::exp` is an opaque libm call that never
//! vectorizes. Accuracy is ~1 ulp over the domain the KDE kernels use (see the
//! tests), far inside the ≤ 1e-9 agreement budget the batched score paths promise
//! against their scalar references.

/// Lane width used by the chunked kernels. Four `f64`s is one AVX register — the
/// sweet spot for the short (48–128 element) loops in this workspace; on SSE2-only
/// targets LLVM simply emits two 2-lane operations per chunk.
pub const LANES: usize = 4;

/// `log2(e)`, the factor mapping `exp(x)` onto `2^(x·LOG2E)`.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High part of `ln 2` for Cody–Waite argument reduction (fdlibm split).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part of `ln 2` (the bits `LN2_HI` dropped).
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Inputs below this underflow to exact zero (`exp(-708.4) ≈ 1e-308`, the smallest
/// normal). The scalar fallback paths keep subnormal tails; a term this small is
/// invisible next to the `1e-290` fast-path threshold the KDE sums use. Public so
/// batch callers can reason about (or skip) contributions that are exactly `0.0`
/// per lane.
pub const EXP_UNDERFLOW: f64 = -708.396_418_532_264_1;
/// Inputs above this overflow to `+∞`.
const OVERFLOW: f64 = 709.782_712_893_384;

/// Degree-12 Taylor coefficients of `exp(r)` (`1/n!`), evaluated by Horner over the
/// reduced range `|r| ≤ ln(2)/2`, where the truncation error (`r¹³/13!`) is below
/// `2e-16` relative — rounding noise, not approximation, dominates.
const EXP_POLY: [f64; 13] = [
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5_040.0,
    1.0 / 40_320.0,
    1.0 / 362_880.0,
    1.0 / 3_628_800.0,
    1.0 / 39_916_800.0,
    1.0 / 479_001_600.0,
];

/// Round-to-nearest magic constant `1.5·2^52`: adding it to a `f64` of magnitude
/// below `2^51` forces the value onto the integer lattice (the rounding happens in
/// hardware as part of the add), and the integer lands in the low mantissa bits in
/// two's complement. This replaces `f64::round` — which lowers to a **libm call** on
/// the SSE2 baseline target and would turn the "branch-free" `exp` into one opaque
/// call per element — with a single addition.
const ROUND_SHIFT: f64 = 6_755_399_441_055_744.0;

/// Branch-free polynomial `exp(x)`: `x = k·ln2 + r`, `exp(x) = 2^k · P(r)` with the
/// scale applied through exponent-field bit assembly. Every step maps to a packed
/// instruction — including the rounding, done via `ROUND_SHIFT` instead of a libm
/// `round` call — so loops calling this on fixed-size chunks autovectorize.
///
/// Accuracy: ~1 ulp relative over `[-708, 709]`; exact `0.0` below the underflow
/// threshold and `+∞` above the overflow threshold (no NaN handling — the callers
/// feed finite exponents).
#[inline(always)]
pub fn exp_approx(x: f64) -> f64 {
    let shifted = x * LOG2E + ROUND_SHIFT;
    let k = shifted - ROUND_SHIFT;
    let r = (x - k * LN2_HI) - k * LN2_LO;
    let mut p = EXP_POLY[12];
    p = p * r + EXP_POLY[11];
    p = p * r + EXP_POLY[10];
    p = p * r + EXP_POLY[9];
    p = p * r + EXP_POLY[8];
    p = p * r + EXP_POLY[7];
    p = p * r + EXP_POLY[6];
    p = p * r + EXP_POLY[5];
    p = p * r + EXP_POLY[4];
    p = p * r + EXP_POLY[3];
    p = p * r + EXP_POLY[2];
    p = p * r + EXP_POLY[1];
    p = p * r + EXP_POLY[0];
    // 2^k assembled directly in the exponent field: the low mantissa bits of
    // `shifted` hold `k` in two's complement, and the `<< 52` discards everything
    // above the 11 bits that matter. Inputs whose `k` escapes the biased exponent's
    // range produce a garbage scale, but those are exactly the inputs the clamps
    // below overwrite. No float→int conversion — `cvttsd2si` has no packed f64
    // form before AVX-512, so using it would block vectorization.
    let scale = f64::from_bits(((shifted.to_bits() as i64).wrapping_add(1023) << 52) as u64);
    let v = p * scale;
    // Branchless range clamps (LLVM lowers the conditionals on lane arrays to blends).
    let v = if x < EXP_UNDERFLOW { 0.0 } else { v };
    if x > OVERFLOW {
        f64::INFINITY
    } else {
        v
    }
}

/// [`exp_approx`] over a slice, written as `LANES`-wide chunks plus a remainder that
/// reuses the identical scalar arithmetic — results are independent of alignment and
/// tail length.
#[inline]
pub fn exp_batch(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "exp_batch slices must match");
    let main = xs.len() - xs.len() % LANES;
    for (xc, oc) in xs[..main]
        .chunks_exact(LANES)
        .zip(out[..main].chunks_exact_mut(LANES))
    {
        let mut lane = [0.0f64; LANES];
        for l in 0..LANES {
            lane[l] = exp_approx(xc[l]);
        }
        oc.copy_from_slice(&lane);
    }
    for (x, o) in xs[main..].iter().zip(&mut out[main..]) {
        *o = exp_approx(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_std_to_a_ulp() {
        // Sweep the range the KDE kernels actually use (exponents are -0.5·u² ≤ 0)
        // plus a positive stretch for completeness.
        let mut worst = 0.0f64;
        let mut x = -700.0;
        while x <= 80.0 {
            let got = exp_approx(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            if rel > worst {
                worst = rel;
            }
            x += 0.037;
        }
        assert!(worst < 5e-16, "worst relative error {worst}");
    }

    #[test]
    fn exp_clamps_underflow_and_overflow() {
        assert_eq!(exp_approx(-1000.0), 0.0);
        assert_eq!(exp_approx(-1e9), 0.0);
        assert_eq!(exp_approx(1000.0), f64::INFINITY);
        assert!((exp_approx(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn exp_batch_matches_scalar_for_any_tail_length() {
        for len in 0..20usize {
            let xs: Vec<f64> = (0..len).map(|i| -0.37 * i as f64).collect();
            let mut out = vec![0.0; len];
            exp_batch(&xs, &mut out);
            for (x, o) in xs.iter().zip(&out) {
                // Bit-for-bit: chunked and remainder elements run the same arithmetic.
                assert_eq!(o.to_bits(), exp_approx(*x).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn exp_batch_rejects_mismatched_lengths() {
        let mut out = [0.0; 2];
        exp_batch(&[1.0], &mut out);
    }
}
