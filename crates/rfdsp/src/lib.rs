//! # rfdsp — DSP substrate for the CPRecycle reproduction
//!
//! This crate implements, from scratch, every digital-signal-processing primitive the
//! CPRecycle reproduction needs:
//!
//! * [`Complex`] — a small, `Copy`, `f64`-based complex number type with the full set of
//!   arithmetic operators and the polar/exponential helpers baseband code relies on.
//! * [`fft`] — an iterative radix-2 decimation-in-time FFT with a reusable [`fft::FftPlan`]
//!   (precomputed twiddles and bit-reversal table) plus a direct DFT fallback for
//!   non-power-of-two lengths.
//! * [`sliding`] — a sliding-DFT plan ([`sliding::SlidingDft`]) that advances all `N`
//!   bins of a window's spectrum in `O(N)` per one-sample shift, the kernel behind
//!   CPRecycle's segment extraction (`P` windows per symbol that differ by one sample).
//! * [`window`] — rectangular, Hann, Hamming, Blackman and Kaiser window functions.
//! * [`filter`] — FIR filter design (windowed-sinc low-pass / band-pass) and streaming
//!   convolution, used by the channel simulator to model transmit spectral masks.
//! * [`stats`] — descriptive statistics, empirical CDFs, histograms and correlation,
//!   used both by the experiment harness and by the ISI-free-region detector.
//! * [`kde`] — Gaussian kernel density estimation (univariate and bivariate product
//!   kernels) with Silverman and data-driven bandwidth selection. The CPRecycle
//!   interference model (paper Eq. 4) is a thin specialisation of these primitives.
//! * [`power`] — dB conversions, signal power / energy, SNR/SIR scaling helpers and a
//!   Welch periodogram estimator used to plot spectra (paper Fig. 1 / Fig. 4a).
//! * [`noise`] — seedable complex AWGN and Gaussian sample generators (Box–Muller).
//! * [`resample`] — integer up/down sampling and fractional-delay (windowed-sinc)
//!   interpolation used to give interferers sub-sample timing offsets.
//!
//! The crate is deliberately synchronous and allocation-conscious: hot paths (FFT,
//! filtering) operate on caller-provided or plan-owned buffers, and all randomness is
//! injected through [`rand::Rng`] so simulations are reproducible from a seed.
//!
//! ## Quick example
//!
//! ```
//! use rfdsp::{Complex, fft::FftPlan};
//!
//! // A single complex tone lands on exactly one FFT bin.
//! let n = 64;
//! let plan = FftPlan::new(n);
//! let tone: Vec<Complex> = (0..n)
//!     .map(|t| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 5.0 * t as f64 / n as f64))
//!     .collect();
//! let spectrum = plan.fft(&tone);
//! let peak = spectrum
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.norm().partial_cmp(&b.1.norm()).unwrap())
//!     .unwrap()
//!     .0;
//! assert_eq!(peak, 5);
//! ```

// `deny` rather than `forbid`: the one explicitly-audited exception is the
// runtime-detected AVX2 kernel in [`simd`], which opts in with a scoped
// `#[allow(unsafe_code)]` on the intrinsics function alone.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod complex;
pub mod error;
pub mod fft;
pub mod filter;
pub mod kde;
pub mod lanes;
pub mod noise;
pub mod power;
pub mod resample;
pub mod simd;
pub mod sliding;
pub mod stats;
pub mod window;

pub use complex::Complex;
pub use error::DspError;

/// Convenience alias for results returned by fallible rfdsp operations.
pub type Result<T> = std::result::Result<T, DspError>;
