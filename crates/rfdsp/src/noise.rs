//! Gaussian and complex-AWGN sample generation.
//!
//! All noise in the reproduction is generated through [`GaussianSource`], a Box–Muller
//! transform driven by a caller-supplied [`rand::Rng`]. Keeping the RNG external means
//! every experiment is reproducible from a single seed, and the channel/receiver crates
//! never own hidden global randomness.

use crate::complex::Complex;
use rand::Rng;

/// A Box–Muller Gaussian sample generator with one-sample caching.
///
/// The Box–Muller transform produces samples in pairs; the second sample is cached so
/// consecutive calls are cheap and no entropy is wasted.
#[derive(Debug, Clone, Default)]
pub struct GaussianSource {
    cached: Option<f64>,
}

impl GaussianSource {
    /// Creates a new source with an empty cache.
    pub fn new() -> Self {
        GaussianSource { cached: None }
    }

    /// Draws one sample from `N(0, 1)`.
    pub fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller: u1 in (0, 1], u2 in [0, 1)
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one sample from `N(mean, std_dev²)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard(rng)
    }

    /// Draws one circularly-symmetric complex Gaussian sample with total variance
    /// `variance` (i.e. each of the real and imaginary parts has variance `variance/2`).
    ///
    /// This is the standard model for complex AWGN: `E[|n|²] = variance`.
    pub fn complex_sample<R: Rng + ?Sized>(&mut self, rng: &mut R, variance: f64) -> Complex {
        let s = (variance / 2.0).sqrt();
        Complex::new(s * self.standard(rng), s * self.standard(rng))
    }

    /// Fills a vector with `n` circularly-symmetric complex Gaussian samples of total
    /// variance `variance`.
    pub fn complex_vector<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        n: usize,
        variance: f64,
    ) -> Vec<Complex> {
        (0..n).map(|_| self.complex_sample(rng, variance)).collect()
    }

    /// Adds complex AWGN of total variance `variance` to `signal` in place.
    pub fn add_awgn<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        signal: &mut [Complex],
        variance: f64,
    ) {
        for s in signal.iter_mut() {
            *s += self.complex_sample(rng, variance);
        }
    }
}

/// Draws a sample from a Rayleigh distribution with scale `sigma`
/// (the magnitude of a complex Gaussian whose components have std-dev `sigma`).
pub fn rayleigh<R: Rng + ?Sized>(source: &mut GaussianSource, rng: &mut R, sigma: f64) -> f64 {
    let a = source.sample(rng, 0.0, sigma);
    let b = source.sample(rng, 0.0, sigma);
    a.hypot(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..200_000).map(|_| g.standard(&mut rng)).collect();
        let mean = stats::mean(&xs).unwrap();
        let var = stats::variance(&xs).unwrap();
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn scaled_normal_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..100_000).map(|_| g.sample(&mut rng, 3.0, 2.0)).collect();
        assert!((stats::mean(&xs).unwrap() - 3.0).abs() < 0.05);
        assert!((stats::variance(&xs).unwrap() - 4.0).abs() < 0.1);
    }

    #[test]
    fn complex_noise_has_requested_power() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut g = GaussianSource::new();
        for var in [0.1, 1.0, 10.0] {
            let xs = g.complex_vector(&mut rng, 100_000, var);
            let p: f64 = xs.iter().map(|x| x.norm_sqr()).sum::<f64>() / xs.len() as f64;
            assert!((p - var).abs() / var < 0.05, "power {p} vs {var}");
        }
    }

    #[test]
    fn complex_noise_components_uncorrelated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut g = GaussianSource::new();
        let xs = g.complex_vector(&mut rng, 100_000, 1.0);
        let re: Vec<f64> = xs.iter().map(|x| x.re).collect();
        let im: Vec<f64> = xs.iter().map(|x| x.im).collect();
        let corr = stats::pearson_correlation(&re, &im).unwrap();
        assert!(corr.abs() < 0.02, "correlation {corr}");
    }

    #[test]
    fn add_awgn_changes_signal_by_expected_power() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut g = GaussianSource::new();
        let clean = vec![Complex::new(1.0, 0.0); 50_000];
        let mut noisy = clean.clone();
        g.add_awgn(&mut rng, &mut noisy, 0.25);
        let err_power: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / clean.len() as f64;
        assert!((err_power - 0.25).abs() < 0.02);
    }

    #[test]
    fn rayleigh_mean_matches_theory() {
        // E[Rayleigh(sigma)] = sigma * sqrt(pi/2)
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut g = GaussianSource::new();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| rayleigh(&mut g, &mut rng, 2.0))
            .collect();
        let expected = 2.0 * (std::f64::consts::PI / 2.0).sqrt();
        assert!((stats::mean(&xs).unwrap() - expected).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaussianSource::new();
        let mut b = GaussianSource::new();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.standard(&mut rng_a), b.standard(&mut rng_b));
        }
    }
}
