//! Power, energy and decibel helpers plus a Welch periodogram.
//!
//! Every experiment in the paper is parameterised in decibels (SNR, SIR, interference
//! power per subcarrier, spectrum masks), so these conversions are centralised here and
//! used by the channel simulator to scale signals to exact SNR/SIR targets.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft::FftPlan;
use crate::window;
use crate::Result;

/// Converts a linear power ratio to decibels. Returns `-inf` for zero input.
#[inline]
pub fn lin_to_db(p: f64) -> f64 {
    10.0 * p.log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear amplitude ratio to decibels (20·log10).
#[inline]
pub fn amplitude_to_db(a: f64) -> f64 {
    20.0 * a.log10()
}

/// Converts decibels to a linear amplitude ratio.
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Average power (mean squared magnitude) of a complex signal.
pub fn signal_power(x: &[Complex]) -> Result<f64> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(x.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64)
}

/// Total energy (sum of squared magnitudes) of a complex signal.
pub fn signal_energy(x: &[Complex]) -> f64 {
    x.iter().map(|v| v.norm_sqr()).sum()
}

/// Peak-to-average power ratio in dB — a sanity metric for generated OFDM waveforms.
pub fn papr_db(x: &[Complex]) -> Result<f64> {
    let avg = signal_power(x)?;
    if avg == 0.0 {
        return Err(DspError::invalid("x", "signal has zero power"));
    }
    let peak = x.iter().map(|v| v.norm_sqr()).fold(0.0, f64::max);
    Ok(lin_to_db(peak / avg))
}

/// Scales `signal` in place so its average power becomes `target_power` (linear).
pub fn normalize_power(signal: &mut [Complex], target_power: f64) -> Result<()> {
    if target_power < 0.0 {
        return Err(DspError::invalid("target_power", "must be non-negative"));
    }
    let p = signal_power(signal)?;
    if p == 0.0 {
        return Err(DspError::invalid(
            "signal",
            "cannot normalise a zero-power signal",
        ));
    }
    let g = (target_power / p).sqrt();
    for s in signal.iter_mut() {
        *s = s.scale(g);
    }
    Ok(())
}

/// Returns the linear gain that must be applied to `interferer` so that
/// `signal_power(signal) / signal_power(scaled interferer)` equals `sir_db`.
///
/// The scenario builders use this to place interferers at exact SIR operating points,
/// which is how the paper's x-axes (Figs. 8–12) are swept.
pub fn gain_for_sir(signal: &[Complex], interferer: &[Complex], sir_db: f64) -> Result<f64> {
    let ps = signal_power(signal)?;
    let pi = signal_power(interferer)?;
    if pi == 0.0 {
        return Err(DspError::invalid("interferer", "zero-power interferer"));
    }
    let target_pi = ps / db_to_lin(sir_db);
    Ok((target_pi / pi).sqrt())
}

/// Welch-averaged periodogram power spectral density estimate.
///
/// The signal is split into 50 %-overlapping Hann-windowed segments of length
/// `segment_len` (a power of two); the magnitude-squared FFTs are averaged. Output is a
/// vector of `segment_len` linear-power values ordered like FFT bins (DC first); use
/// [`crate::fft::fftshift`] for plotting.
pub fn welch_psd(x: &[Complex], segment_len: usize) -> Result<Vec<f64>> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !segment_len.is_power_of_two() || segment_len == 0 {
        return Err(DspError::UnsupportedLength(segment_len));
    }
    if x.len() < segment_len {
        return Err(DspError::LengthMismatch {
            expected: segment_len,
            actual: x.len(),
        });
    }
    let plan = FftPlan::new(segment_len);
    let win = window::hann(segment_len);
    // Normalisation chosen so that Σ_k PSD[k] equals the mean signal power
    // (Parseval-consistent; white noise of variance σ² integrates to σ²).
    let win_sum_sq: f64 = win.iter().map(|w| w * w).sum();
    let hop = segment_len / 2;
    let mut acc = vec![0.0; segment_len];
    let mut count = 0usize;
    let mut start = 0usize;
    let mut buf = vec![Complex::zero(); segment_len];
    while start + segment_len <= x.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = x[start + i].scale(win[i]);
        }
        plan.fft_in_place(&mut buf)?;
        for (a, b) in acc.iter_mut().zip(&buf) {
            *a += b.norm_sqr();
        }
        count += 1;
        start += hop;
    }
    let norm = 1.0 / (count as f64 * segment_len as f64 * win_sum_sq);
    for a in acc.iter_mut() {
        *a *= norm;
    }
    Ok(acc)
}

/// Convenience: Welch PSD expressed in dB, with a floor to keep log of empty bins finite.
pub fn welch_psd_db(x: &[Complex], segment_len: usize) -> Result<Vec<f64>> {
    let psd = welch_psd(x, segment_len)?;
    Ok(psd.iter().map(|p| lin_to_db(p.max(1e-30))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -10.0, 0.0, 3.0, 20.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-12);
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_lin(3.0) - 1.9952623149688795).abs() < 1e-12);
        assert_eq!(db_to_lin(0.0), 1.0);
    }

    #[test]
    fn power_and_energy() {
        let x = vec![Complex::new(2.0, 0.0); 8];
        assert_eq!(signal_power(&x).unwrap(), 4.0);
        assert_eq!(signal_energy(&x), 32.0);
        assert!(signal_power(&[]).is_err());
    }

    #[test]
    fn papr_of_constant_envelope_is_zero_db() {
        let x: Vec<Complex> = (0..64).map(|t| Complex::cis(0.1 * t as f64)).collect();
        assert!(papr_db(&x).unwrap().abs() < 1e-9);
        assert!(papr_db(&[Complex::zero(); 4]).is_err());
    }

    #[test]
    fn normalize_power_hits_target() {
        let mut x = vec![Complex::new(3.0, 4.0); 16];
        normalize_power(&mut x, 2.0).unwrap();
        assert!((signal_power(&x).unwrap() - 2.0).abs() < 1e-12);
        assert!(normalize_power(&mut x, -1.0).is_err());
        let mut z = vec![Complex::zero(); 4];
        assert!(normalize_power(&mut z, 1.0).is_err());
    }

    #[test]
    fn gain_for_sir_places_interferer_correctly() {
        let sig = vec![Complex::new(1.0, 0.0); 100];
        let intf = vec![Complex::new(0.5, 0.5); 100];
        for sir in [-20.0, -10.0, 0.0, 10.0] {
            let g = gain_for_sir(&sig, &intf, sir).unwrap();
            let scaled: Vec<Complex> = intf.iter().map(|x| x.scale(g)).collect();
            let measured = lin_to_db(signal_power(&sig).unwrap() / signal_power(&scaled).unwrap());
            assert!(
                (measured - sir).abs() < 1e-9,
                "sir {sir} measured {measured}"
            );
        }
        assert!(gain_for_sir(&sig, &[Complex::zero(); 4], 0.0).is_err());
    }

    #[test]
    fn welch_psd_of_white_noise_is_flat() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut g = GaussianSource::new();
        let x = g.complex_vector(&mut rng, 16384, 1.0);
        let psd = welch_psd(&x, 64).unwrap();
        let avg: f64 = psd.iter().sum::<f64>() / psd.len() as f64;
        // Total power of unit-variance noise should be ~1 when summed over bins/segment.
        let total: f64 = psd.iter().sum();
        assert!((total - 1.0).abs() < 0.15, "total {total}");
        for p in &psd {
            assert!(
                *p > 0.2 * avg && *p < 5.0 * avg,
                "non-flat PSD bin {p} vs avg {avg}"
            );
        }
    }

    #[test]
    fn welch_psd_of_tone_peaks_at_tone_bin() {
        let n = 4096;
        let seg = 128;
        let bin = 10usize; // relative to segment length
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * bin as f64 * t as f64 / seg as f64))
            .collect();
        let psd = welch_psd(&x, seg).unwrap();
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin);
    }

    #[test]
    fn welch_psd_error_cases() {
        let x = vec![Complex::one(); 32];
        assert!(welch_psd(&[], 16).is_err());
        assert!(welch_psd(&x, 12).is_err());
        assert!(welch_psd(&x, 64).is_err());
        assert!(welch_psd_db(&x, 16).is_ok());
    }
}
