//! Sample-rate conversion and fractional delays.
//!
//! Interfering transmitters in the paper are not sample-aligned with the receiver: the
//! adjacent-channel interferer is started with "a temporal offset that is greater than
//! the duration of the cyclic prefix", and in general an asynchronous interferer
//! arrives with an arbitrary sub-sample timing offset. The fractional-delay
//! interpolator here (windowed-sinc) gives scenario builders that control. Integer
//! up/down-sampling supports the oversampling extension discussed in the paper's §6.

use crate::complex::Complex;
use crate::error::DspError;
use crate::window;
use crate::Result;

/// Inserts `factor − 1` zeros between consecutive samples (zero-stuffing upsampler).
///
/// Combined with a low-pass interpolation filter from [`crate::filter`], this implements
/// integer-rate oversampling.
pub fn upsample(x: &[Complex], factor: usize) -> Result<Vec<Complex>> {
    if factor == 0 {
        return Err(DspError::invalid("factor", "must be at least 1"));
    }
    let mut out = vec![Complex::zero(); x.len() * factor];
    for (i, &v) in x.iter().enumerate() {
        out[i * factor] = v;
    }
    Ok(out)
}

/// Keeps every `factor`-th sample (decimator without anti-alias filtering).
pub fn downsample(x: &[Complex], factor: usize) -> Result<Vec<Complex>> {
    if factor == 0 {
        return Err(DspError::invalid("factor", "must be at least 1"));
    }
    Ok(x.iter().step_by(factor).copied().collect())
}

/// Applies a fractional delay of `delay` samples (may be non-integer and/or larger than
/// one) using a Kaiser-windowed sinc interpolator of half-width `half_taps`.
///
/// The output has the same length as the input; samples that would need data from
/// before the start of the signal are zero-filled, which matches the physical picture
/// of a transmission that simply has not started yet.
pub fn fractional_delay(x: &[Complex], delay: f64, half_taps: usize) -> Result<Vec<Complex>> {
    if delay < 0.0 {
        return Err(DspError::invalid("delay", "must be non-negative"));
    }
    if half_taps == 0 {
        return Err(DspError::invalid("half_taps", "must be at least 1"));
    }
    let n = x.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let int_delay = delay.floor() as usize;
    let frac = delay - delay.floor();

    // Pure integer delay: just shift.
    if frac.abs() < 1e-12 {
        let mut out = vec![Complex::zero(); n];
        out[int_delay..n].copy_from_slice(&x[..n - int_delay]);
        return Ok(out);
    }

    // Windowed-sinc fractional interpolation kernel centred on `frac`.
    let taps = 2 * half_taps;
    let win = window::kaiser(taps, 8.0);
    let kernel: Vec<f64> = (0..taps)
        .map(|k| {
            let t = k as f64 - (half_taps as f64 - 1.0) - frac;
            let sinc = if t.abs() < 1e-12 {
                1.0
            } else {
                (std::f64::consts::PI * t).sin() / (std::f64::consts::PI * t)
            };
            sinc * win[k]
        })
        .collect();

    let mut out = vec![Complex::zero(); n];
    for (i, o) in out.iter_mut().enumerate() {
        if i < int_delay {
            continue;
        }
        let base = i - int_delay;
        let mut acc = Complex::zero();
        for (k, &h) in kernel.iter().enumerate() {
            // Kernel tap k corresponds to input sample base - (k - (half_taps - 1)).
            let offset = k as isize - (half_taps as isize - 1);
            let idx = base as isize - offset;
            if idx >= 0 && (idx as usize) < n {
                acc += x[idx as usize].scale(h);
            }
        }
        *o = acc;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::signal_power;

    #[test]
    fn upsample_places_samples_and_zeros() {
        let x = vec![Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        let y = upsample(&x, 3).unwrap();
        assert_eq!(y.len(), 6);
        assert_eq!(y[0], Complex::new(1.0, 0.0));
        assert_eq!(y[1], Complex::zero());
        assert_eq!(y[3], Complex::new(2.0, 0.0));
        assert!(upsample(&x, 0).is_err());
    }

    #[test]
    fn downsample_keeps_every_kth() {
        let x: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, 0.0)).collect();
        let y = downsample(&x, 2).unwrap();
        assert_eq!(y.len(), 5);
        assert_eq!(y[1], Complex::new(2.0, 0.0));
        assert!(downsample(&x, 0).is_err());
    }

    #[test]
    fn upsample_then_downsample_is_identity() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let y = downsample(&upsample(&x, 4).unwrap(), 4).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn integer_delay_shifts_signal() {
        let x: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64 + 1.0, 0.0)).collect();
        let y = fractional_delay(&x, 3.0, 8).unwrap();
        assert_eq!(y.len(), 8);
        for v in &y[..3] {
            assert_eq!(*v, Complex::zero());
        }
        for i in 3..8 {
            assert_eq!(y[i], x[i - 3]);
        }
    }

    #[test]
    fn fractional_delay_of_tone_rotates_phase() {
        // Delaying a complex tone exp(i2πf t) by d samples multiplies it by exp(-i2πf d).
        let n = 256;
        let f = 0.05;
        let d = 2.5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * f * t as f64))
            .collect();
        let y = fractional_delay(&x, d, 16).unwrap();
        // Check away from the edges where the interpolator has full support.
        for (t, v) in y.iter().enumerate().take(n - 40).skip(40) {
            let expected = Complex::cis(2.0 * std::f64::consts::PI * f * (t as f64 - d));
            assert!((*v - expected).norm() < 1e-3, "t={t}");
        }
    }

    #[test]
    fn fractional_delay_preserves_power_of_bandlimited_signal() {
        let n = 512;
        let x: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::cis(2.0 * std::f64::consts::PI * 0.03 * t as f64)
                    + Complex::cis(2.0 * std::f64::consts::PI * 0.11 * t as f64).scale(0.5)
            })
            .collect();
        let y = fractional_delay(&x, 0.37, 16).unwrap();
        let px = signal_power(&x[64..n - 64]).unwrap();
        let py = signal_power(&y[64..n - 64]).unwrap();
        assert!((px - py).abs() / px < 0.02, "px {px} py {py}");
    }

    #[test]
    fn fractional_delay_validation() {
        let x = vec![Complex::one(); 4];
        assert!(fractional_delay(&x, -1.0, 8).is_err());
        assert!(fractional_delay(&x, 1.0, 0).is_err());
        assert!(fractional_delay(&[], 1.5, 8).unwrap().is_empty());
    }
}
