//! Runtime-detected x86-64 SIMD paths.
//!
//! The workspace's default vectorization strategy is autovectorized fixed-width
//! chunking ([`crate::lanes`]), which needs no `unsafe`. This module holds the one
//! place where explicit `core::arch` intrinsics pay for themselves: the sliding-DFT
//! update, whose interleaved complex multiply LLVM only partially vectorizes on the
//! generic target. The AVX2 kernel is selected **at runtime** via
//! `is_x86_feature_detected!`, so a generic build still uses it on capable hardware
//! and silently falls back elsewhere (and on non-x86 targets the module compiles to
//! the fallback alone).
//!
//! Bit-for-bit contract: the intrinsics use only `mul`/`add`/`sub`/`addsub` — no
//! FMA — so every lane performs exactly the scalar formula's operations with one
//! rounding each, and the AVX2 path is **bit-identical** to the scalar and chunked
//! paths (property-tested in `tests/simd_equivalence.rs`).

use crate::complex::Complex;

/// Whether the runtime-detected AVX2 kernels will be used on this machine.
///
/// Always `false` under Miri: the interpreter executes Rust semantics, not
/// vendor intrinsics, so the Miri CI job must take the autovectorized fallback
/// (which is bit-identical anyway).
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(any(not(target_arch = "x86_64"), miri))]
    {
        false
    }
}

/// Sliding-DFT update `s[k] = (s[k] + delta) · w[k]` over interleaved complex slices,
/// dispatching to the AVX2 kernel when the CPU supports it.
///
/// # Panics
///
/// Panics if `spectrum` and `twiddles` have different lengths.
#[inline]
pub fn slide_update(spectrum: &mut [Complex], delta: Complex, twiddles: &[Complex]) {
    assert_eq!(
        spectrum.len(),
        twiddles.len(),
        "spectrum and twiddle tables must match"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        #[allow(unsafe_code)]
        unsafe {
            slide_update_avx2(spectrum, delta, twiddles)
        };
        return;
    }
    slide_update_lanes(spectrum, delta, twiddles);
}

/// The autovectorized fallback: `LANES`-wide chunks through split re/im local
/// arrays, with a scalar remainder running the identical arithmetic.
#[inline]
pub fn slide_update_lanes(spectrum: &mut [Complex], delta: Complex, twiddles: &[Complex]) {
    use crate::lanes::LANES;
    let main = spectrum.len() - spectrum.len() % LANES;
    let (s_main, s_tail) = spectrum.split_at_mut(main);
    let (w_main, w_tail) = twiddles.split_at(main);
    for (sc, wc) in s_main
        .chunks_exact_mut(LANES)
        .zip(w_main.chunks_exact(LANES))
    {
        let mut ar = [0.0f64; LANES];
        let mut ai = [0.0f64; LANES];
        for l in 0..LANES {
            ar[l] = sc[l].re + delta.re;
            ai[l] = sc[l].im + delta.im;
        }
        for l in 0..LANES {
            let wr = wc[l].re;
            let wi = wc[l].im;
            sc[l].re = ar[l] * wr - ai[l] * wi;
            sc[l].im = ar[l] * wi + ai[l] * wr;
        }
    }
    for (s, w) in s_tail.iter_mut().zip(w_tail) {
        *s = (*s + delta) * *w;
    }
}

/// AVX2 kernel: two interleaved complex values per 256-bit register, complex
/// multiply via `movedup`/`permute`/`addsub` (the classic layout — and crucially
/// `mul` + `addsub` only, no FMA, so each lane rounds exactly like the scalar code).
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`) before calling; [`slide_update`] is
/// the only caller and does exactly that. The slice lengths need not match —
/// the loop bound is `spectrum.len()` and [`slide_update`] asserts equality
/// before dispatching.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn slide_update_avx2(spectrum: &mut [Complex], delta: Complex, twiddles: &[Complex]) {
    use core::arch::x86_64::*;
    let n = spectrum.len();
    // `Complex` is `#[repr(C)] { re: f64, im: f64 }`, so a slice of `n` values is
    // exactly `2n` interleaved f64s.
    let sp = spectrum.as_mut_ptr() as *mut f64;
    let wp = twiddles.as_ptr() as *const f64;
    let d = _mm256_setr_pd(delta.re, delta.im, delta.re, delta.im);
    let mut i = 0usize;
    while i + 2 <= n {
        // SAFETY: the loop guard `i + 2 <= n` keeps f64 offsets `2i..2i+4` in
        // bounds of the `2n`-element views of both slices (`slide_update`
        // asserts `twiddles` matches `spectrum`); the unaligned load/store
        // intrinsics have no alignment requirement beyond f64's. Everything
        // between the loads and the store is pure register arithmetic.
        unsafe {
            let s = _mm256_loadu_pd(sp.add(2 * i)); // [s0.re s0.im s1.re s1.im]
            let w = _mm256_loadu_pd(wp.add(2 * i));
            let a = _mm256_add_pd(s, d); // a = s + delta
            let wr = _mm256_movedup_pd(w); // [w0.re w0.re w1.re w1.re]
            let wi = _mm256_permute_pd(w, 0b1111); // [w0.im w0.im w1.im w1.im]
            let a_swap = _mm256_permute_pd(a, 0b0101); // [a0.im a0.re a1.im a1.re]
            let t1 = _mm256_mul_pd(a, wr); // [ar·wr  ai·wr ...]
            let t2 = _mm256_mul_pd(a_swap, wi); // [ai·wi  ar·wi ...]
            let r = _mm256_addsub_pd(t1, t2); // [ar·wr−ai·wi  ai·wr+ar·wi ...]
            _mm256_storeu_pd(sp.add(2 * i), r);
        }
        i += 2;
    }
    while i < n {
        spectrum[i] = (spectrum[i] + delta) * twiddles[i];
        i += 1;
    }
}

/// The KDE product-kernel sum `Σ_j exp(−½·(((a−A_j)/B_a)² + ((p−P_j)/B_p)²))` in the
/// **linear domain** — the inner loop of [`crate::kde::ProductKde2d::log_eval_batch`]
/// — dispatching to an AVX2-compiled copy of the kernel when the CPU supports it.
///
/// Unlike [`slide_update`], the AVX2 copy here is not hand-written intrinsics: it is
/// the *same* safe autovectorizable Rust as the fallback, recompiled under
/// `#[target_feature(enable = "avx2")]` so LLVM widens the identical arithmetic from
/// two to four `f64` lanes per instruction (the `exp` polynomial, rounding trick and
/// exponent-bit assembly of [`crate::lanes::exp_approx`] included). Because rustc never contracts
/// `mul` + `add` into FMA, both copies perform exactly the same roundings in the same
/// order and the dispatch is **bit-identical** across machines (property-tested in
/// `tests/simd_equivalence.rs`).
///
/// Bandwidths are passed as reciprocals (`inv_a = 1/B_a`, `inv_p = 1/B_p`) so the
/// division is hoisted out of the per-query call.
///
/// # Panics
///
/// Panics if the sample slices have different lengths.
#[inline]
pub fn kde_kernel_sum(a: f64, p: f64, inv_a: f64, inv_p: f64, amps: &[f64], phases: &[f64]) -> f64 {
    assert_eq!(amps.len(), phases.len(), "sample axis slices must match");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        #[allow(unsafe_code)]
        return unsafe { kde_kernel_sum_avx2(a, p, inv_a, inv_p, amps, phases) };
    }
    kde_kernel_sum_inner(a, p, inv_a, inv_p, amps, phases)
}

/// The shared kernel body: `LANES`-wide exponent chunks through fixed arrays (array
/// views, not indexing, so the loops carry no bounds checks) feeding [`crate::lanes::exp_approx`],
/// with a scalar remainder running the identical arithmetic. `#[inline(always)]` so
/// each dispatch wrapper gets its own copy compiled under that wrapper's target
/// features.
#[inline(always)]
fn kde_kernel_sum_inner(
    a: f64,
    p: f64,
    inv_a: f64,
    inv_p: f64,
    amps: &[f64],
    phases: &[f64],
) -> f64 {
    use crate::lanes::{exp_approx, LANES};
    let main = amps.len() - amps.len() % LANES;
    let mut s = [0.0f64; LANES];
    for (sa, sp) in amps[..main]
        .chunks_exact(LANES)
        .zip(phases[..main].chunks_exact(LANES))
    {
        let sa: &[f64; LANES] = sa.try_into().unwrap();
        let sp: &[f64; LANES] = sp.try_into().unwrap();
        let mut e = [0.0f64; LANES];
        for l in 0..LANES {
            let ua = (a - sa[l]) * inv_a;
            let up = (p - sp[l]) * inv_p;
            e[l] = -0.5 * (ua * ua + up * up);
        }
        for l in 0..LANES {
            s[l] += exp_approx(e[l]);
        }
    }
    let mut sum: f64 = s.iter().sum();
    for (sa, sp) in amps[main..].iter().zip(&phases[main..]) {
        let ua = (a - sa) * inv_a;
        let up = (p - sp) * inv_p;
        sum += exp_approx(-0.5 * (ua * ua + up * up));
    }
    sum
}

/// [`kde_kernel_sum_inner`] recompiled with AVX2 enabled — no manual intrinsics, just
/// the autovectorizer given twice the register width.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`) before calling; [`kde_kernel_sum`] is
/// the only caller and does exactly that. The body itself is the safe
/// fallback, so there is no other obligation.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn kde_kernel_sum_avx2(
    a: f64,
    p: f64,
    inv_a: f64,
    inv_p: f64,
    amps: &[f64],
    phases: &[f64],
) -> f64 {
    kde_kernel_sum_inner(a, p, inv_a, inv_p, amps, phases)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(spectrum: &mut [Complex], delta: Complex, tw: &[Complex]) {
        for (s, w) in spectrum.iter_mut().zip(tw) {
            *s = (*s + delta) * *w;
        }
    }

    #[test]
    fn all_paths_are_bit_identical_to_the_scalar_reference() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 64, 65] {
            let tw: Vec<Complex> = (0..n)
                .map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / (n.max(1)) as f64))
                .collect();
            let base: Vec<Complex> = (0..n)
                .map(|k| Complex::new(0.3 * k as f64 - 1.0, -0.7 * k as f64 + 0.2))
                .collect();
            let delta = Complex::new(0.123, -0.456);

            let mut want = base.clone();
            reference(&mut want, delta, &tw);

            let mut lanes = base.clone();
            slide_update_lanes(&mut lanes, delta, &tw);
            let mut dispatch = base.clone();
            slide_update(&mut dispatch, delta, &tw);

            for k in 0..n {
                assert_eq!(lanes[k].re.to_bits(), want[k].re.to_bits(), "lanes re {k}");
                assert_eq!(lanes[k].im.to_bits(), want[k].im.to_bits(), "lanes im {k}");
                assert_eq!(
                    dispatch[k].re.to_bits(),
                    want[k].re.to_bits(),
                    "dispatch re {k}"
                );
                assert_eq!(
                    dispatch[k].im.to_bits(),
                    want[k].im.to_bits(),
                    "dispatch im {k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        let mut s = vec![Complex::zero(); 3];
        slide_update(&mut s, Complex::zero(), &[Complex::one(); 4]);
    }

    #[test]
    fn kde_kernel_sum_dispatch_is_bit_identical_to_baseline() {
        for n in [0usize, 1, 3, 4, 5, 8, 47, 64, 65] {
            let amps: Vec<f64> = (0..n).map(|j| 0.08 * (j % 11) as f64).collect();
            let phs: Vec<f64> = (0..n).map(|j| -1.2 + 0.17 * (j % 17) as f64).collect();
            for (a, p) in [(0.0, 0.0), (0.31, -0.9), (5.0, 2.5), (40.0, -3.0)] {
                let want = kde_kernel_sum_inner(a, p, 8.0, 3.5, &amps, &phs);
                let got = kde_kernel_sum(a, p, 8.0, 3.5, &amps, &phs);
                assert_eq!(got.to_bits(), want.to_bits(), "n={n} query=({a},{p})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn kde_kernel_sum_rejects_mismatched_axes() {
        kde_kernel_sum(0.0, 0.0, 1.0, 1.0, &[1.0, 2.0], &[0.5]);
    }
}
