//! Sliding discrete Fourier transform.
//!
//! When consecutive analysis windows differ by exactly one sample — the CPRecycle
//! segment-extraction setting (paper §3.1), and more generally any hopping-window
//! spectral monitor with hop size 1 — recomputing a full FFT per window wastes a factor
//! of `log₂ N`: the DFT of the shifted window is a rank-1 update of the previous one,
//!
//! ```text
//! X_{t+1}[k] = (X_t[k] − x[t] + x[t+N]) · e^{+i2πk/N}
//! ```
//!
//! so all `N` bins advance in `O(N)` operations per one-sample slide instead of
//! `O(N log N)` per window. [`SlidingDft`] packages the recurrence as a reusable plan:
//! an embedded [`FftPlan`] seeds the first window, and precomputed per-bin twiddle
//! tables drive the slides. The recurrence is numerically benign over the window counts
//! OFDM receivers care about (tens of slides): every factor has unit magnitude, so
//! errors grow additively, not geometrically — the tests below bound the drift.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft::FftPlan;
use crate::Result;

/// A reusable sliding-DFT plan for one power-of-two window length.
///
/// The plan owns the per-bin slide twiddles `e^{±i2πk/N}` and an [`FftPlan`] for
/// seeding the first window, so any number of sliding traversals can run without
/// further trigonometric work.
///
/// ```
/// use rfdsp::sliding::SlidingDft;
/// use rfdsp::Complex;
///
/// let n = 8;
/// let plan = SlidingDft::new(n);
/// let x: Vec<Complex> = (0..n + 3).map(|t| Complex::new(t as f64, -(t as f64))).collect();
///
/// // Seed with the first window, then slide three times.
/// let mut spectrum = plan.plan().fft(&x[..n]);
/// for t in 0..3 {
///     plan.slide(&mut spectrum, x[t], x[t + n]).unwrap();
/// }
/// // The slid spectrum equals a fresh FFT of the final window.
/// let fresh = plan.plan().fft(&x[3..3 + n]);
/// for (a, b) in spectrum.iter().zip(&fresh) {
///     assert!((*a - *b).norm() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingDft {
    plan: FftPlan,
    /// `e^{+i2πk/N}` per bin: the factor applied when the window advances one sample.
    advance: Vec<Complex>,
    /// `e^{−i2πk/N}` per bin: the conjugate table, used by callers that maintain a
    /// per-bin phase ramp shrinking as the window advances (CPRecycle Eq. 2).
    retreat: Vec<Complex>,
}

impl SlidingDft {
    /// Creates a plan for windows of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two (the seed FFT's constraint).
    pub fn new(n: usize) -> Self {
        let plan = FftPlan::new(n);
        let mut advance = Vec::with_capacity(n);
        let mut retreat = Vec::with_capacity(n);
        for k in 0..n {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            advance.push(Complex::cis(theta));
            retreat.push(Complex::cis(-theta));
        }
        SlidingDft {
            plan,
            advance,
            retreat,
        }
    }

    /// Window length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Returns `true` if the plan length is zero (never the case for a constructed
    /// plan, provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The embedded FFT plan, for seeding the first window.
    #[inline]
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// The per-bin advance twiddles `e^{+i2πk/N}` applied by [`slide`](Self::slide).
    #[inline]
    pub fn advance_twiddles(&self) -> &[Complex] {
        &self.advance
    }

    /// The per-bin conjugate twiddles `e^{−i2πk/N}` — the step a caller-maintained
    /// phase ramp takes when the window advances one sample (each bin's residual cyclic
    /// shift shrinks by one sample).
    #[inline]
    pub fn retreat_twiddles(&self) -> &[Complex] {
        &self.retreat
    }

    /// Advances `spectrum` from the DFT of window `x[t..t+N]` to the DFT of window
    /// `x[t+1..t+N+1]` in `O(N)`: `outgoing` is `x[t]` (the sample leaving the window)
    /// and `incoming` is `x[t+N]` (the sample entering it).
    pub fn slide(
        &self,
        spectrum: &mut [Complex],
        outgoing: Complex,
        incoming: Complex,
    ) -> Result<()> {
        if spectrum.len() != self.len() {
            return Err(DspError::LengthMismatch {
                expected: self.len(),
                actual: spectrum.len(),
            });
        }
        let delta = incoming - outgoing;
        for (s, w) in spectrum.iter_mut().zip(&self.advance) {
            *s = (*s + delta) * *w;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    fn random_signal(len: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gauss = GaussianSource::new();
        (0..len)
            .map(|_| gauss.complex_sample(&mut rng, 1.0))
            .collect()
    }

    #[test]
    fn one_slide_matches_fresh_fft() {
        for n in [2usize, 8, 64, 128] {
            let plan = SlidingDft::new(n);
            let x = random_signal(n + 1, n as u64);
            let mut spectrum = plan.plan().fft(&x[..n]);
            plan.slide(&mut spectrum, x[0], x[n]).unwrap();
            let fresh = plan.plan().fft(&x[1..n + 1]);
            for (k, (a, b)) in spectrum.iter().zip(&fresh).enumerate() {
                assert!((*a - *b).norm() < 1e-9, "n {n}, bin {k}");
            }
        }
    }

    #[test]
    fn many_slides_stay_close_to_direct_ffts() {
        // CPRecycle slides up to C times per symbol (16 for 802.11a/g, 512 for LTE's
        // extended CP); check error stays far below the 1e-9 agreement budget over a
        // much longer traversal.
        let n = 64;
        let slides = 1024;
        let plan = SlidingDft::new(n);
        let x = random_signal(n + slides, 7);
        let mut spectrum = plan.plan().fft(&x[..n]);
        for t in 0..slides {
            plan.slide(&mut spectrum, x[t], x[t + n]).unwrap();
        }
        let fresh = plan.plan().fft(&x[slides..slides + n]);
        for (k, (a, b)) in spectrum.iter().zip(&fresh).enumerate() {
            assert!((*a - *b).norm() < 1e-10, "bin {k} drifted: {a} vs {b}");
        }
    }

    #[test]
    fn twiddle_tables_are_consistent() {
        let n = 16;
        let plan = SlidingDft::new(n);
        assert_eq!(plan.len(), n);
        assert!(!plan.is_empty());
        assert_eq!(plan.advance_twiddles().len(), n);
        assert_eq!(plan.retreat_twiddles().len(), n);
        for k in 0..n {
            let product = plan.advance_twiddles()[k] * plan.retreat_twiddles()[k];
            assert!((product - Complex::one()).norm() < 1e-12, "bin {k}");
            assert!((plan.advance_twiddles()[k].norm() - 1.0).abs() < 1e-12);
        }
        assert_eq!(plan.advance_twiddles()[0], Complex::one());
    }

    #[test]
    fn wrong_spectrum_length_is_error() {
        let plan = SlidingDft::new(8);
        let mut short = vec![Complex::zero(); 4];
        assert_eq!(
            plan.slide(&mut short, Complex::zero(), Complex::zero()),
            Err(DspError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = SlidingDft::new(12);
    }
}
