//! Sliding discrete Fourier transform.
//!
//! When consecutive analysis windows differ by exactly one sample — the CPRecycle
//! segment-extraction setting (paper §3.1), and more generally any hopping-window
//! spectral monitor with hop size 1 — recomputing a full FFT per window wastes a factor
//! of `log₂ N`: the DFT of the shifted window is a rank-1 update of the previous one,
//!
//! ```text
//! X_{t+1}[k] = (X_t[k] − x[t] + x[t+N]) · e^{+i2πk/N}
//! ```
//!
//! so all `N` bins advance in `O(N)` operations per one-sample slide instead of
//! `O(N log N)` per window. [`SlidingDft`] packages the recurrence as a reusable plan:
//! an embedded [`FftPlan`] seeds the first window, and precomputed per-bin twiddle
//! tables drive the slides. The recurrence is numerically benign over the window counts
//! OFDM receivers care about (tens of slides): every factor has unit magnitude, so
//! errors grow additively, not geometrically — the tests below bound the drift.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft::FftPlan;
use crate::Result;

/// A reusable sliding-DFT plan for one power-of-two window length.
///
/// The plan owns the per-bin slide twiddles `e^{±i2πk/N}` and an [`FftPlan`] for
/// seeding the first window, so any number of sliding traversals can run without
/// further trigonometric work.
///
/// ```
/// use rfdsp::sliding::SlidingDft;
/// use rfdsp::Complex;
///
/// let n = 8;
/// let plan = SlidingDft::new(n);
/// let x: Vec<Complex> = (0..n + 3).map(|t| Complex::new(t as f64, -(t as f64))).collect();
///
/// // Seed with the first window, then slide three times.
/// let mut spectrum = plan.plan().fft(&x[..n]);
/// for t in 0..3 {
///     plan.slide(&mut spectrum, x[t], x[t + n]).unwrap();
/// }
/// // The slid spectrum equals a fresh FFT of the final window.
/// let fresh = plan.plan().fft(&x[3..3 + n]);
/// for (a, b) in spectrum.iter().zip(&fresh) {
///     assert!((*a - *b).norm() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingDft {
    plan: FftPlan,
    /// `e^{+i2πk/N}` per bin: the factor applied when the window advances one sample.
    advance: Vec<Complex>,
    /// `e^{−i2πk/N}` per bin: the conjugate table, used by callers that maintain a
    /// per-bin phase ramp shrinking as the window advances (CPRecycle Eq. 2).
    retreat: Vec<Complex>,
    /// Split-plane `f32` copies of `advance` for the reduced-precision slide kernel.
    advance_re32: Vec<f32>,
    advance_im32: Vec<f32>,
    /// Split-plane `f32` copies of `retreat` for reduced-precision ramp maintenance.
    retreat_re32: Vec<f32>,
    retreat_im32: Vec<f32>,
}

impl SlidingDft {
    /// Creates a plan for windows of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two (the seed FFT's constraint).
    pub fn new(n: usize) -> Self {
        let plan = FftPlan::new(n);
        let mut advance = Vec::with_capacity(n);
        let mut retreat = Vec::with_capacity(n);
        for k in 0..n {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            advance.push(Complex::cis(theta));
            retreat.push(Complex::cis(-theta));
        }
        let advance_re32 = advance.iter().map(|w| w.re as f32).collect();
        let advance_im32 = advance.iter().map(|w| w.im as f32).collect();
        let retreat_re32 = retreat.iter().map(|w| w.re as f32).collect();
        let retreat_im32 = retreat.iter().map(|w| w.im as f32).collect();
        SlidingDft {
            plan,
            advance,
            retreat,
            advance_re32,
            advance_im32,
            retreat_re32,
            retreat_im32,
        }
    }

    /// Window length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Returns `true` if the plan length is zero (never the case for a constructed
    /// plan, provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The embedded FFT plan, for seeding the first window.
    #[inline]
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// The per-bin advance twiddles `e^{+i2πk/N}` applied by [`slide`](Self::slide).
    #[inline]
    pub fn advance_twiddles(&self) -> &[Complex] {
        &self.advance
    }

    /// The per-bin conjugate twiddles `e^{−i2πk/N}` — the step a caller-maintained
    /// phase ramp takes when the window advances one sample (each bin's residual cyclic
    /// shift shrinks by one sample).
    #[inline]
    pub fn retreat_twiddles(&self) -> &[Complex] {
        &self.retreat
    }

    /// Split-plane `f32` view of the retreat twiddles, for callers maintaining a
    /// reduced-precision phase ramp (`(re, im)` planes).
    #[inline]
    pub fn retreat_twiddles_f32(&self) -> (&[f32], &[f32]) {
        (&self.retreat_re32, &self.retreat_im32)
    }

    /// Advances `spectrum` from the DFT of window `x[t..t+N]` to the DFT of window
    /// `x[t+1..t+N+1]` in `O(N)`: `outgoing` is `x[t]` (the sample leaving the window)
    /// and `incoming` is `x[t+N]` (the sample entering it).
    ///
    /// The per-bin update runs lane-parallel (autovectorized chunks, or the
    /// runtime-detected AVX2 kernel on capable x86-64) and is bit-for-bit identical
    /// to the scalar recurrence — see [`crate::simd::slide_update`].
    pub fn slide(
        &self,
        spectrum: &mut [Complex],
        outgoing: Complex,
        incoming: Complex,
    ) -> Result<()> {
        if spectrum.len() != self.len() {
            return Err(DspError::LengthMismatch {
                expected: self.len(),
                actual: spectrum.len(),
            });
        }
        let delta = incoming - outgoing;
        crate::simd::slide_update(spectrum, delta, &self.advance);
        Ok(())
    }

    /// The reduced-precision slide kernel: the same rank-1 update as
    /// [`slide`](Self::slide), over **split `f32` re/im planes** — the
    /// `KernelPrecision::F32` variant of the sliding DFT. The f64 path remains the
    /// reference; tolerance against it is pinned by `tests/simd_equivalence.rs`.
    ///
    /// `outgoing`/`incoming` are `(re, im)` pairs of the samples leaving/entering the
    /// window.
    pub fn slide_f32(
        &self,
        spectrum_re: &mut [f32],
        spectrum_im: &mut [f32],
        outgoing: (f32, f32),
        incoming: (f32, f32),
    ) -> Result<()> {
        if spectrum_re.len() != self.len() || spectrum_im.len() != self.len() {
            return Err(DspError::LengthMismatch {
                expected: self.len(),
                actual: spectrum_re.len().min(spectrum_im.len()),
            });
        }
        let dre = incoming.0 - outgoing.0;
        let dim = incoming.1 - outgoing.1;
        use crate::lanes::LANES;
        let n = self.len();
        let main = n - n % LANES;
        for c in (0..main).step_by(LANES) {
            let mut ar = [0.0f32; LANES];
            let mut ai = [0.0f32; LANES];
            for l in 0..LANES {
                ar[l] = spectrum_re[c + l] + dre;
                ai[l] = spectrum_im[c + l] + dim;
            }
            for l in 0..LANES {
                let wr = self.advance_re32[c + l];
                let wi = self.advance_im32[c + l];
                spectrum_re[c + l] = ar[l] * wr - ai[l] * wi;
                spectrum_im[c + l] = ar[l] * wi + ai[l] * wr;
            }
        }
        for k in main..n {
            let ar = spectrum_re[k] + dre;
            let ai = spectrum_im[k] + dim;
            let wr = self.advance_re32[k];
            let wi = self.advance_im32[k];
            spectrum_re[k] = ar * wr - ai * wi;
            spectrum_im[k] = ar * wi + ai * wr;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::GaussianSource;
    use rand::SeedableRng;

    fn random_signal(len: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gauss = GaussianSource::new();
        (0..len)
            .map(|_| gauss.complex_sample(&mut rng, 1.0))
            .collect()
    }

    #[test]
    fn one_slide_matches_fresh_fft() {
        for n in [2usize, 8, 64, 128] {
            let plan = SlidingDft::new(n);
            let x = random_signal(n + 1, n as u64);
            let mut spectrum = plan.plan().fft(&x[..n]);
            plan.slide(&mut spectrum, x[0], x[n]).unwrap();
            let fresh = plan.plan().fft(&x[1..n + 1]);
            for (k, (a, b)) in spectrum.iter().zip(&fresh).enumerate() {
                assert!((*a - *b).norm() < 1e-9, "n {n}, bin {k}");
            }
        }
    }

    #[test]
    fn many_slides_stay_close_to_direct_ffts() {
        // CPRecycle slides up to C times per symbol (16 for 802.11a/g, 512 for LTE's
        // extended CP); check error stays far below the 1e-9 agreement budget over a
        // much longer traversal.
        let n = 64;
        let slides = 1024;
        let plan = SlidingDft::new(n);
        let x = random_signal(n + slides, 7);
        let mut spectrum = plan.plan().fft(&x[..n]);
        for t in 0..slides {
            plan.slide(&mut spectrum, x[t], x[t + n]).unwrap();
        }
        let fresh = plan.plan().fft(&x[slides..slides + n]);
        for (k, (a, b)) in spectrum.iter().zip(&fresh).enumerate() {
            assert!((*a - *b).norm() < 1e-10, "bin {k} drifted: {a} vs {b}");
        }
    }

    #[test]
    fn twiddle_tables_are_consistent() {
        let n = 16;
        let plan = SlidingDft::new(n);
        assert_eq!(plan.len(), n);
        assert!(!plan.is_empty());
        assert_eq!(plan.advance_twiddles().len(), n);
        assert_eq!(plan.retreat_twiddles().len(), n);
        for k in 0..n {
            let product = plan.advance_twiddles()[k] * plan.retreat_twiddles()[k];
            assert!((product - Complex::one()).norm() < 1e-12, "bin {k}");
            assert!((plan.advance_twiddles()[k].norm() - 1.0).abs() < 1e-12);
        }
        assert_eq!(plan.advance_twiddles()[0], Complex::one());
    }

    #[test]
    fn f32_slide_tracks_the_f64_reference() {
        let n = 64;
        let slides = 16; // one 802.11a/g CP worth of slides
        let plan = SlidingDft::new(n);
        let x = random_signal(n + slides, 42);
        let mut spectrum = plan.plan().fft(&x[..n]);
        let mut re32: Vec<f32> = spectrum.iter().map(|s| s.re as f32).collect();
        let mut im32: Vec<f32> = spectrum.iter().map(|s| s.im as f32).collect();
        for t in 0..slides {
            plan.slide(&mut spectrum, x[t], x[t + n]).unwrap();
            plan.slide_f32(
                &mut re32,
                &mut im32,
                (x[t].re as f32, x[t].im as f32),
                (x[t + n].re as f32, x[t + n].im as f32),
            )
            .unwrap();
        }
        // f32 has ~1e-7 relative precision; over 16 additive slides the drift stays
        // well inside 1e-4 on unit-power signals.
        for k in 0..n {
            let err = ((re32[k] as f64 - spectrum[k].re).powi(2)
                + (im32[k] as f64 - spectrum[k].im).powi(2))
            .sqrt();
            assert!(err < 1e-4, "bin {k}: err {err}");
        }
    }

    #[test]
    fn f32_slide_rejects_wrong_lengths() {
        let plan = SlidingDft::new(8);
        let mut re = vec![0.0f32; 4];
        let mut im = vec![0.0f32; 8];
        assert!(plan
            .slide_f32(&mut re, &mut im, (0.0, 0.0), (0.0, 0.0))
            .is_err());
        let (rre, rim) = plan.retreat_twiddles_f32();
        assert_eq!(rre.len(), 8);
        assert_eq!(rim.len(), 8);
    }

    #[test]
    fn wrong_spectrum_length_is_error() {
        let plan = SlidingDft::new(8);
        let mut short = vec![Complex::zero(); 4];
        assert_eq!(
            plan.slide(&mut short, Complex::zero(), Complex::zero()),
            Err(DspError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = SlidingDft::new(12);
    }
}
