//! Descriptive statistics, empirical distributions and correlation.
//!
//! These helpers back three quite different consumers:
//!
//! * the **experiment harness** (packet-success-rate aggregation, CDF plots such as the
//!   paper's Fig. 6b and Fig. 13),
//! * the **ISI-free-region detector** (normalised correlation between the cyclic prefix
//!   and the symbol tail, paper §6),
//! * the **kernel density machinery** (sample standard deviation / IQR feed the
//!   bandwidth selectors in [`crate::kde`]).

use crate::complex::Complex;
use crate::error::DspError;
use crate::Result;

/// Arithmetic mean of a slice. Errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (`1/N` normalisation). Errors on empty input.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (`1/(N−1)` normalisation). Errors unless at least two samples are given.
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(DspError::invalid(
            "xs",
            "sample variance needs at least 2 samples",
        ));
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Sample standard deviation (`1/(N−1)`), the quantity Silverman's bandwidth rule uses.
pub fn sample_std_dev(xs: &[f64]) -> Result<f64> {
    Ok(sample_variance(xs)?.sqrt())
}

/// Median of a slice (average of the two middle elements for even lengths).
pub fn median(xs: &[f64]) -> Result<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_of_sorted(&sorted, p)
}

/// [`percentile`] over **already-sorted** input — the allocation-free variant hot
/// paths use with a caller-owned sort scratch (see `kde::select_bandwidth_scratch`).
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(DspError::invalid("p", "percentile must be in [0, 100]"));
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Interquartile range (75th − 25th percentile), used by robust bandwidth selection.
pub fn iqr(xs: &[f64]) -> Result<f64> {
    Ok(percentile(xs, 75.0)? - percentile(xs, 25.0)?)
}

/// [`iqr`] over **already-sorted** input (allocation-free).
pub fn iqr_of_sorted(sorted: &[f64]) -> Result<f64> {
    Ok(percentile_of_sorted(sorted, 75.0)? - percentile_of_sorted(sorted, 25.0)?)
}

/// Minimum of a slice. Errors on empty input.
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.min(x)))
        })
        .ok_or(DspError::EmptyInput)
}

/// Maximum of a slice. Errors on empty input.
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
        .ok_or(DspError::EmptyInput)
}

/// Pearson correlation coefficient between two equally-long slices.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(DspError::LengthMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    let denom = (dx * dy).sqrt();
    if denom == 0.0 {
        Ok(0.0)
    } else {
        Ok(num / denom)
    }
}

/// Normalised complex cross-correlation magnitude between two windows,
/// `|Σ a·conj(b)| / sqrt(Σ|a|²·Σ|b|²)`, in `[0, 1]`.
///
/// This is the statistic the ISI-free-region detectors in the paper's §6 references
/// compute between the cyclic prefix and the corresponding symbol tail.
pub fn normalized_cross_correlation(a: &[Complex], b: &[Complex]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(DspError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut num = Complex::zero();
    let mut pa = 0.0;
    let mut pb = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += *x * y.conj();
        pa += x.norm_sqr();
        pb += y.norm_sqr();
    }
    let denom = (pa * pb).sqrt();
    if denom == 0.0 {
        Ok(0.0)
    } else {
        Ok(num.norm() / denom)
    }
}

/// An empirical cumulative distribution function built from a sample set.
///
/// Evaluation uses the standard step definition `F(x) = #{samples ≤ x} / N`. The struct
/// also exposes the sorted support so plots (paper Figs. 6b, 13) can be regenerated.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from the given samples. Errors on empty input.
    pub fn new(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Ok(EmpiricalCdf { sorted })
    }

    /// Fraction of samples less than or equal to `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x given the sorted order.
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function) for `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF was built from an empty sample set (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample support, useful for stair-step plotting.
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// Returns `(x, F(x))` pairs over the sample support — the series plotted in the
    /// paper's CDF figures.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, x)| (*x, (i + 1) as f64 / self.sorted.len() as f64))
            .collect()
    }
}

/// A fixed-width histogram over a closed interval.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equally-wide bins spanning `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(DspError::invalid("bins", "must be at least 1"));
        }
        // `partial_cmp` keeps the NaN-rejecting behaviour of `!(hi > lo)` explicit.
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(DspError::invalid("hi", "upper edge must exceed lower edge"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds one observation; values outside `[lo, hi]` are clamped into the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds every observation from a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin centres.
    pub fn centers(&self) -> Vec<f64> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        (0..bins).map(|i| self.lo + (i as f64 + 0.5) * w).collect()
    }

    /// Normalised density estimate per bin (integrates to 1 over `[lo, hi]`).
    pub fn density(&self) -> Vec<f64> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        if self.total == 0 {
            return vec![0.0; bins];
        }
        self.counts
            .iter()
            .map(|c| *c as f64 / (self.total as f64 * w))
            .collect()
    }
}

/// Mean of the squared magnitudes of a complex slice (average power).
pub fn mean_power(xs: &[Complex]) -> Result<f64> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(xs.iter().map(|x| x.norm_sqr()).sum::<f64>() / xs.len() as f64)
}

/// Centroid (arithmetic mean) of a set of complex points — the sphere-decoder centre in
/// the paper's §4.2.
pub fn centroid(xs: &[Complex]) -> Result<Complex> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(xs.iter().copied().sum::<Complex>() / xs.len() as f64)
}

/// A bivariate Gaussian fit `N(μ, Σ)` with a full 2×2 covariance — the cheap
/// parametric alternative to the product KDE in the interference-estimator sweep
/// (the `Gaussian` model backend): two means, two variances and one correlation
/// instead of `P·N_p` kernel samples per subcarrier.
///
/// The fit is regularised for the degenerate inputs a nearly interference-free
/// preamble produces: per-axis standard deviations are floored (`min_std_x/y`, the
/// same role as the KDE bandwidth floors) and the correlation is clamped to ±0.99 so
/// the covariance stays invertible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BivariateGaussian {
    mean_x: f64,
    mean_y: f64,
    /// Inverse-covariance entries (symmetric): `[xx, xy, yy]`.
    inv: [f64; 3],
    /// `−ln(2π√|Σ|)`, the log-pdf normalisation constant.
    log_norm: f64,
}

impl BivariateGaussian {
    /// Fits the Gaussian to paired samples, flooring the per-axis standard
    /// deviations at `min_std_x` / `min_std_y` (both must be positive).
    pub fn fit(xs: &[f64], ys: &[f64], min_std_x: f64, min_std_y: f64) -> Result<Self> {
        if xs.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if xs.len() != ys.len() {
            return Err(DspError::invalid("ys", "axis sample counts must match"));
        }
        if min_std_x <= 0.0 || min_std_y <= 0.0 {
            return Err(DspError::invalid("min_std", "floors must be positive"));
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut var_x = 0.0;
        let mut var_y = 0.0;
        let mut cov = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            var_x += dx * dx;
            var_y += dy * dy;
            cov += dx * dy;
        }
        var_x = (var_x / n).max(min_std_x * min_std_x);
        var_y = (var_y / n).max(min_std_y * min_std_y);
        cov /= n;
        // Clamp the correlation so |Σ| stays safely positive.
        let max_cov = 0.99 * (var_x * var_y).sqrt();
        cov = cov.clamp(-max_cov, max_cov);
        let det = var_x * var_y - cov * cov;
        let inv_det = 1.0 / det;
        Ok(BivariateGaussian {
            mean_x,
            mean_y,
            inv: [var_y * inv_det, -cov * inv_det, var_x * inv_det],
            log_norm: -(2.0 * std::f64::consts::PI).ln() - 0.5 * det.ln(),
        })
    }

    /// The fitted mean vector `(μ_x, μ_y)`.
    pub fn mean(&self) -> (f64, f64) {
        (self.mean_x, self.mean_y)
    }

    /// Log of the true (normalised) probability density at `(x, y)`.
    pub fn log_pdf(&self, x: f64, y: f64) -> f64 {
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        let quad = self.inv[0] * dx * dx + 2.0 * self.inv[1] * dx * dy + self.inv[2] * dy * dy;
        self.log_norm - 0.5 * quad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs).unwrap(), 2.5);
        assert_eq!(variance(&xs).unwrap(), 1.25);
        assert!((sample_variance(&xs).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(DspError::EmptyInput));
        assert_eq!(median(&[]), Err(DspError::EmptyInput));
        assert_eq!(min(&[]), Err(DspError::EmptyInput));
        assert_eq!(max(&[]), Err(DspError::EmptyInput));
        assert!(mean_power(&[]).is_err());
        assert!(centroid(&[]).is_err());
        assert!(EmpiricalCdf::new(&[]).is_err());
    }

    #[test]
    fn median_and_percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs).unwrap(), 3.0);
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 5.0);
        let even = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&even).unwrap(), 2.5);
        assert!(percentile(&xs, 101.0).is_err());
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((iqr(&xs).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_variants_match_the_allocating_ones() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 17.0, 50.0, 75.0, 100.0] {
            assert_eq!(
                percentile(&xs, p).unwrap(),
                percentile_of_sorted(&sorted, p).unwrap()
            );
        }
        assert_eq!(iqr(&xs).unwrap(), iqr_of_sorted(&sorted).unwrap());
        assert!(percentile_of_sorted(&[], 50.0).is_err());
        assert!(percentile_of_sorted(&sorted, -1.0).is_err());
    }

    #[test]
    fn bivariate_gaussian_fit_recovers_moments() {
        // A tilted cloud: y correlated with x.
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 / 200.0) * 4.0 - 2.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.5 * x + (x * 37.0).sin() * 0.3)
            .collect();
        let g = BivariateGaussian::fit(&xs, &ys, 1e-3, 1e-3).unwrap();
        let (mx, my) = g.mean();
        assert!(mx.abs() < 0.05, "mean_x {mx}");
        assert!(my.abs() < 0.05, "mean_y {my}");
        // Density peaks at the mean and follows the correlation ridge: a point on the
        // ridge (y = x/2) is more likely than one the same distance off it.
        assert!(g.log_pdf(mx, my) > g.log_pdf(1.0, 0.5));
        assert!(g.log_pdf(1.0, 0.5) > g.log_pdf(1.0, -0.5));
    }

    #[test]
    fn bivariate_gaussian_handles_degenerate_samples() {
        // All samples identical: variances collapse to the floors, the density stays
        // finite and decreasing with distance.
        let xs = [0.2; 8];
        let ys = [-0.1; 8];
        let g = BivariateGaussian::fit(&xs, &ys, 0.05, 0.2).unwrap();
        let near = g.log_pdf(0.2, -0.1);
        let far = g.log_pdf(2.0, 1.0);
        assert!(near.is_finite() && far.is_finite());
        assert!(near > far);
        // Perfectly correlated samples: the clamp keeps Σ invertible.
        let xs2: Vec<f64> = (0..16).map(|i| i as f64 * 0.1).collect();
        let ys2: Vec<f64> = xs2.iter().map(|x| 2.0 * x).collect();
        let g2 = BivariateGaussian::fit(&xs2, &ys2, 1e-6, 1e-6).unwrap();
        assert!(g2.log_pdf(0.5, 1.0).is_finite());
        // Validation.
        assert!(BivariateGaussian::fit(&[], &[], 0.1, 0.1).is_err());
        assert!(BivariateGaussian::fit(&[1.0], &[], 0.1, 0.1).is_err());
        assert!(BivariateGaussian::fit(&[1.0], &[1.0], 0.0, 0.1).is_err());
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.5, 0.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 7.5);
    }

    #[test]
    fn correlation_of_linear_relation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson_correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        let constant = vec![2.0; 50];
        assert_eq!(pearson_correlation(&xs, &constant).unwrap(), 0.0);
    }

    #[test]
    fn correlation_length_mismatch() {
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn cross_correlation_of_identical_windows_is_one() {
        let a: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        assert!((normalized_cross_correlation(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_correlation_of_orthogonal_windows_is_zero() {
        let a = vec![Complex::new(1.0, 0.0), Complex::new(1.0, 0.0)];
        let b = vec![Complex::new(1.0, 0.0), Complex::new(-1.0, 0.0)];
        assert!(normalized_cross_correlation(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn cross_correlation_error_cases() {
        let a = vec![Complex::new(1.0, 0.0)];
        assert!(normalized_cross_correlation(&a, &[]).is_err());
        assert!(normalized_cross_correlation(&[], &[]).is_err());
        let z = vec![Complex::zero(); 4];
        assert_eq!(normalized_cross_correlation(&z, &z).unwrap(), 0.0);
    }

    #[test]
    fn empirical_cdf_step_values() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn empirical_cdf_quantiles() {
        let cdf = EmpiricalCdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.5), 30.0);
        assert_eq!(cdf.quantile(1.0), 50.0);
        let curve = cdf.curve();
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[4], (50.0, 1.0));
    }

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add_all(&[0.5, 1.5, 1.6, 9.9, 10.5, -3.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -3.0
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 9.9 and clamped 10.5
        let d = h.density();
        let integral: f64 = d.iter().sum::<f64>() * 1.0;
        assert!((integral - 1.0).abs() < 1e-12);
        assert_eq!(h.centers()[0], 0.5);
    }

    #[test]
    fn histogram_invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn mean_power_and_centroid() {
        let xs = [
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::new(-1.0, 0.0),
            Complex::new(0.0, -1.0),
        ];
        assert_eq!(mean_power(&xs).unwrap(), 1.0);
        let c = centroid(&xs).unwrap();
        assert!(c.norm() < 1e-12);
    }
}
