//! Window functions.
//!
//! Windows are used in two places in the reproduction: Hann windows inside the Welch
//! PSD estimator, and Kaiser/Hamming windows for windowed-sinc FIR design in
//! [`crate::filter`] (transmit spectral-mask filters for the adjacent-channel-leakage
//! model). All functions return a `Vec<f64>` of the requested length; a length of zero
//! yields an empty vector and a length of one yields `[1.0]`, matching common DSP
//! library conventions.

use std::f64::consts::PI;

/// Rectangular (boxcar) window: all ones.
pub fn rectangular(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Hann window, `w[k] = 0.5 − 0.5·cos(2πk/(N−1))`.
pub fn hann(n: usize) -> Vec<f64> {
    generalized_cosine(n, &[0.5, 0.5])
}

/// Hamming window, `w[k] = 0.54 − 0.46·cos(2πk/(N−1))`.
pub fn hamming(n: usize) -> Vec<f64> {
    generalized_cosine(n, &[0.54, 0.46])
}

/// Blackman window (three-term cosine).
pub fn blackman(n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    (0..n)
        .map(|k| {
            let x = 2.0 * PI * k as f64 / (n - 1) as f64;
            0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos()
        })
        .collect()
}

/// Kaiser window with shape parameter `beta`.
///
/// Larger `beta` trades main-lobe width for side-lobe suppression; `beta ≈ 8.6` gives
/// roughly 90 dB of stop-band attenuation when used for FIR design.
pub fn kaiser(n: usize, beta: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let denom = bessel_i0(beta);
    let m = (n - 1) as f64;
    (0..n)
        .map(|k| {
            let r = 2.0 * k as f64 / m - 1.0;
            bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / denom
        })
        .collect()
}

/// Modified Bessel function of the first kind, order zero, via its power series.
///
/// Accurate to better than 1e-12 for the argument range used by Kaiser windows
/// (|x| ≲ 30).
pub fn bessel_i0(x: f64) -> f64 {
    let mut sum = 1.0;
    let mut term = 1.0;
    let half_x = x / 2.0;
    for k in 1..50 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < 1e-16 * sum {
            break;
        }
    }
    sum
}

fn generalized_cosine(n: usize, coeffs: &[f64; 2]) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    (0..n)
        .map(|k| coeffs[0] - coeffs[1] * (2.0 * PI * k as f64 / (n - 1) as f64).cos())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_lengths() {
        for f in [rectangular, hann, hamming, blackman] {
            assert!(f(0).is_empty());
            assert_eq!(f(1), vec![1.0]);
        }
        assert!(kaiser(0, 5.0).is_empty());
        assert_eq!(kaiser(1, 5.0), vec![1.0]);
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert_eq!(rectangular(5), vec![1.0; 5]);
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w = hann(65);
        assert!(w[0].abs() < 1e-12);
        assert!(w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = hamming(65);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackman_endpoints_near_zero() {
        let w = blackman(65);
        assert!(w[0].abs() < 1e-9);
        assert!((w[32] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [hann(64), hamming(64), blackman(64), kaiser(64, 8.6)] {
            for i in 0..w.len() / 2 {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "asymmetry at {i}"
                );
            }
        }
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let w = kaiser(16, 0.0);
        for v in w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kaiser_peak_at_center() {
        let w = kaiser(65, 8.6);
        assert!((w[32] - 1.0).abs() < 1e-12);
        assert!(w[0] < 0.01);
    }

    #[test]
    fn bessel_i0_reference_values() {
        // Reference values from Abramowitz & Stegun.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-14);
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        assert!((bessel_i0(2.0) - 2.2795853023360673).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn window_values_bounded() {
        for w in [hann(33), hamming(33), blackman(33), kaiser(33, 5.0)] {
            for v in w {
                // Blackman endpoints are analytically zero but may round to ~-1e-17.
                assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }
}
