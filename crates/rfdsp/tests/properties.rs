//! Property-based tests of the DSP substrate's core invariants.

use proptest::prelude::*;
use rfdsp::fft::{dft, FftPlan};
use rfdsp::power::{db_to_lin, lin_to_db};
use rfdsp::stats;
use rfdsp::Complex;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), len..=len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT followed by IFFT recovers the original signal for any input.
    #[test]
    fn fft_ifft_roundtrip(x in complex_vec(64)) {
        let plan = FftPlan::new(64);
        let back = plan.ifft(&plan.fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()));
        }
    }

    /// The fast transform agrees with the direct O(N²) DFT.
    #[test]
    fn fft_matches_dft(x in complex_vec(32)) {
        let plan = FftPlan::new(32);
        let fast = plan.fft(&x);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + b.norm()));
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn parseval_energy(x in complex_vec(128)) {
        let plan = FftPlan::new(128);
        let spec = plan.fft(&x);
        let et: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((et - ef).abs() <= 1e-6 * (1.0 + et));
    }

    /// dB ↔ linear conversions are inverse functions.
    #[test]
    fn db_roundtrip(db in -120.0f64..120.0) {
        prop_assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
    }

    /// Complex multiplication magnitude is multiplicative and division inverts it.
    #[test]
    fn complex_field_properties(re1 in -50.0f64..50.0, im1 in -50.0f64..50.0,
                                re2 in 0.1f64..50.0, im2 in 0.1f64..50.0) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-6 * (1.0 + a.norm() * b.norm()));
        let back = (a * b) / b;
        prop_assert!((back - a).norm() < 1e-6 * (1.0 + a.norm()));
    }

    /// The empirical CDF is monotone and bounded by [0, 1].
    #[test]
    fn cdf_is_monotone(mut xs in prop::collection::vec(-1000.0f64..1000.0, 1..200)) {
        let cdf = stats::EmpiricalCdf::new(&xs).unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in xs {
            let v = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }

    /// Percentiles are bounded by the sample extremes and ordered in p.
    #[test]
    fn percentiles_are_ordered(xs in prop::collection::vec(-1000.0f64..1000.0, 2..100),
                               p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = stats::percentile(&xs, lo).unwrap();
        let b = stats::percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= stats::min(&xs).unwrap() - 1e-12);
        prop_assert!(b <= stats::max(&xs).unwrap() + 1e-12);
    }
}
