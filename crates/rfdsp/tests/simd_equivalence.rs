//! Property-based equivalence pins for the lane-parallel kernels (PR 8).
//!
//! Every vectorized hot kernel in this crate is pinned against its scalar
//! reference across randomized lane counts, window sizes and unaligned tail
//! lengths:
//!
//! * **bit-for-bit** where the restructure preserves elementwise operation order —
//!   the sliding-DFT update (both the autovectorized chunk path and the
//!   runtime-dispatched AVX2 path, which deliberately avoids FMA), the grid-KDE
//!   batch lookup, and the polynomial `exp` batch;
//! * **≤ 1e-9** where the batch path substitutes the polynomial `exp` for libm in
//!   the exact-KDE log-sum (operation order differs, so exact equality is not the
//!   contract);
//! * **≤ 1e-3** for the reduced-precision (`f32`) kernel variants, whose budget the
//!   `KernelPrecision::F32` receiver configuration states.

use proptest::prelude::*;
use rfdsp::kde::{BandwidthSelector, GridKde2d, GridSpec, ProductKde2d};
use rfdsp::lanes::{exp_approx, exp_batch};
use rfdsp::simd::{slide_update, slide_update_lanes};
use rfdsp::sliding::SlidingDft;
use rfdsp::Complex;

fn complexes(
    len: impl Into<proptest::collection::SizeRange>,
) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-2.0f64..2.0, -2.0f64..2.0).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

/// The scalar slide recurrence both SIMD paths must reproduce exactly.
fn slide_reference(spectrum: &mut [Complex], delta: Complex, twiddles: &[Complex]) {
    for (s, w) in spectrum.iter_mut().zip(twiddles) {
        *s = (*s + delta) * *w;
    }
}

fn assert_bits_eq(a: &[Complex], b: &[Complex], what: &str) {
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: bin {k} (re)");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: bin {k} (im)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The runtime-dispatched slide update (AVX2 where available) is bit-for-bit
    /// identical to the scalar recurrence for every length, including the odd tails
    /// neither the 4-lane chunks nor the 2-wide AVX2 loop cover.
    #[test]
    fn dispatched_slide_update_is_bit_identical(
        spectrum in complexes(0..130usize),
        twiddle_seed in complexes(130..=130usize),
        dre in -2.0f64..2.0,
        dim in -2.0f64..2.0,
    ) {
        let delta = Complex::new(dre, dim);
        let twiddles = &twiddle_seed[..spectrum.len()];
        let mut fast = spectrum.clone();
        let mut slow = spectrum;
        slide_update(&mut fast, delta, twiddles);
        slide_reference(&mut slow, delta, twiddles);
        assert_bits_eq(&fast, &slow, "slide_update dispatch");
    }

    /// The portable chunked path on its own (exercised explicitly so non-AVX2
    /// behaviour is pinned even when the dispatcher would pick AVX2).
    #[test]
    fn lane_slide_update_is_bit_identical(
        spectrum in complexes(0..100usize),
        twiddle_seed in complexes(100..=100usize),
        dre in -2.0f64..2.0,
        dim in -2.0f64..2.0,
    ) {
        let delta = Complex::new(dre, dim);
        let twiddles = &twiddle_seed[..spectrum.len()];
        let mut fast = spectrum.clone();
        let mut slow = spectrum;
        slide_update_lanes(&mut fast, delta, twiddles);
        slide_reference(&mut slow, delta, twiddles);
        assert_bits_eq(&fast, &slow, "slide_update_lanes");
    }

    /// Chained slides through `SlidingDft` stay bit-identical to the scalar
    /// recurrence across window sizes and slide counts.
    #[test]
    fn chained_sliding_dft_is_bit_identical(
        size_idx in 0usize..4,
        samples in complexes(40..200usize),
    ) {
        let n = [4usize, 16, 64, 128][size_idx];
        prop_assume!(samples.len() > n);
        let dft = SlidingDft::new(n);
        let mut fast = vec![Complex::zero(); n];
        let mut slow = fast.clone();
        for t in 0..samples.len() - n {
            dft.slide(&mut fast, samples[t], samples[t + n]).unwrap();
            let delta = samples[t + n] - samples[t];
            slide_reference(&mut slow, delta, dft.advance_twiddles());
        }
        assert_bits_eq(&fast, &slow, "chained slides");
    }

    /// The reduced-precision `slide_f32` tracks the f64 slide within the stated
    /// budget over a full window's worth of chained updates.
    #[test]
    fn f32_slides_track_f64_within_budget(
        size_idx in 0usize..3,
        samples in complexes(40..150usize),
    ) {
        let n = [8usize, 32, 64][size_idx];
        prop_assume!(samples.len() > n);
        let dft = SlidingDft::new(n);
        let mut reference = vec![Complex::zero(); n];
        let mut re32 = vec![0.0f32; n];
        let mut im32 = vec![0.0f32; n];
        for t in 0..samples.len() - n {
            dft.slide(&mut reference, samples[t], samples[t + n]).unwrap();
            let out = (samples[t].re as f32, samples[t].im as f32);
            let inc = (samples[t + n].re as f32, samples[t + n].im as f32);
            dft.slide_f32(&mut re32, &mut im32, out, inc).unwrap();
        }
        for k in 0..n {
            let err = (reference[k] - Complex::new(re32[k] as f64, im32[k] as f64)).norm();
            let scale = 1.0 + reference[k].norm();
            prop_assert!(err < 1e-3 * scale, "bin {k}: err {err}, value {}", reference[k]);
        }
    }

    /// The exact-KDE batch scorer agrees with per-query scalar evaluation to 1e-9
    /// for any query count (chunked body + remainder).
    #[test]
    fn product_kde_batch_matches_scalar(
        samples in prop::collection::vec((0.05f64..3.0, -3.1f64..3.1), 8..48),
        queries in prop::collection::vec((0.0f64..3.5, -3.1f64..3.1), 1..23),
    ) {
        let kde = ProductKde2d::new(&samples, BandwidthSelector::LeaveOneOut).unwrap();
        let amps: Vec<f64> = queries.iter().map(|q| q.0).collect();
        let phases: Vec<f64> = queries.iter().map(|q| q.1).collect();
        let mut batch = vec![0.0; queries.len()];
        kde.log_eval_batch(&amps, &phases, &mut batch);
        for ((a, p), got) in queries.iter().zip(&batch) {
            let want = kde.log_eval(*a, *p);
            let tol = 1e-9 * (1.0 + want.abs());
            prop_assert!((got - want).abs() <= tol, "query ({a}, {p}): {got} vs {want}");
        }
    }

    /// The grid-KDE f64 batch lookup preserves the scalar lookup's arithmetic
    /// exactly — bit-for-bit, any query count.
    #[test]
    fn grid_kde_batch_is_bit_identical(
        samples in prop::collection::vec((0.05f64..3.0, -3.1f64..3.1), 8..48),
        queries in prop::collection::vec((0.0f64..4.0, -3.5f64..3.5), 1..23),
    ) {
        let kde = ProductKde2d::new(&samples, BandwidthSelector::LeaveOneOut).unwrap();
        let grid = GridKde2d::build(&kde, &GridSpec::default()).unwrap();
        let amps: Vec<f64> = queries.iter().map(|q| q.0).collect();
        let phases: Vec<f64> = queries.iter().map(|q| q.1).collect();
        let mut batch = vec![0.0; queries.len()];
        grid.log_eval_batch(&amps, &phases, &mut batch);
        for ((a, p), got) in queries.iter().zip(&batch) {
            let want = grid.log_eval(*a, *p);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "query ({}, {}): {} vs {}", a, p, got, want);
        }
    }

    /// The f32 grid lookup stays within the reduced-precision budget of the f64
    /// lookup everywhere, including the clamped margins outside the grid.
    #[test]
    fn grid_kde_f32_batch_is_within_budget(
        samples in prop::collection::vec((0.05f64..3.0, -3.1f64..3.1), 8..48),
        queries in prop::collection::vec((0.0f64..4.0, -3.5f64..3.5), 1..23),
    ) {
        let kde = ProductKde2d::new(&samples, BandwidthSelector::LeaveOneOut).unwrap();
        let grid = GridKde2d::build(&kde, &GridSpec::default()).unwrap();
        let amps: Vec<f64> = queries.iter().map(|q| q.0).collect();
        let phases: Vec<f64> = queries.iter().map(|q| q.1).collect();
        let mut f64_out = vec![0.0; queries.len()];
        let mut f32_out = vec![0.0; queries.len()];
        grid.log_eval_batch(&amps, &phases, &mut f64_out);
        grid.log_eval_batch_f32(&amps, &phases, &mut f32_out);
        for (k, (want, got)) in f64_out.iter().zip(&f32_out).enumerate() {
            let tol = 1e-3 * (1.0 + want.abs());
            prop_assert!(
                (got - want).abs() <= tol,
                "query {k} ({}, {}): f32 {got} vs f64 {want}",
                amps[k],
                phases[k]
            );
        }
    }

    /// The chunked polynomial `exp` equals its own scalar form for every element,
    /// independent of how the length splits into chunks.
    #[test]
    fn exp_batch_is_bit_identical_for_any_tail(xs in prop::collection::vec(-700.0f64..80.0, 0..40)) {
        let mut out = vec![0.0; xs.len()];
        exp_batch(&xs, &mut out);
        for (x, got) in xs.iter().zip(&out) {
            prop_assert_eq!(got.to_bits(), exp_approx(*x).to_bits(), "x = {}", x);
        }
    }
}
