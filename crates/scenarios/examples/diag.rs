//! Developer diagnostic: prints the per-subcarrier interference level (standard FFT
//! window vs minimum over all segments) for a few adjacent-channel configurations.
//! Useful when calibrating new scenarios; the user-facing walkthroughs live in the
//! workspace-level `examples/` directory.

use cprecycle::segments::interference_power_per_segment;
use cprecycle_scenarios::interference::AciScenario;
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use rand::SeedableRng;

fn main() {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let frame = tx
        .build_frame(
            &[0xA5; 200],
            Mcs::new(Modulation::Qpsk, CodeRate::Half),
            0x5D,
        )
        .unwrap();
    let engine = OfdmEngine::new(params.clone());
    for (guard, sir) in [(0.0f64, -20.0f64), (1.25e6, -20.0), (-1.25e6, -10.0)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sc = AciScenario {
            sir_db: sir,
            guard_band_hz: guard,
            ..Default::default()
        };
        let out = sc.render(&mut rng, &params, &frame.samples).unwrap();
        let sym_len = params.symbol_len();
        let data_start = preamble::preamble_len(&params) + sym_len;
        let vic_bins = engine
            .demodulate_standard(&frame.samples[data_start..data_start + sym_len])
            .unwrap();
        let powers = interference_power_per_segment(
            &engine,
            &out.interference_only[data_start..data_start + sym_len],
            17,
        )
        .unwrap();
        let sig_p = vic_bins[10].norm_sqr();
        println!("guard {guard} sir {sir}: victim bin10 pwr {:.3e}", sig_p);
        for bin in [26usize, 20, 10, 2, 38, 50] {
            let std_p = powers.value(16, bin);
            let min_p = powers
                .bin_powers(bin)
                .iter()
                .fold(f64::MAX, |acc, p| acc.min(*p));
            println!(
                "  bin {bin}: I_std {:.1} dB  I_min {:.1} dB (rel to sig)",
                10.0 * (std_p / sig_p).log10(),
                10.0 * (min_p / sig_p).log10()
            );
        }
    }
}
