//! Per-figure experiment drivers.
//!
//! One function per table/figure of the paper's evaluation. Every driver returns an
//! [`ExperimentResult`] whose series correspond to the curves in the original figure;
//! the `cprecycle-bench` binaries print them and EXPERIMENTS.md records the comparison
//! against the paper.
//!
//! Every Monte-Carlo figure builds its full grid of [`LinkPoint`]s — scenario ×
//! receiver × modulation × SINR — and submits it to the `cprecycle-engine` campaign
//! engine as **one** campaign, so the whole grid parallelises across workers instead
//! of running operating points serially. The grid builders are public (see
//! [`figure_grid`]) so the `campaign` CLI can run, checkpoint and resume the same
//! grids the figure binaries use.
//!
//! All drivers accept a [`FigureScale`] so unit tests can run them with a handful of
//! packets and a coarse sweep while the figure binaries use a dense grid and more
//! packets. Absolute values will not match the authors' over-the-air testbed; the
//! qualitative shape (who wins, roughly by how much, where the cliffs sit) is the
//! reproduction target.

use crate::interference::{AciScenario, AciSide, CciScenario};
use crate::link::{run_link_campaign, LinkPoint, MonteCarloConfig, ReceiverKind, Scenario};
use crate::neighbors::{run_neighbor_campaign, BuildingModel};
use crate::report::{ExperimentResult, Series};
use crate::Result;
use cprecycle::interference_model::InterferenceModel;
use cprecycle::oracle;
use cprecycle::segments::{
    extract_segments, extract_segments_with, interference_power_per_segment,
    interference_power_per_segment_with, SegmentExtraction, SegmentScratch,
};
use cprecycle::{CpRecycleConfig, DecisionStage, ModelBackend};
use cprecycle_engine::{CampaignConfig, CampaignResult};
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::{cp_table, OfdmParams};
use ofdmphy::preamble;
use rand::SeedableRng;
use rfdsp::kde::{BandwidthSelector, KernelDensity1d};
use rfdsp::power::lin_to_db;
use rfdsp::stats::EmpiricalCdf;

/// How much work a figure driver should do.
#[derive(Debug, Clone, Copy)]
pub struct FigureScale {
    /// Packets per Monte-Carlo operating point.
    pub packets: usize,
    /// Victim payload length in bytes.
    pub payload_len: usize,
    /// Base random seed.
    pub seed: u64,
    /// Use a coarse sweep grid (tests) instead of the paper-density grid (benches).
    pub coarse: bool,
}

impl FigureScale {
    /// The scale used by the figure-regeneration binaries (slower, denser).
    pub fn full() -> Self {
        FigureScale {
            packets: 60,
            payload_len: 400,
            seed: 0xC0FFEE,
            coarse: false,
        }
    }

    /// A minimal scale for unit/integration tests.
    pub fn smoke() -> Self {
        FigureScale {
            packets: 4,
            payload_len: 60,
            seed: 0xC0FFEE,
            coarse: true,
        }
    }

    /// The equivalent single-point Monte-Carlo configuration.
    pub fn monte_carlo(&self) -> MonteCarloConfig {
        MonteCarloConfig {
            packets: self.packets,
            payload_len: self.payload_len,
            seed: self.seed,
        }
    }

    /// The engine-level campaign configuration for a figure grid.
    pub fn campaign(&self, name: &str) -> CampaignConfig {
        CampaignConfig::new(name, self.seed).trials(self.packets)
    }
}

fn params() -> OfdmParams {
    OfdmParams::ieee80211ag()
}

fn paper_mcs_labels() -> Vec<(Mcs, &'static str)> {
    vec![
        (Mcs::new(Modulation::Qpsk, CodeRate::Half), "QPSK 1/2"),
        (Mcs::new(Modulation::Qam16, CodeRate::Half), "16-QAM 1/2"),
        (
            Mcs::new(Modulation::Qam64, CodeRate::TwoThirds),
            "64-QAM 2/3",
        ),
    ]
}

fn engine_error(e: cprecycle_engine::EngineError) -> ofdmphy::PhyError {
    ofdmphy::PhyError::DecodeFailure(e.to_string())
}

/// Runs a figure's grid as one engine campaign.
fn run_grid(name: &str, scale: &FigureScale, points: &[LinkPoint]) -> Result<CampaignResult> {
    run_link_campaign(
        &scale.campaign(name),
        points,
        &crate::telemetry::run_options(),
    )
    .map_err(engine_error)
}

/// Success rates (in percent) of every arm of grid point `idx`.
fn arm_percents(result: &CampaignResult, idx: usize) -> Vec<f64> {
    result.points[idx]
        .arms
        .iter()
        .map(|arm| arm.success_percent())
        .collect()
}

// ---------------------------------------------------------------------------
// Grid builders (shared by the figure drivers and the `campaign` CLI)
// ---------------------------------------------------------------------------

fn psr_vs_sir_grid(
    scale: &FigureScale,
    sirs: &[f64],
    scenario_for: impl Fn(f64) -> Scenario,
) -> Vec<LinkPoint> {
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let mut points = Vec::new();
    for (mcs, label) in paper_mcs_labels() {
        for sir in sirs {
            points.push(
                LinkPoint::new(
                    format!("{label} @ SIR {sir} dB"),
                    mcs,
                    scenario_for(*sir),
                    receivers.clone(),
                )
                .payload(scale.payload_len),
            );
        }
    }
    points
}

fn fig5_sirs() -> [f64; 3] {
    [-10.0, -20.0, -30.0]
}

fn fig5_guards(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![0.0, 10.0]
    } else {
        vec![0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 20.0]
    }
}

fn fig5_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::ThreeQuarters);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::with_decision(DecisionStage::Naive),
        ReceiverKind::with_decision(DecisionStage::Oracle),
    ];
    let mut points = Vec::new();
    for sir in fig5_sirs() {
        for guard in fig5_guards(scale) {
            points.push(
                LinkPoint::new(
                    format!("SIR {sir} dB, guard {guard} MHz"),
                    mcs,
                    Scenario::Aci(AciScenario {
                        sir_db: sir,
                        guard_band_hz: guard * 1e6,
                        oversample: if guard > 18.0 { 8 } else { 4 },
                        ..Default::default()
                    }),
                    receivers.clone(),
                )
                .payload(scale.payload_len),
            );
        }
    }
    points
}

fn fig8_sirs(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![-20.0, 0.0]
    } else {
        vec![-40.0, -30.0, -20.0, -10.0, 0.0, 10.0]
    }
}

fn fig8_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    psr_vs_sir_grid(scale, &fig8_sirs(scale), |sir| {
        Scenario::Aci(AciScenario {
            sir_db: sir,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        })
    })
}

fn fig9_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    psr_vs_sir_grid(scale, &fig8_sirs(scale), |sir| {
        Scenario::Aci(AciScenario {
            sir_db: sir,
            side: AciSide::BothSides,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        })
    })
}

fn fig10_guards(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![0.0, 15.0]
    } else {
        vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    }
}

fn fig10_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let mut points = Vec::new();
    for sir in [-10.0, -20.0, -30.0] {
        for guard in fig10_guards(scale) {
            points.push(
                LinkPoint::new(
                    format!("SIR {sir} dB, guard {guard} MHz"),
                    mcs,
                    Scenario::Aci(AciScenario {
                        sir_db: sir,
                        guard_band_hz: guard * 1e6,
                        oversample: if guard > 18.0 { 8 } else { 4 },
                        ..Default::default()
                    }),
                    receivers.clone(),
                )
                .payload(scale.payload_len),
            );
        }
    }
    points
}

fn fig11_sirs(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![0.0, 20.0]
    } else {
        vec![-10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0]
    }
}

fn fig11_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    psr_vs_sir_grid(scale, &fig11_sirs(scale), |sir| {
        Scenario::Cci(CciScenario {
            sir_db: sir,
            ..Default::default()
        })
    })
}

fn fig12_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    psr_vs_sir_grid(scale, &fig11_sirs(scale), |sir| {
        Scenario::Cci(CciScenario {
            sir_db: sir,
            num_interferers: 2,
            ..Default::default()
        })
    })
}

fn fig14_segment_counts(scale: &FigureScale) -> Vec<usize> {
    if scale.coarse {
        vec![1, 8, 16]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 14, 16]
    }
}

fn fig14_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let mut points = Vec::new();
    for sir in [-10.0, -20.0, -30.0] {
        for p in fig14_segment_counts(scale) {
            points.push(
                LinkPoint::new(
                    format!("SIR {sir} dB, P={p}"),
                    mcs,
                    Scenario::Aci(AciScenario {
                        sir_db: sir,
                        ..Default::default()
                    }),
                    vec![ReceiverKind::CpRecycle(CpRecycleConfig::with_segments(p))],
                )
                .payload(scale.payload_len),
            );
        }
    }
    points
}

fn ablate_sphere_radii() -> [f64; 5] {
    [0.5, 1.0, 2.0, 4.0, 8.0]
}

fn ablate_sphere_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qam64, CodeRate::TwoThirds);
    ablate_sphere_radii()
        .iter()
        .map(|r| {
            LinkPoint::new(
                format!("radius {r}"),
                mcs,
                Scenario::Aci(AciScenario {
                    sir_db: -10.0,
                    ..Default::default()
                }),
                vec![ReceiverKind::CpRecycle(
                    CpRecycleConfig::builder()
                        .decision(DecisionStage::Sphere {
                            radius_min_distances: *r,
                        })
                        .build(),
                )],
            )
            .payload(scale.payload_len)
        })
        .collect()
}

/// The decoder-comparison sweep: every decision stage as an arm of the same ACI grid,
/// so a fig. 8/9-style "which decoder wins where" comparison is **one** engine run —
/// the decoder is part of the campaign point key like SIR or `P`.
fn decoder_sweep_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::with_decision(DecisionStage::Standard),
        ReceiverKind::with_decision(DecisionStage::Naive),
        ReceiverKind::with_decision(DecisionStage::Oracle),
        ReceiverKind::with_decision(DecisionStage::default()),
    ];
    fig8_sirs(scale)
        .iter()
        .map(|sir| {
            LinkPoint::new(
                format!("SIR {sir} dB"),
                mcs,
                Scenario::Aci(AciScenario {
                    sir_db: *sir,
                    channel_offset_hz: Some(15e6),
                    ..Default::default()
                }),
                receivers.clone(),
            )
            .payload(scale.payload_len)
        })
        .collect()
}

/// The estimator-backend sweep: every interference-model backend (exact KDE,
/// precomputed grid, parametric Gaussian) as an arm of the same ACI grid at the
/// Fig. 14 reproduction operating point (QPSK 1/2, overlapping channel 15 MHz away,
/// `P = 16`), plus the standard receiver as the floor — "which density model is
/// accurate enough, and what does the cheap one cost in BER" as **one** engine run.
/// The backend is part of every campaign point key, exactly like the decoder.
fn models_sirs(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![-14.0]
    } else {
        vec![-30.0, -20.0, -14.0, -10.0, 0.0, 10.0]
    }
}

fn models_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::with_model(ModelBackend::ExactKde),
        ReceiverKind::with_model(ModelBackend::GridKde),
        ReceiverKind::with_model(ModelBackend::Gaussian),
    ];
    models_sirs(scale)
        .iter()
        .map(|sir| {
            LinkPoint::new(
                format!("SIR {sir} dB"),
                mcs,
                Scenario::Aci(AciScenario {
                    sir_db: *sir,
                    channel_offset_hz: Some(15e6),
                    ..Default::default()
                }),
                receivers.clone(),
            )
            .payload(scale.payload_len)
        })
        .collect()
}

fn ablate_kernel_sirs(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![-10.0]
    } else {
        vec![-20.0, -10.0, 0.0]
    }
}

fn ablate_kernel_grid(scale: &FigureScale) -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    // An enormous phase bandwidth makes the phase kernel uninformative, isolating the
    // contribution of the amplitude axis.
    let amplitude_only = CpRecycleConfig::builder()
        .bandwidth_phase(Some(1.0e6))
        .build();
    ablate_kernel_sirs(scale)
        .iter()
        .map(|sir| {
            LinkPoint::new(
                format!("SIR {sir} dB"),
                mcs,
                Scenario::Aci(AciScenario {
                    sir_db: *sir,
                    ..Default::default()
                }),
                vec![
                    ReceiverKind::CpRecycle(CpRecycleConfig::default()),
                    ReceiverKind::CpRecycle(amplitude_only),
                ],
            )
            .payload(scale.payload_len)
        })
        .collect()
}

/// The Monte-Carlo grid of a named figure, for the `campaign` CLI. Returns `None` for
/// names that are not packet-level campaigns (Table 1 and the capture diagnostics).
pub fn figure_grid(name: &str, scale: &FigureScale) -> Option<Vec<LinkPoint>> {
    match name {
        "fig5" => Some(fig5_grid(scale)),
        "fig8" => Some(fig8_grid(scale)),
        "fig9" => Some(fig9_grid(scale)),
        "fig10" => Some(fig10_grid(scale)),
        "fig11" => Some(fig11_grid(scale)),
        "fig12" => Some(fig12_grid(scale)),
        "fig14" => Some(fig14_grid(scale)),
        "decoders" => Some(decoder_sweep_grid(scale)),
        "models" => Some(models_grid(scale)),
        "ablate_sphere" => Some(ablate_sphere_grid(scale)),
        "ablate_kernel" => Some(ablate_kernel_grid(scale)),
        _ => None,
    }
}

/// Names accepted by [`figure_grid`].
pub const CAMPAIGN_FIGURES: &[&str] = &[
    "fig5",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "decoders",
    "models",
    "ablate_sphere",
    "ablate_kernel",
];

// ---------------------------------------------------------------------------
// Figure drivers
// ---------------------------------------------------------------------------

/// Table 1: cyclic-prefix size and duration across 802.11 standards.
pub fn table1() -> ExperimentResult {
    let rows = cp_table();
    let x: Vec<f64> = rows.iter().map(|r| r.bandwidth_mhz).collect();
    ExperimentResult {
        id: "Table 1".into(),
        description: "Cyclic prefix in 802.11 standards (long GI, samples and µs; short GI in companion series)".into(),
        x_label: "Bandwidth (MHz)".into(),
        y_label: "CP samples / duration (µs)".into(),
        series: vec![
            Series::new("FFT size", x.clone(), rows.iter().map(|r| r.fft_size as f64).collect()),
            Series::new("CP (long GI, samples)", x.clone(), rows.iter().map(|r| r.cp_long as f64).collect()),
            Series::new(
                "CP (short GI, samples)",
                x.clone(),
                rows.iter()
                    .map(|r| r.cp_short.map(|v| v as f64).unwrap_or(f64::NAN))
                    .collect(),
            ),
            Series::new("Duration (long GI, µs)", x.clone(), rows.iter().map(|r| r.duration_long_us).collect()),
            Series::new(
                "Duration (short GI, µs)",
                x,
                rows.iter()
                    .map(|r| r.duration_short_us.unwrap_or(f64::NAN))
                    .collect(),
            ),
        ],
    }
}

/// Shared helper: render one ACI capture and return (engine, channel estimate,
/// scenario output, frame).
fn one_aci_capture(
    sir_db: f64,
    guard_band_hz: f64,
    seed: u64,
) -> Result<(
    OfdmEngine,
    ChannelEstimate,
    crate::interference::ScenarioOutput,
    ofdmphy::frame::TxFrame,
)> {
    let params = params();
    let tx = Transmitter::new(params.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let frame = tx.build_frame(
        &vec![0xA5; 400],
        Mcs::new(Modulation::Qam16, CodeRate::Half),
        0x5D,
    )?;
    let scenario = AciScenario {
        sir_db,
        guard_band_hz,
        ..Default::default()
    };
    let output = scenario.render(&mut rng, &params, &frame.samples)?;
    let ltf_start = preamble::ltf_start_offset(&params);
    let preamble_len = preamble::preamble_len(&params);
    let engine = OfdmEngine::new(params);
    let estimate = ChannelEstimate::from_ltf(&engine, &output.received[ltf_start..preamble_len])?;
    Ok((engine, estimate, output, frame))
}

/// Figure 4a: interference power per subcarrier for the standard receiver's FFT window
/// versus the oracle's best window per subcarrier (ACI, −20 dB SIR).
pub fn fig4a(scale: &FigureScale) -> Result<ExperimentResult> {
    let (engine, _est, output, frame) = one_aci_capture(-20.0, 1.25e6, scale.seed)?;
    let params = engine.params().clone();
    let sym_len = params.symbol_len();
    let data_start = preamble::preamble_len(&params) + sym_len;
    // Average interference power over a few data symbols.
    let num_symbols = frame
        .num_data_symbols
        .min(if scale.coarse { 4 } else { 16 });
    let mut standard_acc = vec![0.0f64; params.fft_size];
    let mut oracle_acc = vec![0.0f64; params.fft_size];
    let mut scratch = SegmentScratch::new();
    for s in 0..num_symbols {
        let start = data_start + s * sym_len;
        let powers = interference_power_per_segment_with(
            &engine,
            &output.interference_only[start..start + sym_len],
            17,
            SegmentExtraction::Sliding,
            &mut scratch,
        )?;
        let selection = oracle::select_best_segments(&powers);
        for bin in 0..params.fft_size {
            standard_acc[bin] += selection.standard_interference[bin];
            oracle_acc[bin] += selection.min_interference[bin];
        }
    }
    let occupied = params.occupied_bins();
    let x: Vec<f64> = occupied.iter().map(|b| *b as f64).collect();
    let to_db = |acc: &[f64]| -> Vec<f64> {
        occupied
            .iter()
            .map(|b| lin_to_db(acc[*b].max(1e-30) / num_symbols as f64))
            .collect()
    };
    Ok(ExperimentResult {
        id: "Figure 4a".into(),
        description: "Per-subcarrier interference power: standard FFT window vs oracle best segment (ACI, SIR −20 dB)".into(),
        x_label: "Subcarrier (FFT bin)".into(),
        y_label: "Interference power (dB)".into(),
        series: vec![
            Series::new("Standard receiver", x.clone(), to_db(&standard_acc)),
            Series::new("Oracle receiver", x, to_db(&oracle_acc)),
        ],
    })
}

/// Figure 4b: interference power versus FFT segment index at one band-edge subcarrier,
/// for SIR −10 / −20 / −30 dB.
pub fn fig4b(scale: &FigureScale) -> Result<ExperimentResult> {
    let mut series = Vec::new();
    for (i, sir) in [-10.0, -20.0, -30.0].iter().enumerate() {
        let (engine, _est, output, _frame) = one_aci_capture(*sir, 1.25e6, scale.seed + i as u64)?;
        let params = engine.params().clone();
        let sym_len = params.symbol_len();
        let data_start = preamble::preamble_len(&params) + sym_len;
        let powers = interference_power_per_segment(
            &engine,
            &output.interference_only[data_start..data_start + sym_len],
            17,
        )?;
        // A data subcarrier a few bins inside the band edge facing the interferer: the
        // outermost bin is saturated by direct leakage in every window, the variation
        // the paper highlights shows up a little further in. The bin-major layout
        // hands the per-segment series of that bin out as one contiguous slice.
        let bin = 22usize;
        let bin_series = powers.bin_powers(bin);
        let max_p = bin_series
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1e-30);
        let x: Vec<f64> = (1..=powers.num_segments()).map(|j| j as f64).collect();
        let y: Vec<f64> = bin_series
            .iter()
            .map(|p| lin_to_db(p.max(1e-30) / max_p))
            .collect();
        series.push(Series::new(format!("SIR {sir} dB"), x, y));
    }
    Ok(ExperimentResult {
        id: "Figure 4b".into(),
        description: "Normalised interference power vs FFT segment index at a band-edge subcarrier"
            .into(),
        x_label: "FFT segment index".into(),
        y_label: "Interference power (dB, normalised to worst segment)".into(),
        series,
    })
}

/// Figure 4c: constellation scatter of one BPSK subcarrier over five FFT segments.
pub fn fig4c(scale: &FigureScale) -> Result<ExperimentResult> {
    let (engine, estimate, output, frame) = one_aci_capture(-15.0, 1.25e6, scale.seed)?;
    let params = engine.params().clone();
    let sym_len = params.symbol_len();
    let data_start = preamble::preamble_len(&params) + sym_len;
    let segments = extract_segments(
        &engine,
        &output.received[data_start..data_start + sym_len],
        &estimate,
        5,
    )?;
    let data_bins = params.data_bins();
    let bin = data_bins[40];
    let observations = segments.bin_observations(bin);
    let tx_value = frame.data_subcarrier_values[0][40];
    Ok(ExperimentResult {
        id: "Figure 4c".into(),
        description: "Received signal of one subcarrier in 5 FFT segments around the transmitted lattice point".into(),
        x_label: "In-phase".into(),
        y_label: "Quadrature".into(),
        series: vec![
            Series::new(
                "Received (per segment)",
                observations.iter().map(|o| o.re).collect(),
                observations.iter().map(|o| o.im).collect(),
            ),
            Series::new("Transmitted lattice point", vec![tx_value.re], vec![tx_value.im]),
        ],
    })
}

/// Figure 5: packet success rate vs guard band for the Standard receiver, the naive
/// decoder and the Oracle, at SIR −10 / −20 / −30 dB (QPSK 3/4, single ACI interferer).
pub fn fig5(scale: &FigureScale) -> Result<ExperimentResult> {
    let guards = fig5_guards(scale);
    let points = fig5_grid(scale);
    let result = run_grid("fig5", scale, &points)?;
    // Arm labels come from the recorded tallies, so they can never drift from the
    // receiver set fig5_grid actually ran.
    let arm_labels: Vec<String> = result.points[0]
        .arms
        .iter()
        .map(|a| a.label.clone())
        .collect();
    let mut series: Vec<Series> = Vec::new();
    for (si, sir) in fig5_sirs().iter().enumerate() {
        let mut per_receiver: Vec<Vec<f64>> = vec![Vec::new(); arm_labels.len()];
        for gi in 0..guards.len() {
            let psr = arm_percents(&result, si * guards.len() + gi);
            for (dst, v) in per_receiver.iter_mut().zip(&psr) {
                dst.push(*v);
            }
        }
        for (label, ys) in arm_labels.iter().zip(per_receiver) {
            series.push(Series::new(
                format!("{label} @ SIR {sir} dB"),
                guards.clone(),
                ys,
            ));
        }
    }
    Ok(ExperimentResult {
        id: "Figure 5".into(),
        description:
            "PSR vs guard band for Standard / Naive / Oracle (QPSK 3/4, single ACI interferer)"
                .into(),
        x_label: "Guard band (MHz)".into(),
        y_label: "Packet success rate (%)".into(),
        series,
    })
}

/// Figure 6a: kernel density estimates of one sample set at three bandwidths.
pub fn fig6a() -> ExperimentResult {
    // A bimodal sample set similar in spirit to the paper's illustration.
    let samples = vec![
        -4.0, -3.5, -3.2, 0.0, 0.3, 0.5, 0.8, 1.0, 1.2, 5.5, 6.0, 6.2,
    ];
    let mut series = Vec::new();
    for bw in [1.0, 2.0, 3.0] {
        let kde = KernelDensity1d::new(&samples, BandwidthSelector::Fixed(bw))
            .expect("non-empty samples");
        let grid = kde.eval_grid(-10.0, 12.0, 221);
        series.push(Series::new(
            format!("Bandwidth = {bw}"),
            grid.iter().map(|(x, _)| *x).collect(),
            grid.iter().map(|(_, d)| *d).collect(),
        ));
    }
    series.push(Series::new(
        "Sample data",
        samples.clone(),
        vec![0.0; samples.len()],
    ));
    ExperimentResult {
        id: "Figure 6a".into(),
        description: "Kernel density estimation of a sample set with varying bandwidth".into(),
        x_label: "Sample value".into(),
        y_label: "Density".into(),
        series,
    }
}

/// Figure 6b: CDF of amplitude deviations observed in data symbols versus the CDF
/// predicted by the preamble-trained density, for SIR −10 / −20 / −30 dB.
pub fn fig6b(scale: &FigureScale) -> Result<ExperimentResult> {
    let mut series = Vec::new();
    for (i, sir) in [-10.0, -20.0, -30.0].iter().enumerate() {
        let (engine, estimate, output, frame) =
            one_aci_capture(*sir, 1.25e6, scale.seed + 10 + i as u64)?;
        let params = engine.params().clone();
        let sym_len = params.symbol_len();
        let config = CpRecycleConfig::default();

        // Train the model from the LTF exactly as the receiver does: the LTF is
        // re-framed as two symbols whose prefixes are genuinely cyclic.
        let reference = preamble::ltf_bins(&params);
        let ltf_start = preamble::ltf_start_offset(&params);
        let c = params.cp_len;
        let f = params.fft_size;
        let mut scratch = SegmentScratch::new();
        let seg1 = extract_segments_with(
            &engine,
            &output.received[ltf_start + c..ltf_start + c + sym_len],
            &estimate,
            16,
            SegmentExtraction::Sliding,
            &mut scratch,
        )?;
        let seg2 = extract_segments_with(
            &engine,
            &output.received[ltf_start + c + f..ltf_start + c + f + sym_len],
            &estimate,
            16,
            SegmentExtraction::Sliding,
            &mut scratch,
        )?;
        let model = InterferenceModel::train(
            &engine,
            &[seg1, seg2],
            &[reference.clone(), reference],
            config,
        )?;

        // Collect data-symbol amplitude deviations on one band-edge subcarrier.
        let data_start = preamble::preamble_len(&params) + sym_len;
        let data_bins = params.data_bins();
        let bin = *data_bins.last().expect("data bins exist");
        let bin_col = data_bins.len() - 1;
        let mut deviations = Vec::new();
        let symbols = frame
            .num_data_symbols
            .min(if scale.coarse { 6 } else { 20 });
        for s in 0..symbols {
            let start = data_start + s * sym_len;
            let segments = extract_segments_with(
                &engine,
                &output.received[start..start + sym_len],
                &estimate,
                16,
                SegmentExtraction::Sliding,
                &mut scratch,
            )?;
            let tx_value = frame.data_subcarrier_values[s][bin_col];
            for obs in segments.bin_observations(bin) {
                deviations.push((*obs - tx_value).norm());
            }
        }
        let data_cdf = EmpiricalCdf::new(&deviations)?;
        let curve = data_cdf.curve();
        series.push(Series::new(
            format!("Data-symbol samples, SIR {sir} dB"),
            curve
                .iter()
                .map(|(x, _)| lin_to_db((x * x).max(1e-30)))
                .collect(),
            curve.iter().map(|(_, p)| *p).collect(),
        ));
        // Model-predicted CDF from the preamble-trained deviation samples.
        let model_cdf = EmpiricalCdf::new(model.samples_amplitude(bin))?;
        let curve = model_cdf.curve();
        series.push(Series::new(
            format!("Preamble-trained density, SIR {sir} dB"),
            curve
                .iter()
                .map(|(x, _)| lin_to_db((x * x).max(1e-30)))
                .collect(),
            curve.iter().map(|(_, p)| *p).collect(),
        ));
    }
    Ok(ExperimentResult {
        id: "Figure 6b".into(),
        description:
            "CDF of interference amplitude: data-symbol observations vs preamble-trained model"
                .into(),
        x_label: "Interference power (dB)".into(),
        y_label: "CDF".into(),
        series,
    })
}

fn psr_vs_sir(
    id: &str,
    description: &str,
    scale: &FigureScale,
    sirs: &[f64],
    points: Vec<LinkPoint>,
) -> Result<ExperimentResult> {
    let result = run_grid(id, scale, &points)?;
    let mut series = Vec::new();
    for (mi, (_mcs, label)) in paper_mcs_labels().iter().enumerate() {
        let mut without = Vec::new();
        let mut with = Vec::new();
        for si in 0..sirs.len() {
            let psr = arm_percents(&result, mi * sirs.len() + si);
            without.push(psr[0]);
            with.push(psr[1]);
        }
        series.push(Series::new(
            format!("{label}, without CPRecycle"),
            sirs.to_vec(),
            without,
        ));
        series.push(Series::new(
            format!("{label}, with CPRecycle"),
            sirs.to_vec(),
            with,
        ));
    }
    Ok(ExperimentResult {
        id: id.into(),
        description: description.into(),
        x_label: "Signal to interference ratio (dB)".into(),
        y_label: "Packet success rate (%)".into(),
        series,
    })
}

/// Figure 8: PSR vs SIR with a single adjacent-channel interferer, for the three paper
/// MCS modes, with and without CPRecycle.
pub fn fig8(scale: &FigureScale) -> Result<ExperimentResult> {
    psr_vs_sir(
        "Figure 8",
        "PSR vs SIR, single adjacent-channel interferer (overlapping 802.11 channel, 15 MHz away)",
        scale,
        &fig8_sirs(scale),
        fig8_grid(scale),
    )
}

/// Figure 9: PSR vs SIR with two adjacent-channel interferers (one on each side).
pub fn fig9(scale: &FigureScale) -> Result<ExperimentResult> {
    psr_vs_sir(
        "Figure 9",
        "PSR vs SIR, two adjacent-channel interferers (overlapping channels on both sides)",
        scale,
        &fig8_sirs(scale),
        fig9_grid(scale),
    )
}

/// Figure 10: PSR vs guard band (16-QAM 1/2), SIR −10 / −20 / −30 dB, with and without
/// CPRecycle.
pub fn fig10(scale: &FigureScale) -> Result<ExperimentResult> {
    let guards = fig10_guards(scale);
    let points = fig10_grid(scale);
    let result = run_grid("fig10", scale, &points)?;
    let mut series = Vec::new();
    for (si, sir) in [-10.0, -20.0, -30.0].iter().enumerate() {
        let mut without = Vec::new();
        let mut with = Vec::new();
        for gi in 0..guards.len() {
            let psr = arm_percents(&result, si * guards.len() + gi);
            without.push(psr[0]);
            with.push(psr[1]);
        }
        series.push(Series::new(
            format!("SIR {sir} dB, without CPRecycle"),
            guards.clone(),
            without,
        ));
        series.push(Series::new(
            format!("SIR {sir} dB, with CPRecycle"),
            guards.clone(),
            with,
        ));
    }
    Ok(ExperimentResult {
        id: "Figure 10".into(),
        description: "PSR vs guard band with an adjacent legacy transmitter (16-QAM 1/2)".into(),
        x_label: "Guard band (MHz)".into(),
        y_label: "Packet success rate (%)".into(),
        series,
    })
}

/// Figure 11: PSR vs SIR with a single co-channel interferer.
pub fn fig11(scale: &FigureScale) -> Result<ExperimentResult> {
    psr_vs_sir(
        "Figure 11",
        "PSR vs SIR, single co-channel interferer",
        scale,
        &fig11_sirs(scale),
        fig11_grid(scale),
    )
}

/// Figure 12: PSR vs SIR with two co-channel interferers.
pub fn fig12(scale: &FigureScale) -> Result<ExperimentResult> {
    psr_vs_sir(
        "Figure 12",
        "PSR vs SIR, two co-channel interferers",
        scale,
        &fig11_sirs(scale),
        fig12_grid(scale),
    )
}

/// Figure 13: CDF of the number of interfering neighbors in the office building, with
/// and without CPRecycle.
///
/// Runs as an engine campaign over independent building realizations (the trial
/// stream) whose per-AP neighbor counts are pooled through the tallies' auxiliary
/// sample streams — so even the non-packet figure checkpoints and parallelises like
/// every other campaign.
pub fn fig13(scale: &FigureScale) -> ExperimentResult {
    let realizations = if scale.coarse { 2 } else { 16 };
    let config = CampaignConfig::new("fig13", scale.seed).trials(realizations);
    let result = run_neighbor_campaign(
        &config,
        &BuildingModel::default(),
        &crate::telemetry::run_options(),
    )
    .expect("neighbor trials are infallible");
    let counts = crate::neighbors::counts_from_campaign(&result.points[0]);
    let std_curve = counts.standard_cdf();
    let cp_curve = counts.cprecycle_cdf();
    ExperimentResult {
        id: "Figure 13".into(),
        description: "CDF of interfering neighbors per AP in a 5-floor, 40-AP office".into(),
        x_label: "Number of interfering neighbors".into(),
        y_label: "CDF".into(),
        series: vec![
            Series::new(
                "Standard receiver",
                std_curve.iter().map(|(x, _)| *x).collect(),
                std_curve.iter().map(|(_, y)| *y).collect(),
            ),
            Series::new(
                "CPRecycle",
                cp_curve.iter().map(|(x, _)| *x).collect(),
                cp_curve.iter().map(|(_, y)| *y).collect(),
            ),
        ],
    }
}

/// Figure 14: PSR vs number of FFT segments (as % of the CP), ACI scenario, 16-QAM, for
/// SIR −10 / −20 / −30 dB.
pub fn fig14(scale: &FigureScale) -> Result<ExperimentResult> {
    let params = params();
    let segment_counts = fig14_segment_counts(scale);
    let points = fig14_grid(scale);
    let result = run_grid("fig14", scale, &points)?;
    let mut series = Vec::new();
    for (si, sir) in [-10.0, -20.0, -30.0].iter().enumerate() {
        let psrs: Vec<f64> = (0..segment_counts.len())
            .map(|pi| arm_percents(&result, si * segment_counts.len() + pi)[0])
            .collect();
        series.push(Series::new(
            format!("SIR {sir} dB"),
            segment_counts
                .iter()
                .map(|p| 100.0 * *p as f64 / params.cp_len as f64)
                .collect(),
            psrs,
        ));
    }
    Ok(ExperimentResult {
        id: "Figure 14".into(),
        description: "PSR vs number of FFT segments (% of CP), ACI, 16-QAM 1/2".into(),
        x_label: "Number of FFT segments (% of CP)".into(),
        y_label: "Packet success rate (%)".into(),
        series,
    })
}

/// Decoder comparison: packet success rate of every decision stage — conventional
/// receiver, standard-window stage, naive Eq. 3, genie Oracle and the sphere ML
/// decoder — versus SIR under single-interferer ACI, as one engine campaign.
pub fn decoder_comparison(scale: &FigureScale) -> Result<ExperimentResult> {
    let sirs = fig8_sirs(scale);
    let points = decoder_sweep_grid(scale);
    let result = run_grid("decoders", scale, &points)?;
    let arm_labels: Vec<String> = result.points[0]
        .arms
        .iter()
        .map(|a| a.label.clone())
        .collect();
    let mut per_receiver: Vec<Vec<f64>> = vec![Vec::new(); arm_labels.len()];
    for si in 0..sirs.len() {
        let psr = arm_percents(&result, si);
        for (dst, v) in per_receiver.iter_mut().zip(&psr) {
            dst.push(*v);
        }
    }
    Ok(ExperimentResult {
        id: "Decoder comparison".into(),
        description:
            "PSR vs SIR for every subcarrier-decision stage (QPSK 1/2, single ACI interferer)"
                .into(),
        x_label: "Signal to interference ratio (dB)".into(),
        y_label: "Packet success rate (%)".into(),
        series: arm_labels
            .into_iter()
            .zip(per_receiver)
            .map(|(label, ys)| Series::new(label, sirs.clone(), ys))
            .collect(),
    })
}

/// Estimator-backend comparison: packet success rate of every interference-model
/// backend — exact KDE (reference), precomputed log-likelihood grid, parametric
/// Gaussian — plus the standard receiver, versus SIR under single-interferer ACI at
/// the Fig. 14 reproduction operating point, as one engine campaign.
///
/// The reproduction claim this backs: the grid backend tracks the exact backend
/// within the Monte-Carlo confidence interval (it answers the same Eq. 5 queries
/// from a lookup table), while the Gaussian arm exposes what the non-parametric
/// density buys over a two-moment fit.
pub fn model_comparison(scale: &FigureScale) -> Result<ExperimentResult> {
    let sirs = models_sirs(scale);
    let points = models_grid(scale);
    let result = run_grid("models", scale, &points)?;
    let arm_labels: Vec<String> = result.points[0]
        .arms
        .iter()
        .map(|a| a.label.clone())
        .collect();
    let mut per_receiver: Vec<Vec<f64>> = vec![Vec::new(); arm_labels.len()];
    for si in 0..sirs.len() {
        let psr = arm_percents(&result, si);
        for (dst, v) in per_receiver.iter_mut().zip(&psr) {
            dst.push(*v);
        }
    }
    Ok(ExperimentResult {
        id: "Estimator comparison".into(),
        description:
            "PSR vs SIR for every interference-estimator backend (QPSK 1/2, single ACI interferer)"
                .into(),
        x_label: "Signal to interference ratio (dB)".into(),
        y_label: "Packet success rate (%)".into(),
        series: arm_labels
            .into_iter()
            .zip(per_receiver)
            .map(|(label, ys)| Series::new(label, sirs.clone(), ys))
            .collect(),
    })
}

/// Ablation: sphere radius vs PSR and mean search-space size (design choice of §4.2).
pub fn ablate_sphere_radius(scale: &FigureScale) -> Result<ExperimentResult> {
    let radii = ablate_sphere_radii();
    let points = ablate_sphere_grid(scale);
    let result = run_grid("ablate_sphere", scale, &points)?;
    let psrs: Vec<f64> = (0..radii.len())
        .map(|i| arm_percents(&result, i)[0])
        .collect();
    Ok(ExperimentResult {
        id: "Ablation: sphere radius".into(),
        description: "PSR vs fixed-sphere radius (64-QAM 2/3, ACI, SIR −10 dB)".into(),
        x_label: "Sphere radius (multiples of min distance)".into(),
        y_label: "Packet success rate (%)".into(),
        series: vec![Series::new("CPRecycle", radii.to_vec(), psrs)],
    })
}

/// Ablation: product (amplitude, phase) kernel vs amplitude-only kernel.
pub fn ablate_kernel(scale: &FigureScale) -> Result<ExperimentResult> {
    let sirs = ablate_kernel_sirs(scale);
    let points = ablate_kernel_grid(scale);
    let result = run_grid("ablate_kernel", scale, &points)?;
    let mut product = Vec::new();
    let mut amp_only = Vec::new();
    for i in 0..sirs.len() {
        let psr = arm_percents(&result, i);
        product.push(psr[0]);
        amp_only.push(psr[1]);
    }
    Ok(ExperimentResult {
        id: "Ablation: kernel".into(),
        description: "Bivariate product kernel vs amplitude-only kernel (16-QAM, ACI)".into(),
        x_label: "Signal to interference ratio (dB)".into(),
        y_label: "Packet success rate (%)".into(),
        series: vec![
            Series::new("Product (amplitude, phase) kernel", sirs.clone(), product),
            Series::new("Amplitude-only kernel", sirs, amp_only),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_standards_and_five_series() {
        let t = table1();
        assert_eq!(t.series.len(), 5);
        for s in &t.series {
            assert_eq!(s.x.len(), 4);
        }
        // 802.11a/g row: 64-point FFT, 16-sample CP, 0.8 µs.
        assert_eq!(t.series[0].y[0], 64.0);
        assert_eq!(t.series[1].y[0], 16.0);
        assert!((t.series[3].y[0] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fig4a_oracle_sees_less_interference_than_standard() {
        let r = fig4a(&FigureScale::smoke()).unwrap();
        assert_eq!(r.series.len(), 2);
        let standard_mean: f64 = r.series[0].y.iter().sum::<f64>() / r.series[0].y.len() as f64;
        let oracle_mean: f64 = r.series[1].y.iter().sum::<f64>() / r.series[1].y.len() as f64;
        assert!(
            standard_mean > oracle_mean + 3.0,
            "oracle should reduce interference: standard {standard_mean} dB, oracle {oracle_mean} dB"
        );
    }

    #[test]
    fn fig4b_interference_varies_across_segments() {
        let r = fig4b(&FigureScale::smoke()).unwrap();
        assert_eq!(r.series.len(), 3);
        for s in &r.series {
            assert_eq!(s.x.len(), 17);
            let max = s.y.iter().cloned().fold(f64::MIN, f64::max);
            let min = s.y.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                (max - 0.0).abs() < 1e-9,
                "normalised maximum should be 0 dB"
            );
            assert!(
                max - min > 2.0,
                "expected per-segment variation, got {} dB",
                max - min
            );
        }
    }

    #[test]
    fn fig4c_has_five_scatter_points_and_a_reference() {
        let r = fig4c(&FigureScale::smoke()).unwrap();
        assert_eq!(r.series[0].x.len(), 5);
        assert_eq!(r.series[1].x.len(), 1);
    }

    #[test]
    fn fig6a_narrow_bandwidth_has_higher_peak() {
        let r = fig6a();
        let peak = |s: &Series| s.y.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak(&r.series[0]) > peak(&r.series[2]));
        assert_eq!(r.series.len(), 4);
    }

    #[test]
    fn fig6b_produces_paired_series_per_sir() {
        let r = fig6b(&FigureScale::smoke()).unwrap();
        assert_eq!(r.series.len(), 6);
        for s in &r.series {
            assert!(!s.x.is_empty());
            // CDF values are within [0, 1].
            assert!(s.y.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn fig13_cprecycle_cdf_dominates_standard() {
        let r = fig13(&FigureScale::smoke());
        assert_eq!(r.series.len(), 2);
        // At any neighbor count the CPRecycle CDF is at least the standard CDF
        // (stochastic dominance): compare the medians as a robust summary.
        let median = |s: &Series| {
            let idx = s.y.iter().position(|v| *v >= 0.5).unwrap_or(0);
            s.x[idx]
        };
        assert!(median(&r.series[1]) <= median(&r.series[0]));
    }

    #[test]
    fn decoder_comparison_sweeps_all_stages_in_one_campaign() {
        let r = decoder_comparison(&FigureScale::smoke()).unwrap();
        assert_eq!(r.series.len(), 5, "one series per decision-stage arm");
        let labels: Vec<&str> = r.series.iter().map(|s| s.label.as_str()).collect();
        for needle in ["Standard", "Naive", "Oracle", "Sphere"] {
            assert!(
                labels.iter().any(|l| l.contains(needle)),
                "missing {needle} arm in {labels:?}"
            );
        }
        // Every series covers the whole SIR sweep.
        for s in &r.series {
            assert_eq!(s.x.len(), fig8_sirs(&FigureScale::smoke()).len());
        }
    }

    #[test]
    fn model_comparison_sweeps_all_backends_in_one_campaign() {
        let r = model_comparison(&FigureScale::smoke()).unwrap();
        assert_eq!(r.series.len(), 4, "one series per estimator arm + standard");
        let labels: Vec<&str> = r.series.iter().map(|s| s.label.as_str()).collect();
        for needle in ["Standard", "ExactKde", "GridKde", "Gaussian"] {
            assert!(
                labels.iter().any(|l| l.contains(needle)),
                "missing {needle} arm in {labels:?}"
            );
        }
        for s in &r.series {
            assert_eq!(s.x.len(), models_sirs(&FigureScale::smoke()).len());
        }
    }

    #[test]
    fn figure_grids_are_registered_and_nonempty() {
        let scale = FigureScale::smoke();
        for name in CAMPAIGN_FIGURES {
            let grid = figure_grid(name, &scale).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!grid.is_empty(), "{name}");
            // Labels are set and payloads follow the scale.
            for point in &grid {
                assert!(!point.label.is_empty());
                assert_eq!(point.payload_len, scale.payload_len);
            }
        }
        assert!(figure_grid("table1", &scale).is_none());
    }

    #[test]
    fn table_rendering_of_a_figure_result_is_nonempty() {
        let r = table1();
        let text = r.to_table();
        assert!(text.contains("Table 1"));
        assert!(!r.to_json().is_empty());
    }
}
