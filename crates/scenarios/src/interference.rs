//! Scenario builders: adjacent-channel and co-channel interference.
//!
//! Every builder takes a fully-built victim [`ofdmphy::frame::TxFrame`] and renders the
//! waveform the victim receiver actually captures, plus the interference-only waveform
//! (the paper obtains the latter by muting the sender; the Oracle receiver and the
//! Fig. 4 diagnostics need it).

use crate::wideband::{channel_select_and_decimate, shift_by_hz, upsample_interp};
use crate::Result;
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::PhyError;
use rand::Rng;
use rfdsp::noise::GaussianSource;
use rfdsp::power::{db_to_lin, signal_power};
use rfdsp::resample::fractional_delay;
use rfdsp::Complex;
use wirelesschan::frontend::TxFrontend;
use wirelesschan::impairments::apply_cfo;
use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

/// Which side(s) of the victim channel the adjacent interferer(s) occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AciSide {
    /// One interferer above the victim channel (the paper's single-interferer setup).
    Single,
    /// Interferers on both sides (the paper's Fig. 9 two-interferer setup).
    BothSides,
}

/// Adjacent-channel-interference scenario configuration.
#[derive(Debug, Clone)]
pub struct AciScenario {
    /// Oversampling factor of the composite simulation (4 covers guard bands to
    /// ~20 MHz, 8 covers the Fig. 10 sweep to 30 MHz).
    pub oversample: usize,
    /// Guard band between the victim's highest occupied subcarrier and the interferer's
    /// lowest occupied subcarrier, in Hz. Negative values create partially overlapping
    /// channels (e.g. Wi-Fi channels 8 vs 11).
    pub guard_band_hz: f64,
    /// Signal-to-interference ratio in dB (total received powers, per interferer).
    pub sir_db: f64,
    /// Receiver noise SNR in dB (relative to the victim signal).
    pub snr_db: f64,
    /// One or two interferers.
    pub side: AciSide,
    /// MCS used by the interferer's own frames.
    pub interferer_mcs: Mcs,
    /// Whether the interferer's front end is the leaky consumer-grade model (PA
    /// regrowth + IQ imbalance), the paper's "RF leakage" mechanism.
    pub leaky_interferer: bool,
    /// Carrier-frequency offset of the interferer relative to the victim (different
    /// oscillators), in Hz.
    pub interferer_cfo_hz: f64,
    /// Whether the interferer reaches the victim through its own Rayleigh multipath
    /// channel (frequency-selective interference, as indoors).
    pub interferer_multipath: bool,
    /// Explicit centre-to-centre channel offset in Hz. When set it overrides the
    /// guard-band geometry — used for the 802.11g overlapping-channel experiments
    /// (channels 8 vs 11 are 15 MHz apart, so their occupied bands overlap).
    pub channel_offset_hz: Option<f64>,
}

impl Default for AciScenario {
    fn default() -> Self {
        AciScenario {
            oversample: 4,
            guard_band_hz: 1.25e6, // 4 subcarriers, the paper's §3.2 setup
            sir_db: -10.0,
            snr_db: 30.0,
            side: AciSide::Single,
            interferer_mcs: Mcs::new(Modulation::Qam16, CodeRate::Half),
            leaky_interferer: true,
            interferer_cfo_hz: 35e3,
            interferer_multipath: true,
            channel_offset_hz: None,
        }
    }
}

/// Co-channel-interference scenario configuration.
#[derive(Debug, Clone)]
pub struct CciScenario {
    /// Signal-to-interference ratio in dB (per interferer).
    pub sir_db: f64,
    /// Receiver noise SNR in dB.
    pub snr_db: f64,
    /// Number of co-channel interferers (1 for Fig. 11, 2 for Fig. 12).
    pub num_interferers: usize,
    /// MCS used by the interferer's frames.
    pub interferer_mcs: Mcs,
    /// Carrier-frequency offset of the interferer relative to the victim, in Hz.
    pub interferer_cfo_hz: f64,
    /// Whether interferers arrive through their own Rayleigh multipath channels.
    pub interferer_multipath: bool,
}

impl Default for CciScenario {
    fn default() -> Self {
        CciScenario {
            sir_db: 10.0,
            snr_db: 30.0,
            num_interferers: 1,
            interferer_mcs: Mcs::new(Modulation::Qam16, CodeRate::Half),
            interferer_cfo_hz: 35e3,
            interferer_multipath: true,
        }
    }
}

/// The waveforms a scenario delivers to the receivers under test.
#[derive(Debug, Clone)]
pub struct ScenarioOutput {
    /// What the victim receiver captures: signal + interference + noise, at 20 MS/s,
    /// aligned so the victim frame starts at sample 0.
    pub received: Vec<Complex>,
    /// The interference-plus-leakage contribution alone (no signal, no noise), same
    /// alignment — the "muted sender" measurement the Oracle uses.
    pub interference_only: Vec<Complex>,
    /// The applied noise variance (linear), for receivers that want the ground truth.
    pub noise_variance: f64,
}

/// Builds one interferer waveform: a continuously transmitting 802.11 station sending
/// back-to-back frames of random payloads, long enough to cover `len` samples.
pub fn interferer_waveform<R: Rng + ?Sized>(
    rng: &mut R,
    tx: &Transmitter,
    mcs: Mcs,
    len: usize,
) -> Result<Vec<Complex>> {
    let mut wave = Vec::with_capacity(len + 4096);
    while wave.len() < len {
        let payload: Vec<u8> = (0..400).map(|_| rng.gen()).collect();
        let seed = rng.gen_range(1..=127u8);
        let frame = tx.build_frame(&payload, mcs, seed)?;
        wave.extend(frame.samples);
        // Short idle gap (SIFS-like) between back-to-back transmissions.
        wave.extend(std::iter::repeat_n(Complex::zero(), 16));
    }
    wave.truncate(len);
    Ok(wave)
}

fn maybe_multipath<R: Rng + ?Sized>(rng: &mut R, enabled: bool, wave: &[Complex]) -> Vec<Complex> {
    if !enabled {
        return wave.to_vec();
    }
    let pdp = PowerDelayProfile::exponential(6, 2.0).expect("static parameters are valid");
    let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, rng);
    chan.apply(wave)
}

impl AciScenario {
    /// Renders the scenario around one victim frame.
    pub fn render<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &OfdmParams,
        victim_samples: &[Complex],
    ) -> Result<ScenarioOutput> {
        if self.oversample == 0 {
            return Err(PhyError::invalid("oversample", "must be at least 1"));
        }
        let l = self.oversample;
        let fs_wide = params.sample_rate_hz * l as f64;
        let tx = Transmitter::new(params.clone());
        let victim_wide = upsample_interp(victim_samples, l)?;
        let wide_len = victim_wide.len();
        let victim_power = signal_power(&victim_wide)?;

        // Centre-frequency offset between victim and interferer: half the victim's
        // occupied band + guard + half the interferer's occupied band, unless an
        // explicit channel offset (overlapping Wi-Fi channels) was requested.
        let half_band = 26.0 * params.subcarrier_spacing_hz();
        let offset_hz = self
            .channel_offset_hz
            .unwrap_or(half_band + self.guard_band_hz + half_band);

        let sides: Vec<f64> = match self.side {
            AciSide::Single => vec![offset_hz],
            AciSide::BothSides => vec![offset_hz, -offset_hz],
        };

        let mut interference_wide = vec![Complex::zero(); wide_len];
        for side in sides {
            let narrow = interferer_waveform(rng, &tx, self.interferer_mcs, victim_samples.len())?;
            let narrow = maybe_multipath(rng, self.interferer_multipath, &narrow);
            let mut wide = upsample_interp(&narrow, l)?;
            if self.leaky_interferer {
                wide = TxFrontend::consumer_grade().apply(&wide);
            }
            if self.interferer_cfo_hz != 0.0 {
                apply_cfo(&mut wide, self.interferer_cfo_hz, fs_wide)
                    .map_err(|e| PhyError::invalid("interferer_cfo_hz", e.to_string()))?;
            }
            let mut shifted = shift_by_hz(&wide, side, fs_wide);
            // Temporal offset larger than the CP, fractional, random per packet.
            let cp_wide = (params.cp_len * l) as f64;
            let delay = cp_wide + rng.gen::<f64>() * (params.symbol_len() * l) as f64;
            shifted = fractional_delay(&shifted, delay, 16)?;
            // Scale to the per-interferer SIR (total received powers).
            let p_int = signal_power(&shifted)?;
            if p_int <= 0.0 {
                return Err(PhyError::invalid("interferer", "zero-power interferer"));
            }
            let gain = (victim_power / db_to_lin(self.sir_db) / p_int).sqrt();
            for (acc, s) in interference_wide.iter_mut().zip(&shifted) {
                *acc += s.scale(gain);
            }
        }

        let composite_wide: Vec<Complex> = victim_wide
            .iter()
            .zip(&interference_wide)
            .map(|(a, b)| *a + *b)
            .collect();

        // Victim receiver front end.
        let mut received = channel_select_and_decimate(&composite_wide, l)?;
        let interference_only = channel_select_and_decimate(&interference_wide, l)?;

        // Receiver AWGN relative to the victim signal power at baseband.
        let p_sig = signal_power(victim_samples)?;
        let noise_variance = p_sig / db_to_lin(self.snr_db);
        let mut gauss = GaussianSource::new();
        gauss.add_awgn(rng, &mut received, noise_variance);

        Ok(ScenarioOutput {
            received,
            interference_only,
            noise_variance,
        })
    }
}

impl CciScenario {
    /// Renders the scenario around one victim frame (no oversampling needed: the
    /// interferer occupies the same channel).
    pub fn render<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &OfdmParams,
        victim_samples: &[Complex],
    ) -> Result<ScenarioOutput> {
        if self.num_interferers == 0 {
            return Err(PhyError::invalid("num_interferers", "must be at least 1"));
        }
        let tx = Transmitter::new(params.clone());
        let len = victim_samples.len();
        let victim_power = signal_power(victim_samples)?;
        let mut interference = vec![Complex::zero(); len];
        for _ in 0..self.num_interferers {
            let wave = interferer_waveform(rng, &tx, self.interferer_mcs, len)?;
            let mut wave = maybe_multipath(rng, self.interferer_multipath, &wave);
            if self.interferer_cfo_hz != 0.0 {
                apply_cfo(&mut wave, self.interferer_cfo_hz, params.sample_rate_hz)
                    .map_err(|e| PhyError::invalid("interferer_cfo_hz", e.to_string()))?;
            }
            let delay = params.cp_len as f64 + rng.gen::<f64>() * params.symbol_len() as f64;
            let delayed = fractional_delay(&wave, delay, 16)?;
            let p_int = signal_power(&delayed)?;
            if p_int <= 0.0 {
                return Err(PhyError::invalid("interferer", "zero-power interferer"));
            }
            let gain = (victim_power / db_to_lin(self.sir_db) / p_int).sqrt();
            for (acc, s) in interference.iter_mut().zip(&delayed) {
                *acc += s.scale(gain);
            }
        }
        let mut received: Vec<Complex> = victim_samples
            .iter()
            .zip(&interference)
            .map(|(a, b)| *a + *b)
            .collect();
        let noise_variance = victim_power / db_to_lin(self.snr_db);
        let mut gauss = GaussianSource::new();
        gauss.add_awgn(rng, &mut received, noise_variance);
        Ok(ScenarioOutput {
            received,
            interference_only: interference,
            noise_variance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::rx::{FrameInfo, StandardReceiver};
    use rand::SeedableRng;

    fn victim() -> (OfdmParams, ofdmphy::frame::TxFrame, Mcs, Vec<u8>) {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let payload = vec![0x42; 100];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        (params, frame, mcs, payload)
    }

    #[test]
    fn interferer_waveform_covers_requested_length() {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let wave = interferer_waveform(
            &mut rng,
            &tx,
            Mcs::new(Modulation::Qpsk, CodeRate::Half),
            5000,
        )
        .unwrap();
        assert_eq!(wave.len(), 5000);
        assert!(signal_power(&wave).unwrap() > 0.0);
    }

    #[test]
    fn aci_with_huge_guard_band_does_not_break_the_standard_receiver() {
        // With a 25 MHz guard band and modest SIR the leakage into the victim band is
        // negligible, so the packet must decode — this pins down the wideband plumbing.
        let (params, frame, mcs, payload) = victim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let scenario = AciScenario {
            oversample: 8,
            guard_band_hz: 25e6,
            sir_db: 0.0,
            snr_db: 30.0,
            leaky_interferer: false,
            interferer_multipath: false,
            ..Default::default()
        };
        let out = scenario.render(&mut rng, &params, &frame.samples).unwrap();
        assert_eq!(out.received.len(), frame.samples.len());
        let rx = StandardReceiver::new(params);
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let decoded = rx.decode_frame(&out.received, 0, Some(info)).unwrap();
        assert!(decoded.crc_ok);
    }

    #[test]
    fn aci_with_no_guard_band_and_strong_interferer_breaks_the_standard_receiver() {
        let (params, frame, mcs, payload) = victim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let scenario = AciScenario {
            oversample: 4,
            // The paper's 802.11g setup: interferer on an overlapping channel 15 MHz away.
            channel_offset_hz: Some(15e6),
            sir_db: -20.0,
            ..Default::default()
        };
        let out = scenario.render(&mut rng, &params, &frame.samples).unwrap();
        let rx = StandardReceiver::new(params);
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let decoded = rx.decode_frame(&out.received, 0, Some(info)).unwrap();
        assert!(
            !decoded.crc_ok,
            "a -20 dB adjacent interferer with no guard band should kill the packet"
        );
    }

    #[test]
    fn aci_in_band_interference_power_grows_as_guard_band_shrinks() {
        let (params, frame, _, _) = victim();
        let measure = |guard: f64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let scenario = AciScenario {
                oversample: 4,
                guard_band_hz: guard,
                sir_db: -10.0,
                ..Default::default()
            };
            let out = scenario.render(&mut rng, &params, &frame.samples).unwrap();
            signal_power(&out.interference_only).unwrap()
        };
        let tight = measure(0.0);
        let loose = measure(15e6);
        assert!(
            tight > 4.0 * loose,
            "leakage should grow sharply as the guard band closes: tight {tight}, loose {loose}"
        );
    }

    #[test]
    fn cci_places_interference_at_requested_sir() {
        let (params, frame, _, _) = victim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let scenario = CciScenario {
            sir_db: 10.0,
            interferer_multipath: false,
            ..Default::default()
        };
        let out = scenario.render(&mut rng, &params, &frame.samples).unwrap();
        let p_sig = signal_power(&frame.samples).unwrap();
        let p_int = signal_power(&out.interference_only).unwrap();
        let measured = 10.0 * (p_sig / p_int).log10();
        assert!((measured - 10.0).abs() < 1.5, "SIR {measured}");
        assert!(out.noise_variance > 0.0);
    }

    #[test]
    fn cci_two_interferers_doubles_interference_power() {
        let (params, frame, _, _) = victim();
        let power_with = |n: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            let scenario = CciScenario {
                sir_db: 10.0,
                num_interferers: n,
                interferer_multipath: false,
                interferer_cfo_hz: 0.0,
                ..Default::default()
            };
            let out = scenario.render(&mut rng, &params, &frame.samples).unwrap();
            signal_power(&out.interference_only).unwrap()
        };
        let one = power_with(1);
        let two = power_with(2);
        assert!(two > 1.6 * one && two < 2.6 * one, "one {one}, two {two}");
    }

    #[test]
    fn scenario_validation() {
        let (params, frame, _, _) = victim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bad_aci = AciScenario {
            oversample: 0,
            ..Default::default()
        };
        assert!(bad_aci.render(&mut rng, &params, &frame.samples).is_err());
        let bad_cci = CciScenario {
            num_interferers: 0,
            ..Default::default()
        };
        assert!(bad_cci.render(&mut rng, &params, &frame.samples).is_err());
    }
}
