//! # cprecycle-scenarios — experiment harness for the CPRecycle reproduction
//!
//! The paper evaluates CPRecycle over the air with USRPs and an off-the-shelf 802.11g
//! access point. This crate rebuilds each of those experiments as a reproducible
//! Monte-Carlo simulation:
//!
//! * [`wideband`] — oversampled composite-signal machinery: interferers on adjacent or
//!   partially-overlapping channels are rendered at 4–8× the victim's sample rate, so
//!   their spectra genuinely sit outside the victim band, and the victim receiver
//!   applies a channel-select filter and decimates — exactly the path by which
//!   adjacent-channel energy leaks into a real receiver.
//! * [`interference`] — scenario builders for adjacent-channel interference (single and
//!   dual interferer, configurable guard band) and co-channel interference.
//! * [`link`] — packet-level link trials on top of the `cprecycle-engine` campaign
//!   engine: a [`link::LinkPoint`] is one operating point (numerology × modulation ×
//!   scenario × receiver set), one trial builds a frame, renders the scenario and
//!   decodes with every receiver under test (Standard, CPRecycle, Naive, Oracle), and
//!   whole grids run as parallel, checkpointable, deterministically replayable
//!   campaigns.
//! * [`figures`] — one driver per table/figure of the paper; every Monte-Carlo figure
//!   submits its full grid to the engine as one campaign (see
//!   [`figures::figure_grid`]) and returns serialisable result series that the
//!   `cprecycle-bench` binaries print and that EXPERIMENTS.md records.
//! * [`stream`] — bursty-traffic streaming campaigns: back-to-back frames at random
//!   gaps decoded through `cprecycle::session::RxSession` (incremental sync,
//!   over-the-air SIGNAL decode, cross-frame model persistence), with per-frame and
//!   aggregate packet success rates.
//! * [`stations`] — multi-station server driver: N bursty stations multiplexed
//!   through one `cprecycle::server::RxServer` over a fixed worker pool, with a
//!   seed-determined chunk interleaving and a thread-count-invariant report.
//! * [`neighbors`] — the synthetic office-building model behind Fig. 13.
//! * [`report`] — plain-text rendering of result series.
//! * [`telemetry`] — an opt-in process-wide recorder the figure campaigns report
//!   into, so the `cprecycle-bench` binaries can dump metrics snapshots without
//!   changing any driver signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod interference;
pub mod link;
pub mod neighbors;
pub mod report;
pub mod stations;
pub mod stream;
pub mod telemetry;
pub mod wideband;

/// Convenience alias reusing the PHY error type.
pub type Result<T> = std::result::Result<T, ofdmphy::PhyError>;
