//! Packet-level link simulation: grid points, trial execution and packet-success-rate
//! measurement on top of the `cprecycle-engine` campaign engine.
//!
//! A *link trial* builds one victim frame, renders one interference scenario around it
//! and decodes the captured waveform with every receiver under test (the point's
//! *arms*). The paper's packet-success-rate figures average 2000 such trials per
//! operating point; here an operating point is a [`LinkPoint`] and whole figures run
//! as one parallel campaign over their full grid (see `crate::figures`).
//!
//! Determinism and replay: a trial's randomness comes exclusively from the engine's
//! seed tree, so any `(master seed, point, trial index)` triple can be re-executed in
//! isolation with [`replay_link_trial`] — the debugging workflow for "why did packet
//! 1372 of the −20 dB point fail?".

use crate::interference::{AciScenario, CciScenario, ScenarioOutput};
use crate::Result;
use cprecycle::{
    CpRecycleConfig, CpRecycleReceiver, DecisionStage, ModelBackend, ModelPersistence, RxStream,
};
use cprecycle_engine::{
    run_campaign, CampaignConfig, CampaignPoint, CampaignResult, EngineError, RunOptions,
    TrialOutcome, TrialRecord,
};
use obs::{NoopRecorder, Recorder};
use ofdmphy::frame::{Mcs, Transmitter, TxFrame};
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, StandardReceiver};
use rand::rngs::StdRng;
use rand::Rng;
use rfdsp::Complex;
use std::collections::HashMap;

/// The receivers the experiments compare.
///
/// The decoder is part of the CPRecycle configuration
/// ([`CpRecycleConfig::decision`]): the naive Eq. 3 decoder, the genie-aided Oracle
/// and the standard-window decision are [`DecisionStage`]s of the same receiver, so a
/// single campaign sweeps decoders alongside SNR and `P`, and the decoder lands in
/// the engine's point keys and arm labels.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverKind {
    /// The conventional CP-discarding receiver ("Without CPRecycle").
    Standard,
    /// The CPRecycle receiver with its configured decision stage.
    CpRecycle(CpRecycleConfig),
}

impl ReceiverKind {
    /// A CPRecycle receiver with the default configuration but the given decoder —
    /// the arm constructor decoder-sweep grids use.
    pub fn with_decision(decision: DecisionStage) -> Self {
        ReceiverKind::CpRecycle(CpRecycleConfig::with_decision(decision))
    }

    /// A CPRecycle receiver with the default configuration but the given
    /// interference-estimator backend — the arm constructor the `models` sweep uses.
    pub fn with_model(model: ModelBackend) -> Self {
        ReceiverKind::CpRecycle(CpRecycleConfig::with_model(model))
    }

    /// Short label used in result series; names the decoder — and, when the decision
    /// stage scores with the interference model, the estimator backend — so reports
    /// and `campaign list`/`replay` show exactly what each arm ran.
    pub fn label(&self) -> String {
        match self {
            ReceiverKind::Standard => "Standard".into(),
            ReceiverKind::CpRecycle(c) => {
                if c.decision.needs_interference_model() {
                    format!(
                        "CPRecycle({}, P={}, {})",
                        c.decision.label(),
                        c.num_segments,
                        c.model.label()
                    )
                } else {
                    format!("CPRecycle({}, P={})", c.decision.label(), c.num_segments)
                }
            }
        }
    }
}

/// The interference environment of a link run.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// No interference (baseline sanity).
    Clean {
        /// Receiver SNR in dB.
        snr_db: f64,
    },
    /// Adjacent-channel interference.
    Aci(AciScenario),
    /// Co-channel interference.
    Cci(CciScenario),
}

impl Scenario {
    pub(crate) fn render<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &OfdmParams,
        victim: &[Complex],
    ) -> Result<ScenarioOutput> {
        match self {
            Scenario::Clean { snr_db } => {
                let p = rfdsp::power::signal_power(victim)?;
                let noise_variance = p / rfdsp::power::db_to_lin(*snr_db);
                let mut received = victim.to_vec();
                let mut gauss = rfdsp::noise::GaussianSource::new();
                gauss.add_awgn(rng, &mut received, noise_variance);
                Ok(ScenarioOutput {
                    received,
                    interference_only: vec![Complex::zero(); victim.len()],
                    noise_variance,
                })
            }
            Scenario::Aci(s) => s.render(rng, params, victim),
            Scenario::Cci(s) => s.render(rng, params, victim),
        }
    }
}

/// Configuration of a Monte-Carlo packet-success-rate measurement (compatibility
/// shape; the engine-level equivalent is [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Number of packets per operating point (the paper uses 2000; tests use far fewer).
    pub packets: usize,
    /// Victim payload length in bytes (the paper uses 400-byte packets).
    pub payload_len: usize,
    /// Master seed of the engine's deterministic seed tree.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            packets: 50,
            payload_len: 400,
            seed: 0xC0FFEE,
        }
    }
}

/// One operating point of a link campaign: a numerology + modulation + interference
/// scenario, decoded by a set of receivers (the point's arms).
#[derive(Debug, Clone)]
pub struct LinkPoint {
    /// Display label for reports ("SIR −20 dB", "guard 5 MHz", …).
    pub label: String,
    /// OFDM numerology of the victim link.
    pub params: OfdmParams,
    /// Victim modulation and code rate.
    pub mcs: Mcs,
    /// Interference environment.
    pub scenario: Scenario,
    /// Receivers under test; each trial decodes the same capture with every one.
    pub receivers: Vec<ReceiverKind>,
    /// Victim payload length in bytes.
    pub payload_len: usize,
}

impl LinkPoint {
    /// A point at the paper's default numerology with a 400-byte payload.
    pub fn new(
        label: impl Into<String>,
        mcs: Mcs,
        scenario: Scenario,
        receivers: Vec<ReceiverKind>,
    ) -> Self {
        LinkPoint {
            label: label.into(),
            params: OfdmParams::ieee80211ag(),
            mcs,
            scenario,
            receivers,
            payload_len: 400,
        }
    }

    /// Sets the payload length.
    pub fn payload(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }
}

impl CampaignPoint for LinkPoint {
    /// The key encodes every outcome-relevant parameter (numerology, modulation,
    /// scenario, receiver set, payload length) but *not* the display label or grid
    /// position, so checkpoints survive relabeling and grid extension.
    fn key(&self) -> String {
        format!(
            "fft={};cp={};rate={};mcs={:?};scenario={:?};receivers={:?};payload={}",
            self.params.fft_size,
            self.params.cp_len,
            self.params.sample_rate_hz,
            self.mcs,
            self.scenario,
            self.receivers,
            self.payload_len,
        )
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn arm_labels(&self) -> Vec<String> {
        self.receivers.iter().map(|r| r.label()).collect()
    }
}

/// A receiver constructed once per worker and reused across every trial that worker
/// claims, together with its per-arm stream state. The stream carries the hot-path
/// caches (sliding-DFT plan, decision scratch) *and* the cross-frame model slot of
/// the streaming API — link trials run with [`ModelPersistence::PerFrame`], which
/// retrains per frame and is bit-for-bit the old per-trial behaviour.
enum PreparedReceiver {
    Standard(Box<StandardReceiver>),
    CpRecycle(Box<(CpRecycleReceiver, RxStream)>),
}

impl PreparedReceiver {
    fn build(kind: &ReceiverKind, params: &OfdmParams) -> Self {
        match kind {
            ReceiverKind::Standard => {
                PreparedReceiver::Standard(Box::new(StandardReceiver::new(params.clone())))
            }
            ReceiverKind::CpRecycle(config) => PreparedReceiver::CpRecycle(Box::new((
                CpRecycleReceiver::new(params.clone(), *config),
                RxStream::new(ModelPersistence::PerFrame),
            ))),
        }
    }
}

/// Everything a worker needs to execute trials of one grid point.
struct PreparedPoint {
    tx: Transmitter,
    receivers: Vec<PreparedReceiver>,
}

impl PreparedPoint {
    fn build(point: &LinkPoint) -> Self {
        PreparedPoint {
            tx: Transmitter::new(point.params.clone()),
            receivers: point
                .receivers
                .iter()
                .map(|kind| PreparedReceiver::build(kind, &point.params))
                .collect(),
        }
    }
}

/// Worker-local state of a link campaign: prepared transmitters and receivers per
/// grid point, built lazily the first time a worker claims a trial of that point.
#[derive(Default)]
pub struct LinkWorker {
    prepared: HashMap<String, PreparedPoint>,
}

impl LinkWorker {
    /// An empty worker cache.
    pub fn new() -> Self {
        LinkWorker::default()
    }
}

/// Executes one link trial: build a frame, render the scenario, decode with every arm.
///
/// This is the closure body the engine executes — public so [`replay_link_trial`] and
/// the `campaign` CLI can re-run a single trial outside the executor.
pub fn run_link_trial(
    worker: &mut LinkWorker,
    point: &LinkPoint,
    rng: &mut StdRng,
) -> Result<TrialRecord> {
    run_link_trial_observed(worker, point, rng, &NoopRecorder)
}

/// [`run_link_trial`] with stage timing reported into `obs`: the receive chain's
/// per-stage spans (`sync`, `model_train`, `extract`, `decide`, `bits`, keyed by
/// decision stage / estimator backend) land in the recorder while the decode stays
/// bit-identical to the unobserved path.
pub fn run_link_trial_observed<O: Recorder>(
    worker: &mut LinkWorker,
    point: &LinkPoint,
    rng: &mut StdRng,
    obs: &O,
) -> Result<TrialRecord> {
    let prepared = worker
        .prepared
        .entry(point.key())
        .or_insert_with(|| PreparedPoint::build(point));
    let payload: Vec<u8> = (0..point.payload_len).map(|_| rng.gen()).collect();
    let scramble_seed = rng.gen_range(1..=127u8);
    let frame = prepared
        .tx
        .build_frame(&payload, point.mcs, scramble_seed)?;
    let output = point.scenario.render(rng, &point.params, &frame.samples)?;
    let mut arms = Vec::with_capacity(prepared.receivers.len());
    for receiver in prepared.receivers.iter_mut() {
        let outcome = decode_prepared_observed(receiver, &frame, &output, obs)?;
        arms.push(TrialOutcome::new(
            outcome.success,
            outcome.symbol_error_rate,
        ));
    }
    Ok(TrialRecord { arms })
}

/// Runs a link campaign over `points` with the engine.
///
/// When [`RunOptions::recorder`] is set it is threaded through to the receive chain,
/// so the campaign's metrics snapshot carries per-stage decode timing alongside the
/// executor's per-trial spans and worker gauges.
pub fn run_link_campaign(
    config: &CampaignConfig,
    points: &[LinkPoint],
    options: &RunOptions<'_>,
) -> std::result::Result<CampaignResult, EngineError> {
    run_campaign(
        config,
        points,
        LinkWorker::new,
        |worker, point, _point_idx, _trial_idx, rng| match options.recorder {
            Some(rec) => run_link_trial_observed(worker, point, rng, &rec),
            None => run_link_trial(worker, point, rng),
        },
        options,
    )
}

/// Replays one trial of a point in isolation, reproducing exactly what the campaign
/// executor computed for `(master_seed, point, trial_idx)`.
pub fn replay_link_trial(
    master_seed: u64,
    point: &LinkPoint,
    trial_idx: usize,
) -> Result<TrialRecord> {
    let mut worker = LinkWorker::new();
    let mut rng = cprecycle_engine::trial_rng(master_seed, &point.key(), trial_idx as u64);
    run_link_trial(&mut worker, point, &mut rng)
}

fn engine_error_to_phy(e: EngineError) -> ofdmphy::PhyError {
    ofdmphy::PhyError::DecodeFailure(e.to_string())
}

/// Outcome of decoding one packet with one receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketOutcome {
    /// Whether the FCS check passed.
    pub success: bool,
    /// Uncoded subcarrier decision error rate against the transmitted ground truth.
    pub symbol_error_rate: f64,
}

/// Decodes one captured packet with the given receiver kind.
///
/// `output.interference_only` is read only by the [`DecisionStage::Oracle`] stage;
/// other receivers ignore it. The campaign path keeps receivers constructed per
/// worker; this standalone helper builds one on the fly for diagnostics and tests.
pub fn decode_packet(
    kind: &ReceiverKind,
    params: &OfdmParams,
    frame: &TxFrame,
    output: &ScenarioOutput,
) -> Result<PacketOutcome> {
    let mut prepared = PreparedReceiver::build(kind, params);
    decode_prepared_observed(&mut prepared, frame, output, &NoopRecorder)
}

fn decode_prepared_observed<O: Recorder>(
    receiver: &mut PreparedReceiver,
    frame: &TxFrame,
    output: &ScenarioOutput,
    obs: &O,
) -> Result<PacketOutcome> {
    let info = FrameInfo {
        mcs: frame.mcs,
        psdu_len: frame.psdu.len(),
    };
    let out = match receiver {
        PreparedReceiver::Standard(rx) => {
            rx.decode_frame_observed(&output.received, 0, Some(info), obs)?
        }
        PreparedReceiver::CpRecycle(boxed) => {
            let (rx, stream) = boxed.as_mut();
            stream.begin_frame();
            rx.decode_frame_session_observed(
                &output.received,
                0,
                Some(info),
                Some(&output.interference_only),
                stream,
                obs,
            )?
        }
    };
    Ok(PacketOutcome {
        success: out.crc_ok,
        symbol_error_rate: symbol_error_rate(
            &out.equalized_symbols,
            &frame.data_subcarrier_values,
            frame.mcs,
        ),
    })
}

/// Uncoded subcarrier decision error rate against the transmitted ground truth.
pub fn symbol_error_rate(decisions: &[Vec<Complex>], truth: &[Vec<Complex>], mcs: Mcs) -> f64 {
    let mut errors = 0usize;
    let mut total = 0usize;
    for (rx_sym, tx_sym) in decisions.iter().zip(truth) {
        for (rx_val, tx_val) in rx_sym.iter().zip(tx_sym) {
            let decided = mcs.modulation.nearest_point(*rx_val).0;
            if (decided - *tx_val).norm() > 1e-9 {
                errors += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    }
}

/// Runs a Monte-Carlo packet-success-rate measurement: `config.packets` victim frames
/// are generated, each rendered through `scenario` and decoded by every receiver in
/// `receivers`. Returns the packet success rate (in percent, as the paper plots it)
/// per receiver, in the same order.
///
/// This is the single-point convenience wrapper around [`run_link_campaign`]; trials
/// are distributed over worker threads and every trial derives a deterministic RNG
/// from the engine's seed tree, so results do not depend on scheduling.
pub fn packet_success_rate(
    params: &OfdmParams,
    mcs: Mcs,
    scenario: &Scenario,
    receivers: &[ReceiverKind],
    config: &MonteCarloConfig,
) -> Result<Vec<f64>> {
    packet_success_rate_inner(params, mcs, scenario, receivers, config, None)
}

/// [`packet_success_rate`] with telemetry: the engine's per-trial spans and the
/// receive chain's per-stage decode timing are reported into `recorder`, without
/// changing any measured rate (instrumentation never touches the seed tree).
pub fn packet_success_rate_observed(
    params: &OfdmParams,
    mcs: Mcs,
    scenario: &Scenario,
    receivers: &[ReceiverKind],
    config: &MonteCarloConfig,
    recorder: &(dyn Recorder + Sync),
) -> Result<Vec<f64>> {
    packet_success_rate_inner(params, mcs, scenario, receivers, config, Some(recorder))
}

fn packet_success_rate_inner(
    params: &OfdmParams,
    mcs: Mcs,
    scenario: &Scenario,
    receivers: &[ReceiverKind],
    config: &MonteCarloConfig,
    recorder: Option<&(dyn Recorder + Sync)>,
) -> Result<Vec<f64>> {
    let point = LinkPoint {
        label: "packet_success_rate".into(),
        params: params.clone(),
        mcs,
        scenario: scenario.clone(),
        receivers: receivers.to_vec(),
        payload_len: config.payload_len,
    };
    let campaign = CampaignConfig::new("packet_success_rate", config.seed).trials(config.packets);
    let options = RunOptions {
        recorder,
        ..Default::default()
    };
    let result = run_link_campaign(&campaign, &[point], &options).map_err(engine_error_to_phy)?;
    Ok(result.points[0]
        .arms
        .iter()
        .map(|arm| arm.success_percent())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::modulation::Modulation;

    fn mcs() -> Mcs {
        Mcs::new(Modulation::Qpsk, CodeRate::Half)
    }

    fn small_config() -> MonteCarloConfig {
        MonteCarloConfig {
            packets: 6,
            payload_len: 60,
            seed: 42,
        }
    }

    #[test]
    fn receiver_labels_name_the_decoder() {
        assert_eq!(ReceiverKind::Standard.label(), "Standard");
        let sphere = ReceiverKind::CpRecycle(CpRecycleConfig::default()).label();
        assert!(sphere.contains("P=16"), "{sphere}");
        assert!(sphere.contains("Sphere"), "{sphere}");
        assert!(ReceiverKind::with_decision(DecisionStage::Naive)
            .label()
            .contains("Naive"));
        assert!(ReceiverKind::with_decision(DecisionStage::Oracle)
            .label()
            .contains("Oracle"));
        assert!(ReceiverKind::with_decision(DecisionStage::Standard)
            .label()
            .contains("CPRecycle(Standard"));
    }

    #[test]
    fn receiver_labels_name_the_estimator_backend() {
        // Model-scoring arms name their backend…
        assert!(ReceiverKind::CpRecycle(CpRecycleConfig::default())
            .label()
            .contains("ExactKde"));
        assert!(ReceiverKind::with_model(ModelBackend::GridKde)
            .label()
            .contains("GridKde"));
        assert!(ReceiverKind::with_model(ModelBackend::Gaussian)
            .label()
            .contains("Gaussian"));
        // …while stages that never train a model do not advertise one.
        assert!(!ReceiverKind::with_decision(DecisionStage::Naive)
            .label()
            .contains("Kde"));
    }

    #[test]
    fn estimator_backend_is_part_of_the_point_key() {
        let a = LinkPoint::new(
            "models",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::with_model(ModelBackend::ExactKde)],
        );
        let b = LinkPoint::new(
            "models",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::with_model(ModelBackend::GridKde)],
        );
        assert_ne!(a.key(), b.key(), "backend must affect point identity");
    }

    #[test]
    fn decoder_choice_is_part_of_the_point_key() {
        // Two points differing only in the decision stage must be distinct
        // experiments: the decoder is swept through the engine like any other
        // parameter.
        let a = LinkPoint::new(
            "decoders",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::with_decision(DecisionStage::Naive)],
        );
        let b = LinkPoint::new(
            "decoders",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::with_decision(DecisionStage::Oracle)],
        );
        assert_ne!(
            a.key(),
            b.key(),
            "decision stage must affect point identity"
        );
    }

    #[test]
    fn point_keys_encode_parameters_but_not_labels() {
        let a = LinkPoint::new(
            "A",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::Standard],
        );
        let b = LinkPoint::new(
            "B",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::Standard],
        );
        assert_eq!(a.key(), b.key(), "labels must not affect identity");
        let c = LinkPoint::new(
            "A",
            mcs(),
            Scenario::Clean { snr_db: 20.0 },
            vec![ReceiverKind::Standard],
        );
        assert_ne!(a.key(), c.key(), "scenario parameters must affect identity");
        let d = LinkPoint {
            payload_len: 100,
            ..a.clone()
        };
        assert_ne!(a.key(), d.key(), "payload length must affect identity");
    }

    #[test]
    fn clean_channel_every_receiver_achieves_full_psr() {
        let params = OfdmParams::ieee80211ag();
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
            ReceiverKind::CpRecycle(
                CpRecycleConfig::builder()
                    .num_segments(8)
                    .decision(DecisionStage::Naive)
                    .build(),
            ),
            ReceiverKind::CpRecycle(
                CpRecycleConfig::builder()
                    .num_segments(8)
                    .decision(DecisionStage::Oracle)
                    .build(),
            ),
        ];
        let psr = packet_success_rate(
            &params,
            mcs(),
            &Scenario::Clean { snr_db: 30.0 },
            &receivers,
            &small_config(),
        )
        .unwrap();
        assert_eq!(psr.len(), 4);
        for (p, r) in psr.iter().zip(&receivers) {
            assert_eq!(*p, 100.0, "{}", r.label());
        }
    }

    #[test]
    fn strong_cochannel_interference_breaks_the_standard_receiver() {
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Cci(CciScenario {
            sir_db: -10.0,
            ..Default::default()
        });
        let psr = packet_success_rate(
            &params,
            mcs(),
            &scenario,
            &[ReceiverKind::Standard],
            &small_config(),
        )
        .unwrap();
        assert_eq!(psr[0], 0.0);
    }

    #[test]
    fn cprecycle_outperforms_standard_under_adjacent_channel_interference() {
        // The headline packet-level comparison on the ACI scenario with a small guard
        // band and strong interferer: the standard receiver loses most packets while
        // CPRecycle recovers a clear majority.
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -14.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
        ];
        let config = MonteCarloConfig {
            packets: 10,
            payload_len: 60,
            seed: 7,
        };
        let psr = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        // The simulated link shows a consistent but smaller SIR shift than the paper's
        // over-the-air testbed (see EXPERIMENTS.md); at this operating point CPRecycle
        // recovers a clear majority of packets while the standard receiver is already
        // losing a large fraction.
        assert!(
            psr[1] >= psr[0] + 10.0,
            "CPRecycle PSR {} should clearly exceed standard PSR {}",
            psr[1],
            psr[0]
        );
        assert!(psr[1] >= 70.0, "CPRecycle PSR {} too low", psr[1]);
    }

    #[test]
    fn f32_kernels_track_f64_psr_at_the_aci_operating_point() {
        // Whole-frame pin of the reduced-precision kernels (PR 8): at the Fig. 14
        // operating point (QPSK 1/2, adjacent-channel interferer at +15 MHz,
        // P = 16), a receiver running the f32 sliding/grid kernels must land within
        // one packet of the f64 reference — the per-observation error budget
        // (≤ 1e-3) is far below the constellation's decision distances, so decisions
        // should not flip at all.
        use cprecycle::KernelPrecision;
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -12.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let qpsk_half = Mcs {
            modulation: Modulation::Qpsk,
            code_rate: CodeRate::Half,
        };
        let base = CpRecycleConfig::builder()
            .num_segments(16)
            .model(cprecycle::ModelBackend::GridKde);
        let receivers = vec![
            ReceiverKind::CpRecycle(base.build()),
            ReceiverKind::CpRecycle(base.precision(KernelPrecision::F32).build()),
        ];
        let config = MonteCarloConfig {
            packets: 10,
            payload_len: 60,
            seed: 11,
        };
        let psr = packet_success_rate(&params, qpsk_half, &scenario, &receivers, &config).unwrap();
        assert!(
            psr[0] > 50.0,
            "operating point should be decodable in f64, got PSR {}",
            psr[0]
        );
        assert!(
            (psr[0] - psr[1]).abs() <= 10.0 + 1e-12,
            "f32 PSR {} strayed from f64 PSR {}",
            psr[1],
            psr[0]
        );
    }

    #[test]
    fn oracle_upper_bounds_the_naive_decoder_under_aci() {
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -20.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let receivers = vec![
            ReceiverKind::with_decision(DecisionStage::Naive),
            ReceiverKind::with_decision(DecisionStage::Oracle),
        ];
        let config = MonteCarloConfig {
            packets: 6,
            payload_len: 60,
            seed: 11,
        };
        let psr = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        assert!(
            psr[1] >= psr[0],
            "Oracle PSR {} must be at least the naive PSR {}",
            psr[1],
            psr[0]
        );
    }

    #[test]
    fn serial_and_parallel_link_campaigns_are_bit_identical() {
        // The engine determinism contract, exercised through the full PHY stack: the
        // same master seed must produce identical tallies whether trials run on one
        // worker or several.
        let points = vec![
            LinkPoint::new(
                "clean",
                mcs(),
                Scenario::Clean { snr_db: 12.0 },
                vec![
                    ReceiverKind::Standard,
                    ReceiverKind::CpRecycle(CpRecycleConfig::default()),
                ],
            )
            .payload(40),
            LinkPoint::new(
                "aci",
                mcs(),
                Scenario::Aci(AciScenario {
                    sir_db: -14.0,
                    channel_offset_hz: Some(15e6),
                    ..Default::default()
                }),
                vec![
                    ReceiverKind::Standard,
                    ReceiverKind::CpRecycle(CpRecycleConfig::default()),
                ],
            )
            .payload(40),
        ];
        let serial = run_link_campaign(
            &CampaignConfig::new("determinism", 0xFEED)
                .trials(4)
                .threads(1),
            &points,
            &RunOptions::default(),
        )
        .unwrap();
        let parallel = run_link_campaign(
            &CampaignConfig::new("determinism", 0xFEED)
                .trials(4)
                .threads(4),
            &points,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(serial.deterministic_view(), parallel.deterministic_view());
        // And a meaningful result came out: the clean point decodes everything.
        assert_eq!(serial.points[0].arms[0].successes, 4);
    }

    #[test]
    fn observed_campaign_matches_plain_and_records_stage_timing() {
        use obs::Recorder as _;
        let params = OfdmParams::ieee80211ag();
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
        ];
        let config = small_config();
        let scenario = Scenario::Clean { snr_db: 30.0 };
        let plain = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        let rec = obs::InMemoryRecorder::new(64);
        let observed =
            packet_success_rate_observed(&params, mcs(), &scenario, &receivers, &config, &rec)
                .unwrap();
        assert_eq!(plain, observed, "instrumentation must not change outcomes");
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counter("trials_completed"), config.packets as u64);
        // The executor's per-trial span and the receive chain's per-stage spans,
        // keyed by decision stage, all landed in one recorder.
        assert!(snap.stage("trial", "").is_some());
        assert!(snap.stage("sync", "Standard").is_some());
        assert!(snap.stage("sync", "Sphere").is_some());
        assert!(snap.stage("decide", "Sphere").is_some());
        assert!(snap.stage("model_train", "ExactKde").is_some());
    }

    #[test]
    fn replaying_a_single_trial_reproduces_its_recorded_outcome() {
        let point = LinkPoint::new(
            "replay",
            mcs(),
            Scenario::Clean { snr_db: 6.0 },
            vec![ReceiverKind::Standard],
        )
        .payload(40);
        let seed = 0xBEEF;
        let trials = 5;
        let campaign = run_link_campaign(
            &CampaignConfig::new("replay", seed)
                .trials(trials)
                .threads(2),
            std::slice::from_ref(&point),
            &RunOptions::default(),
        )
        .unwrap();
        // Replay every trial individually and reduce in trial order: the sums must be
        // bit-identical to the campaign tally.
        let mut successes = 0usize;
        let mut metric_sum = 0.0f64;
        for t in 0..trials {
            let record = replay_link_trial(seed, &point, t).unwrap();
            if record.arms[0].success {
                successes += 1;
            }
            metric_sum += record.arms[0].metric;
        }
        let arm = &campaign.points[0].arms[0];
        assert_eq!(arm.successes, successes);
        assert_eq!(arm.metric_sum.to_bits(), metric_sum.to_bits());
    }
}
