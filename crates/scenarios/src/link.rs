//! Packet-level link simulation: grid points, trial execution and packet-success-rate
//! measurement on top of the `cprecycle-engine` campaign engine.
//!
//! A *link trial* builds one victim frame, renders one interference scenario around it
//! and decodes the captured waveform with every receiver under test (the point's
//! *arms*). The paper's packet-success-rate figures average 2000 such trials per
//! operating point; here an operating point is a [`LinkPoint`] and whole figures run
//! as one parallel campaign over their full grid (see `crate::figures`).
//!
//! Determinism and replay: a trial's randomness comes exclusively from the engine's
//! seed tree, so any `(master seed, point, trial index)` triple can be re-executed in
//! isolation with [`replay_link_trial`] — the debugging workflow for "why did packet
//! 1372 of the −20 dB point fail?".

use crate::interference::{AciScenario, CciScenario, ScenarioOutput};
use crate::Result;
use cprecycle::segments::{
    extract_segments_with, interference_power_per_segment_with, SegmentExtraction, SegmentScratch,
    SymbolSegments,
};
use cprecycle::{naive, oracle, CpRecycleConfig, CpRecycleReceiver};
use cprecycle_engine::{
    run_campaign, CampaignConfig, CampaignPoint, CampaignResult, EngineError, RunOptions,
    TrialOutcome, TrialRecord,
};
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::frame::{Mcs, Transmitter, TxFrame};
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use ofdmphy::rx::{decode_psdu_from_symbols, FrameInfo, StandardReceiver};
use ofdmphy::viterbi::ViterbiDecoder;
use rand::rngs::StdRng;
use rand::Rng;
use rfdsp::Complex;
use std::collections::HashMap;

/// The receivers the experiments compare.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverKind {
    /// The conventional CP-discarding receiver ("Without CPRecycle").
    Standard,
    /// The CPRecycle receiver ("With CPRecycle").
    CpRecycle(CpRecycleConfig),
    /// The naive average-distance multi-segment decoder (paper Eq. 3 / ShiftFFT).
    Naive {
        /// Number of FFT segments to use.
        num_segments: usize,
    },
    /// The Oracle best-segment selector (perfect interference knowledge).
    Oracle {
        /// Number of FFT segments to use.
        num_segments: usize,
    },
}

impl ReceiverKind {
    /// Short label used in result series.
    pub fn label(&self) -> String {
        match self {
            ReceiverKind::Standard => "Standard".into(),
            ReceiverKind::CpRecycle(c) => format!("CPRecycle(P={})", c.num_segments),
            ReceiverKind::Naive { num_segments } => format!("Naive(P={num_segments})"),
            ReceiverKind::Oracle { num_segments } => format!("Oracle(P={num_segments})"),
        }
    }
}

/// The interference environment of a link run.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// No interference (baseline sanity).
    Clean {
        /// Receiver SNR in dB.
        snr_db: f64,
    },
    /// Adjacent-channel interference.
    Aci(AciScenario),
    /// Co-channel interference.
    Cci(CciScenario),
}

impl Scenario {
    fn render<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &OfdmParams,
        victim: &[Complex],
    ) -> Result<ScenarioOutput> {
        match self {
            Scenario::Clean { snr_db } => {
                let p = rfdsp::power::signal_power(victim)?;
                let noise_variance = p / rfdsp::power::db_to_lin(*snr_db);
                let mut received = victim.to_vec();
                let mut gauss = rfdsp::noise::GaussianSource::new();
                gauss.add_awgn(rng, &mut received, noise_variance);
                Ok(ScenarioOutput {
                    received,
                    interference_only: vec![Complex::zero(); victim.len()],
                    noise_variance,
                })
            }
            Scenario::Aci(s) => s.render(rng, params, victim),
            Scenario::Cci(s) => s.render(rng, params, victim),
        }
    }
}

/// Configuration of a Monte-Carlo packet-success-rate measurement (compatibility
/// shape; the engine-level equivalent is [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Number of packets per operating point (the paper uses 2000; tests use far fewer).
    pub packets: usize,
    /// Victim payload length in bytes (the paper uses 400-byte packets).
    pub payload_len: usize,
    /// Master seed of the engine's deterministic seed tree.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            packets: 50,
            payload_len: 400,
            seed: 0xC0FFEE,
        }
    }
}

/// One operating point of a link campaign: a numerology + modulation + interference
/// scenario, decoded by a set of receivers (the point's arms).
#[derive(Debug, Clone)]
pub struct LinkPoint {
    /// Display label for reports ("SIR −20 dB", "guard 5 MHz", …).
    pub label: String,
    /// OFDM numerology of the victim link.
    pub params: OfdmParams,
    /// Victim modulation and code rate.
    pub mcs: Mcs,
    /// Interference environment.
    pub scenario: Scenario,
    /// Receivers under test; each trial decodes the same capture with every one.
    pub receivers: Vec<ReceiverKind>,
    /// Victim payload length in bytes.
    pub payload_len: usize,
}

impl LinkPoint {
    /// A point at the paper's default numerology with a 400-byte payload.
    pub fn new(
        label: impl Into<String>,
        mcs: Mcs,
        scenario: Scenario,
        receivers: Vec<ReceiverKind>,
    ) -> Self {
        LinkPoint {
            label: label.into(),
            params: OfdmParams::ieee80211ag(),
            mcs,
            scenario,
            receivers,
            payload_len: 400,
        }
    }

    /// Sets the payload length.
    pub fn payload(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }
}

impl CampaignPoint for LinkPoint {
    /// The key encodes every outcome-relevant parameter (numerology, modulation,
    /// scenario, receiver set, payload length) but *not* the display label or grid
    /// position, so checkpoints survive relabeling and grid extension.
    fn key(&self) -> String {
        format!(
            "fft={};cp={};rate={};mcs={:?};scenario={:?};receivers={:?};payload={}",
            self.params.fft_size,
            self.params.cp_len,
            self.params.sample_rate_hz,
            self.mcs,
            self.scenario,
            self.receivers,
            self.payload_len,
        )
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn arm_labels(&self) -> Vec<String> {
        self.receivers.iter().map(|r| r.label()).collect()
    }
}

/// A receiver constructed once per worker and reused across every trial that worker
/// claims — the hot-path caches (FFT plans, Viterbi tables, interference-model
/// scratch) live inside the constructed receivers.
enum PreparedReceiver {
    Standard(StandardReceiver),
    CpRecycle(CpRecycleReceiver),
    Naive { num_segments: usize },
    Oracle { num_segments: usize },
}

impl PreparedReceiver {
    fn build(kind: &ReceiverKind, params: &OfdmParams) -> Self {
        match kind {
            ReceiverKind::Standard => {
                PreparedReceiver::Standard(StandardReceiver::new(params.clone()))
            }
            ReceiverKind::CpRecycle(config) => {
                PreparedReceiver::CpRecycle(CpRecycleReceiver::new(params.clone(), *config))
            }
            ReceiverKind::Naive { num_segments } => PreparedReceiver::Naive {
                num_segments: *num_segments,
            },
            ReceiverKind::Oracle { num_segments } => PreparedReceiver::Oracle {
                num_segments: *num_segments,
            },
        }
    }
}

/// Everything a worker needs to execute trials of one grid point.
struct PreparedPoint {
    tx: Transmitter,
    engine: OfdmEngine,
    receivers: Vec<PreparedReceiver>,
    /// Worker-local segment-extraction scratch: the sliding-DFT plan and working
    /// buffers, built once and reused by every receiver across every trial this
    /// worker claims.
    scratch: SegmentScratch,
}

impl PreparedPoint {
    fn build(point: &LinkPoint) -> Self {
        PreparedPoint {
            tx: Transmitter::new(point.params.clone()),
            engine: OfdmEngine::new(point.params.clone()),
            receivers: point
                .receivers
                .iter()
                .map(|kind| PreparedReceiver::build(kind, &point.params))
                .collect(),
            scratch: SegmentScratch::new(),
        }
    }
}

/// Worker-local state of a link campaign: prepared transmitters and receivers per
/// grid point, built lazily the first time a worker claims a trial of that point.
#[derive(Default)]
pub struct LinkWorker {
    prepared: HashMap<String, PreparedPoint>,
}

impl LinkWorker {
    /// An empty worker cache.
    pub fn new() -> Self {
        LinkWorker::default()
    }
}

/// Executes one link trial: build a frame, render the scenario, decode with every arm.
///
/// This is the closure body the engine executes — public so [`replay_link_trial`] and
/// the `campaign` CLI can re-run a single trial outside the executor.
pub fn run_link_trial(
    worker: &mut LinkWorker,
    point: &LinkPoint,
    rng: &mut StdRng,
) -> Result<TrialRecord> {
    let prepared = worker
        .prepared
        .entry(point.key())
        .or_insert_with(|| PreparedPoint::build(point));
    let payload: Vec<u8> = (0..point.payload_len).map(|_| rng.gen()).collect();
    let scramble_seed = rng.gen_range(1..=127u8);
    let frame = prepared
        .tx
        .build_frame(&payload, point.mcs, scramble_seed)?;
    let output = point.scenario.render(rng, &point.params, &frame.samples)?;
    let mut arms = Vec::with_capacity(prepared.receivers.len());
    let PreparedPoint {
        ref engine,
        ref receivers,
        ref mut scratch,
        ..
    } = *prepared;
    for receiver in receivers {
        let outcome = decode_prepared(receiver, engine, &point.params, &frame, &output, scratch)?;
        arms.push(TrialOutcome::new(
            outcome.success,
            outcome.symbol_error_rate,
        ));
    }
    Ok(TrialRecord { arms })
}

/// Runs a link campaign over `points` with the engine.
pub fn run_link_campaign(
    config: &CampaignConfig,
    points: &[LinkPoint],
    options: &RunOptions<'_>,
) -> std::result::Result<CampaignResult, EngineError> {
    run_campaign(
        config,
        points,
        LinkWorker::new,
        |worker, point, _point_idx, _trial_idx, rng| run_link_trial(worker, point, rng),
        options,
    )
}

/// Replays one trial of a point in isolation, reproducing exactly what the campaign
/// executor computed for `(master_seed, point, trial_idx)`.
pub fn replay_link_trial(
    master_seed: u64,
    point: &LinkPoint,
    trial_idx: usize,
) -> Result<TrialRecord> {
    let mut worker = LinkWorker::new();
    let mut rng = cprecycle_engine::trial_rng(master_seed, &point.key(), trial_idx as u64);
    run_link_trial(&mut worker, point, &mut rng)
}

fn engine_error_to_phy(e: EngineError) -> ofdmphy::PhyError {
    ofdmphy::PhyError::DecodeFailure(e.to_string())
}

/// Outcome of decoding one packet with one receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketOutcome {
    /// Whether the FCS check passed.
    pub success: bool,
    /// Uncoded subcarrier decision error rate against the transmitted ground truth.
    pub symbol_error_rate: f64,
}

/// Decodes one captured packet with the given receiver kind.
///
/// `output.interference_only` is used only by the Oracle; other receivers ignore it.
/// The campaign path keeps receivers constructed per worker; this standalone helper
/// builds one on the fly for diagnostics and tests.
pub fn decode_packet(
    kind: &ReceiverKind,
    params: &OfdmParams,
    frame: &TxFrame,
    output: &ScenarioOutput,
) -> Result<PacketOutcome> {
    let prepared = PreparedReceiver::build(kind, params);
    let engine = OfdmEngine::new(params.clone());
    let mut scratch = SegmentScratch::new();
    decode_prepared(&prepared, &engine, params, frame, output, &mut scratch)
}

fn decode_prepared(
    receiver: &PreparedReceiver,
    engine: &OfdmEngine,
    params: &OfdmParams,
    frame: &TxFrame,
    output: &ScenarioOutput,
    scratch: &mut SegmentScratch,
) -> Result<PacketOutcome> {
    let info = FrameInfo {
        mcs: frame.mcs,
        psdu_len: frame.psdu.len(),
    };
    let decided = match receiver {
        PreparedReceiver::Standard(rx) => {
            let out = rx.decode_frame(&output.received, 0, Some(info))?;
            return Ok(PacketOutcome {
                success: out.crc_ok,
                symbol_error_rate: symbol_error_rate(
                    &out.equalized_symbols,
                    &frame.data_subcarrier_values,
                    frame.mcs,
                ),
            });
        }
        PreparedReceiver::CpRecycle(rx) => {
            let out = rx.decode_frame_scratch(&output.received, 0, Some(info), scratch)?;
            return Ok(PacketOutcome {
                success: out.crc_ok,
                symbol_error_rate: symbol_error_rate(
                    &out.equalized_symbols,
                    &frame.data_subcarrier_values,
                    frame.mcs,
                ),
            });
        }
        PreparedReceiver::Naive { num_segments } => {
            let data_bins = params.data_bins();
            decode_multi_segment(
                engine,
                params,
                frame,
                output,
                *num_segments,
                scratch,
                |_, segments, _, _| {
                    naive::decode_symbol(segments, &data_bins, frame.mcs.modulation)
                },
            )?
        }
        PreparedReceiver::Oracle { num_segments } => {
            let num_segments = *num_segments;
            let data_bins = params.data_bins();
            decode_multi_segment(
                engine,
                params,
                frame,
                output,
                num_segments,
                scratch,
                |engine, segments, symbol_index, scratch| {
                    // Interference power per segment from the interference-only capture.
                    let sym_len = engine.params().symbol_len();
                    let data_start = preamble::preamble_len(engine.params()) + sym_len;
                    let start = data_start + symbol_index * sym_len;
                    let intf_symbol = &output.interference_only[start..start + sym_len];
                    let powers = interference_power_per_segment_with(
                        engine,
                        intf_symbol,
                        num_segments,
                        SegmentExtraction::Sliding,
                        scratch,
                    )
                    .expect("segment count already validated");
                    let selection = oracle::select_best_segments(&powers);
                    oracle::decode_symbol(segments, &selection, &data_bins, frame.mcs.modulation)
                },
            )?
        }
    };
    let viterbi = ViterbiDecoder::new();
    let (_, crc_ok) = decode_psdu_from_symbols(&viterbi, params, &decided, info)?;
    Ok(PacketOutcome {
        success: crc_ok,
        symbol_error_rate: symbol_error_rate(&decided, &frame.data_subcarrier_values, frame.mcs),
    })
}

/// Shared plumbing for the Naive and Oracle receivers: channel estimate from the LTF,
/// per-symbol segment extraction (sliding kernel, reused scratch), then a
/// caller-supplied per-symbol decision function mapping
/// `(engine, segments, symbol index, scratch)` to decided lattice points. The
/// bin-major [`SymbolSegments`] is handed to the decision function directly, so
/// per-bin observation access stays allocation-free.
fn decode_multi_segment<F>(
    engine: &OfdmEngine,
    params: &OfdmParams,
    frame: &TxFrame,
    output: &ScenarioOutput,
    num_segments: usize,
    scratch: &mut SegmentScratch,
    mut decide: F,
) -> Result<Vec<Vec<Complex>>>
where
    F: FnMut(&OfdmEngine, &SymbolSegments, usize, &mut SegmentScratch) -> Vec<Complex>,
{
    let sym_len = params.symbol_len();
    let preamble_len = preamble::preamble_len(params);
    let ltf_start = preamble::ltf_start_offset(params);
    let estimate = ChannelEstimate::from_ltf(engine, &output.received[ltf_start..preamble_len])?;
    let data_start = preamble_len + sym_len;
    let mut decided = Vec::with_capacity(frame.num_data_symbols);
    for s in 0..frame.num_data_symbols {
        let start = data_start + s * sym_len;
        if output.received.len() < start + sym_len {
            return Err(ofdmphy::PhyError::InsufficientSamples {
                needed: start + sym_len,
                available: output.received.len(),
            });
        }
        let segments = extract_segments_with(
            engine,
            &output.received[start..start + sym_len],
            &estimate,
            num_segments,
            SegmentExtraction::Sliding,
            scratch,
        )?;
        decided.push(decide(engine, &segments, s, scratch));
    }
    Ok(decided)
}

/// Uncoded subcarrier decision error rate against the transmitted ground truth.
pub fn symbol_error_rate(decisions: &[Vec<Complex>], truth: &[Vec<Complex>], mcs: Mcs) -> f64 {
    let mut errors = 0usize;
    let mut total = 0usize;
    for (rx_sym, tx_sym) in decisions.iter().zip(truth) {
        for (rx_val, tx_val) in rx_sym.iter().zip(tx_sym) {
            let decided = mcs.modulation.nearest_point(*rx_val).0;
            if (decided - *tx_val).norm() > 1e-9 {
                errors += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    }
}

/// Runs a Monte-Carlo packet-success-rate measurement: `config.packets` victim frames
/// are generated, each rendered through `scenario` and decoded by every receiver in
/// `receivers`. Returns the packet success rate (in percent, as the paper plots it)
/// per receiver, in the same order.
///
/// This is the single-point convenience wrapper around [`run_link_campaign`]; trials
/// are distributed over worker threads and every trial derives a deterministic RNG
/// from the engine's seed tree, so results do not depend on scheduling.
pub fn packet_success_rate(
    params: &OfdmParams,
    mcs: Mcs,
    scenario: &Scenario,
    receivers: &[ReceiverKind],
    config: &MonteCarloConfig,
) -> Result<Vec<f64>> {
    let point = LinkPoint {
        label: "packet_success_rate".into(),
        params: params.clone(),
        mcs,
        scenario: scenario.clone(),
        receivers: receivers.to_vec(),
        payload_len: config.payload_len,
    };
    let campaign = CampaignConfig::new("packet_success_rate", config.seed).trials(config.packets);
    let result = run_link_campaign(&campaign, &[point], &RunOptions::default())
        .map_err(engine_error_to_phy)?;
    Ok(result.points[0]
        .arms
        .iter()
        .map(|arm| arm.success_percent())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::modulation::Modulation;

    fn mcs() -> Mcs {
        Mcs::new(Modulation::Qpsk, CodeRate::Half)
    }

    fn small_config() -> MonteCarloConfig {
        MonteCarloConfig {
            packets: 6,
            payload_len: 60,
            seed: 42,
        }
    }

    #[test]
    fn receiver_labels_are_descriptive() {
        assert_eq!(ReceiverKind::Standard.label(), "Standard");
        assert!(ReceiverKind::CpRecycle(CpRecycleConfig::default())
            .label()
            .contains("P=16"));
        assert!(ReceiverKind::Naive { num_segments: 5 }
            .label()
            .contains("Naive"));
        assert!(ReceiverKind::Oracle { num_segments: 9 }
            .label()
            .contains("Oracle"));
    }

    #[test]
    fn point_keys_encode_parameters_but_not_labels() {
        let a = LinkPoint::new(
            "A",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::Standard],
        );
        let b = LinkPoint::new(
            "B",
            mcs(),
            Scenario::Clean { snr_db: 30.0 },
            vec![ReceiverKind::Standard],
        );
        assert_eq!(a.key(), b.key(), "labels must not affect identity");
        let c = LinkPoint::new(
            "A",
            mcs(),
            Scenario::Clean { snr_db: 20.0 },
            vec![ReceiverKind::Standard],
        );
        assert_ne!(a.key(), c.key(), "scenario parameters must affect identity");
        let d = LinkPoint {
            payload_len: 100,
            ..a.clone()
        };
        assert_ne!(a.key(), d.key(), "payload length must affect identity");
    }

    #[test]
    fn clean_channel_every_receiver_achieves_full_psr() {
        let params = OfdmParams::ieee80211ag();
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
            ReceiverKind::Naive { num_segments: 8 },
            ReceiverKind::Oracle { num_segments: 8 },
        ];
        let psr = packet_success_rate(
            &params,
            mcs(),
            &Scenario::Clean { snr_db: 30.0 },
            &receivers,
            &small_config(),
        )
        .unwrap();
        assert_eq!(psr.len(), 4);
        for (p, r) in psr.iter().zip(&receivers) {
            assert_eq!(*p, 100.0, "{}", r.label());
        }
    }

    #[test]
    fn strong_cochannel_interference_breaks_the_standard_receiver() {
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Cci(CciScenario {
            sir_db: -10.0,
            ..Default::default()
        });
        let psr = packet_success_rate(
            &params,
            mcs(),
            &scenario,
            &[ReceiverKind::Standard],
            &small_config(),
        )
        .unwrap();
        assert_eq!(psr[0], 0.0);
    }

    #[test]
    fn cprecycle_outperforms_standard_under_adjacent_channel_interference() {
        // The headline packet-level comparison on the ACI scenario with a small guard
        // band and strong interferer: the standard receiver loses most packets while
        // CPRecycle recovers a clear majority.
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -14.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
        ];
        let config = MonteCarloConfig {
            packets: 10,
            payload_len: 60,
            seed: 7,
        };
        let psr = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        // The simulated link shows a consistent but smaller SIR shift than the paper's
        // over-the-air testbed (see EXPERIMENTS.md); at this operating point CPRecycle
        // recovers a clear majority of packets while the standard receiver is already
        // losing a large fraction.
        assert!(
            psr[1] >= psr[0] + 10.0,
            "CPRecycle PSR {} should clearly exceed standard PSR {}",
            psr[1],
            psr[0]
        );
        assert!(psr[1] >= 70.0, "CPRecycle PSR {} too low", psr[1]);
    }

    #[test]
    fn oracle_upper_bounds_the_naive_decoder_under_aci() {
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -20.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let receivers = vec![
            ReceiverKind::Naive { num_segments: 16 },
            ReceiverKind::Oracle { num_segments: 16 },
        ];
        let config = MonteCarloConfig {
            packets: 6,
            payload_len: 60,
            seed: 11,
        };
        let psr = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        assert!(
            psr[1] >= psr[0],
            "Oracle PSR {} must be at least the naive PSR {}",
            psr[1],
            psr[0]
        );
    }

    #[test]
    fn serial_and_parallel_link_campaigns_are_bit_identical() {
        // The engine determinism contract, exercised through the full PHY stack: the
        // same master seed must produce identical tallies whether trials run on one
        // worker or several.
        let points = vec![
            LinkPoint::new(
                "clean",
                mcs(),
                Scenario::Clean { snr_db: 12.0 },
                vec![
                    ReceiverKind::Standard,
                    ReceiverKind::CpRecycle(CpRecycleConfig::default()),
                ],
            )
            .payload(40),
            LinkPoint::new(
                "aci",
                mcs(),
                Scenario::Aci(AciScenario {
                    sir_db: -14.0,
                    channel_offset_hz: Some(15e6),
                    ..Default::default()
                }),
                vec![
                    ReceiverKind::Standard,
                    ReceiverKind::CpRecycle(CpRecycleConfig::default()),
                ],
            )
            .payload(40),
        ];
        let serial = run_link_campaign(
            &CampaignConfig::new("determinism", 0xFEED)
                .trials(4)
                .threads(1),
            &points,
            &RunOptions::default(),
        )
        .unwrap();
        let parallel = run_link_campaign(
            &CampaignConfig::new("determinism", 0xFEED)
                .trials(4)
                .threads(4),
            &points,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(serial.deterministic_view(), parallel.deterministic_view());
        // And a meaningful result came out: the clean point decodes everything.
        assert_eq!(serial.points[0].arms[0].successes, 4);
    }

    #[test]
    fn replaying_a_single_trial_reproduces_its_recorded_outcome() {
        let point = LinkPoint::new(
            "replay",
            mcs(),
            Scenario::Clean { snr_db: 6.0 },
            vec![ReceiverKind::Standard],
        )
        .payload(40);
        let seed = 0xBEEF;
        let trials = 5;
        let campaign = run_link_campaign(
            &CampaignConfig::new("replay", seed)
                .trials(trials)
                .threads(2),
            std::slice::from_ref(&point),
            &RunOptions::default(),
        )
        .unwrap();
        // Replay every trial individually and reduce in trial order: the sums must be
        // bit-identical to the campaign tally.
        let mut successes = 0usize;
        let mut metric_sum = 0.0f64;
        for t in 0..trials {
            let record = replay_link_trial(seed, &point, t).unwrap();
            if record.arms[0].success {
                successes += 1;
            }
            metric_sum += record.arms[0].metric;
        }
        let arm = &campaign.points[0].arms[0];
        assert_eq!(arm.successes, successes);
        assert_eq!(arm.metric_sum.to_bits(), metric_sum.to_bits());
    }
}
