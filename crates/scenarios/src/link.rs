//! Packet-level link simulation and Monte-Carlo packet-success-rate measurement.
//!
//! A *link run* builds one victim frame, renders one interference scenario around it
//! and decodes the captured waveform with every receiver under test. The paper's
//! packet-success-rate figures average 2000 such runs per operating point; the harness
//! makes the packet count a parameter so tests stay fast while the figure binaries can
//! crank it up.

use crate::interference::{AciScenario, CciScenario, ScenarioOutput};
use crate::Result;
use cprecycle::segments::{extract_segments, interference_power_per_segment};
use cprecycle::{naive, oracle, CpRecycleConfig, CpRecycleReceiver};
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::frame::{Mcs, Transmitter, TxFrame};
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use ofdmphy::rx::{decode_psdu_from_symbols, FrameInfo, StandardReceiver};
use ofdmphy::viterbi::ViterbiDecoder;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use serde::{Deserialize, Serialize};

/// The receivers the experiments compare.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverKind {
    /// The conventional CP-discarding receiver ("Without CPRecycle").
    Standard,
    /// The CPRecycle receiver ("With CPRecycle").
    CpRecycle(CpRecycleConfig),
    /// The naive average-distance multi-segment decoder (paper Eq. 3 / ShiftFFT).
    Naive {
        /// Number of FFT segments to use.
        num_segments: usize,
    },
    /// The Oracle best-segment selector (perfect interference knowledge).
    Oracle {
        /// Number of FFT segments to use.
        num_segments: usize,
    },
}

impl ReceiverKind {
    /// Short label used in result series.
    pub fn label(&self) -> String {
        match self {
            ReceiverKind::Standard => "Standard".into(),
            ReceiverKind::CpRecycle(c) => format!("CPRecycle(P={})", c.num_segments),
            ReceiverKind::Naive { num_segments } => format!("Naive(P={num_segments})"),
            ReceiverKind::Oracle { num_segments } => format!("Oracle(P={num_segments})"),
        }
    }
}

/// The interference environment of a link run.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// No interference (baseline sanity).
    Clean {
        /// Receiver SNR in dB.
        snr_db: f64,
    },
    /// Adjacent-channel interference.
    Aci(AciScenario),
    /// Co-channel interference.
    Cci(CciScenario),
}

impl Scenario {
    fn render<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &OfdmParams,
        victim: &[Complex],
    ) -> Result<ScenarioOutput> {
        match self {
            Scenario::Clean { snr_db } => {
                let p = rfdsp::power::signal_power(victim)?;
                let noise_variance = p / rfdsp::power::db_to_lin(*snr_db);
                let mut received = victim.to_vec();
                let mut gauss = rfdsp::noise::GaussianSource::new();
                gauss.add_awgn(rng, &mut received, noise_variance);
                Ok(ScenarioOutput {
                    received,
                    interference_only: vec![Complex::zero(); victim.len()],
                    noise_variance,
                })
            }
            Scenario::Aci(s) => s.render(rng, params, victim),
            Scenario::Cci(s) => s.render(rng, params, victim),
        }
    }
}

/// Configuration of a Monte-Carlo packet-success-rate measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of packets per operating point (the paper uses 2000; tests use far fewer).
    pub packets: usize,
    /// Victim payload length in bytes (the paper uses 400-byte packets).
    pub payload_len: usize,
    /// Base random seed; each packet derives its own deterministic seed from it.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            packets: 50,
            payload_len: 400,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of decoding one packet with one receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketOutcome {
    /// Whether the FCS check passed.
    pub success: bool,
    /// Uncoded subcarrier decision error rate against the transmitted ground truth.
    pub symbol_error_rate: f64,
}

/// Decodes one captured packet with the given receiver kind.
///
/// `interference_only` is used only by the Oracle; other receivers ignore it.
pub fn decode_packet(
    kind: &ReceiverKind,
    params: &OfdmParams,
    frame: &TxFrame,
    output: &ScenarioOutput,
) -> Result<PacketOutcome> {
    let info = FrameInfo {
        mcs: frame.mcs,
        psdu_len: frame.psdu.len(),
    };
    let decided = match kind {
        ReceiverKind::Standard => {
            let rx = StandardReceiver::new(params.clone());
            let out = rx.decode_frame(&output.received, 0, Some(info))?;
            return Ok(PacketOutcome {
                success: out.crc_ok,
                symbol_error_rate: symbol_error_rate(
                    &out.equalized_symbols,
                    &frame.data_subcarrier_values,
                    frame.mcs,
                ),
            });
        }
        ReceiverKind::CpRecycle(config) => {
            let rx = CpRecycleReceiver::new(params.clone(), *config);
            let out = rx.decode_frame(&output.received, 0, Some(info))?;
            return Ok(PacketOutcome {
                success: out.crc_ok,
                symbol_error_rate: symbol_error_rate(
                    &out.equalized_symbols,
                    &frame.data_subcarrier_values,
                    frame.mcs,
                ),
            });
        }
        ReceiverKind::Naive { num_segments } => {
            decode_multi_segment(params, frame, output, *num_segments, |_, obs_per_bin, _| {
                naive::decode_symbol(obs_per_bin, frame.mcs.modulation)
            })?
        }
        ReceiverKind::Oracle { num_segments } => {
            let num_segments = *num_segments;
            decode_multi_segment(
                params,
                frame,
                output,
                num_segments,
                |engine, obs_per_bin, symbol_index| {
                    // Interference power per segment from the interference-only capture.
                    let sym_len = engine.params().symbol_len();
                    let data_start = preamble::preamble_len(engine.params()) + sym_len;
                    let start = data_start + symbol_index * sym_len;
                    let intf_symbol = &output.interference_only[start..start + sym_len];
                    let powers =
                        interference_power_per_segment(engine, intf_symbol, num_segments)
                            .expect("segment count already validated");
                    let selection = oracle::select_best_segments(&powers);
                    let data_bins = engine.params().data_bins();
                    let segments = cprecycle::segments::SymbolSegments {
                        values: transpose_observations(obs_per_bin, &data_bins, engine.params().fft_size),
                    };
                    oracle::decode_symbol(&segments, &selection, &data_bins, frame.mcs.modulation)
                },
            )?
        }
    };
    let viterbi = ViterbiDecoder::new();
    let (_, crc_ok) = decode_psdu_from_symbols(&viterbi, params, &decided, info)?;
    Ok(PacketOutcome {
        success: crc_ok,
        symbol_error_rate: symbol_error_rate(&decided, &frame.data_subcarrier_values, frame.mcs),
    })
}

/// Shared plumbing for the Naive and Oracle receivers: channel estimate from the LTF,
/// per-symbol segment extraction, then a caller-supplied per-symbol decision function
/// mapping `(engine, per-bin observations, symbol index)` to decided lattice points.
fn decode_multi_segment<F>(
    params: &OfdmParams,
    frame: &TxFrame,
    output: &ScenarioOutput,
    num_segments: usize,
    mut decide: F,
) -> Result<Vec<Vec<Complex>>>
where
    F: FnMut(&OfdmEngine, &[Vec<Complex>], usize) -> Vec<Complex>,
{
    let engine = OfdmEngine::new(params.clone());
    let sym_len = params.symbol_len();
    let preamble_len = preamble::preamble_len(params);
    let ltf_start = 160;
    let estimate = ChannelEstimate::from_ltf(&engine, &output.received[ltf_start..preamble_len])?;
    let data_start = preamble_len + sym_len;
    let data_bins = params.data_bins();
    let mut decided = Vec::with_capacity(frame.num_data_symbols);
    for s in 0..frame.num_data_symbols {
        let start = data_start + s * sym_len;
        if output.received.len() < start + sym_len {
            return Err(ofdmphy::PhyError::InsufficientSamples {
                needed: start + sym_len,
                available: output.received.len(),
            });
        }
        let segments = extract_segments(
            &engine,
            &output.received[start..start + sym_len],
            &estimate,
            num_segments,
        )?;
        let per_bin: Vec<Vec<Complex>> = data_bins
            .iter()
            .map(|&bin| segments.bin_observations(bin))
            .collect();
        decided.push(decide(&engine, &per_bin, s));
    }
    Ok(decided)
}

/// Rebuilds full-FFT-sized segment rows from per-data-bin observation columns (helper
/// for the Oracle path, whose `decode_symbol` indexes by FFT bin).
fn transpose_observations(
    per_bin: &[Vec<Complex>],
    data_bins: &[usize],
    fft_size: usize,
) -> Vec<Vec<Complex>> {
    let num_segments = per_bin.first().map(|o| o.len()).unwrap_or(0);
    let mut rows = vec![vec![Complex::zero(); fft_size]; num_segments];
    for (col, &bin) in data_bins.iter().enumerate() {
        for (j, row) in rows.iter_mut().enumerate() {
            row[bin] = per_bin[col][j];
        }
    }
    rows
}

/// Uncoded subcarrier decision error rate against the transmitted ground truth.
pub fn symbol_error_rate(decisions: &[Vec<Complex>], truth: &[Vec<Complex>], mcs: Mcs) -> f64 {
    let mut errors = 0usize;
    let mut total = 0usize;
    for (rx_sym, tx_sym) in decisions.iter().zip(truth) {
        for (rx_val, tx_val) in rx_sym.iter().zip(tx_sym) {
            let decided = mcs.modulation.nearest_point(*rx_val).0;
            if (decided - *tx_val).norm() > 1e-9 {
                errors += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    }
}

/// Runs a Monte-Carlo packet-success-rate measurement: `packets` victim frames are
/// generated, each rendered through `scenario` and decoded by every receiver in
/// `receivers`. Returns the packet success rate (in percent, as the paper plots it) per
/// receiver, in the same order.
///
/// Packets are distributed over worker threads; each packet derives a deterministic RNG
/// from `config.seed` and its index, so results do not depend on scheduling.
pub fn packet_success_rate(
    params: &OfdmParams,
    mcs: Mcs,
    scenario: &Scenario,
    receivers: &[ReceiverKind],
    config: &MonteCarloConfig,
) -> Result<Vec<f64>> {
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(config.packets.max(1));
    let successes = parking_lot::Mutex::new(vec![0usize; receivers.len()]);
    let first_error: parking_lot::Mutex<Option<ofdmphy::PhyError>> =
        parking_lot::Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for worker in 0..num_threads {
            let successes = &successes;
            let first_error = &first_error;
            let receivers = &receivers;
            scope.spawn(move |_| {
                let mut local = vec![0usize; receivers.len()];
                let mut packet = worker;
                while packet < config.packets {
                    let mut rng =
                        rand::rngs::StdRng::seed_from_u64(config.seed ^ (packet as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    let mut run = || -> Result<Vec<bool>> {
                        let tx = Transmitter::new(params.clone());
                        let payload: Vec<u8> =
                            (0..config.payload_len).map(|_| rng.gen()).collect();
                        let seed = rng.gen_range(1..=127u8);
                        let frame = tx.build_frame(&payload, mcs, seed)?;
                        let output = scenario.render(&mut rng, params, &frame.samples)?;
                        receivers
                            .iter()
                            .map(|kind| Ok(decode_packet(kind, params, &frame, &output)?.success))
                            .collect()
                    };
                    match run() {
                        Ok(oks) => {
                            for (i, ok) in oks.iter().enumerate() {
                                if *ok {
                                    local[i] += 1;
                                }
                            }
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                    packet += num_threads;
                }
                let mut global = successes.lock();
                for (g, l) in global.iter_mut().zip(&local) {
                    *g += l;
                }
            });
        }
    })
    .expect("worker thread panicked");

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    let totals = successes.into_inner();
    Ok(totals
        .into_iter()
        .map(|s| 100.0 * s as f64 / config.packets.max(1) as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::modulation::Modulation;

    fn mcs() -> Mcs {
        Mcs::new(Modulation::Qpsk, CodeRate::Half)
    }

    fn small_config() -> MonteCarloConfig {
        MonteCarloConfig {
            packets: 6,
            payload_len: 60,
            seed: 42,
        }
    }

    #[test]
    fn receiver_labels_are_descriptive() {
        assert_eq!(ReceiverKind::Standard.label(), "Standard");
        assert!(ReceiverKind::CpRecycle(CpRecycleConfig::default())
            .label()
            .contains("P=16"));
        assert!(ReceiverKind::Naive { num_segments: 5 }.label().contains("Naive"));
        assert!(ReceiverKind::Oracle { num_segments: 9 }.label().contains("Oracle"));
    }

    #[test]
    fn clean_channel_every_receiver_achieves_full_psr() {
        let params = OfdmParams::ieee80211ag();
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
            ReceiverKind::Naive { num_segments: 8 },
            ReceiverKind::Oracle { num_segments: 8 },
        ];
        let psr = packet_success_rate(
            &params,
            mcs(),
            &Scenario::Clean { snr_db: 30.0 },
            &receivers,
            &small_config(),
        )
        .unwrap();
        assert_eq!(psr.len(), 4);
        for (p, r) in psr.iter().zip(&receivers) {
            assert_eq!(*p, 100.0, "{}", r.label());
        }
    }

    #[test]
    fn strong_cochannel_interference_breaks_the_standard_receiver() {
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Cci(CciScenario {
            sir_db: -10.0,
            ..Default::default()
        });
        let psr = packet_success_rate(
            &params,
            mcs(),
            &scenario,
            &[ReceiverKind::Standard],
            &small_config(),
        )
        .unwrap();
        assert_eq!(psr[0], 0.0);
    }

    #[test]
    fn cprecycle_outperforms_standard_under_adjacent_channel_interference() {
        // The headline packet-level comparison on the ACI scenario with a small guard
        // band and strong interferer: the standard receiver loses most packets while
        // CPRecycle recovers a clear majority.
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -14.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let receivers = vec![
            ReceiverKind::Standard,
            ReceiverKind::CpRecycle(CpRecycleConfig::default()),
        ];
        let config = MonteCarloConfig {
            packets: 10,
            payload_len: 60,
            seed: 7,
        };
        let psr = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        // The simulated link shows a consistent but smaller SIR shift than the paper's
        // over-the-air testbed (see EXPERIMENTS.md); at this operating point CPRecycle
        // recovers a clear majority of packets while the standard receiver is already
        // losing a large fraction.
        assert!(
            psr[1] >= psr[0] + 10.0,
            "CPRecycle PSR {} should clearly exceed standard PSR {}",
            psr[1],
            psr[0]
        );
        assert!(psr[1] >= 70.0, "CPRecycle PSR {} too low", psr[1]);
    }

    #[test]
    fn oracle_upper_bounds_the_naive_decoder_under_aci() {
        let params = OfdmParams::ieee80211ag();
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -20.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let receivers = vec![
            ReceiverKind::Naive { num_segments: 16 },
            ReceiverKind::Oracle { num_segments: 16 },
        ];
        let config = MonteCarloConfig {
            packets: 6,
            payload_len: 60,
            seed: 11,
        };
        let psr = packet_success_rate(&params, mcs(), &scenario, &receivers, &config).unwrap();
        assert!(
            psr[1] >= psr[0],
            "Oracle PSR {} must be at least the naive PSR {}",
            psr[1],
            psr[0]
        );
    }
}
