//! The office-building interfering-neighbors model (paper Fig. 13).
//!
//! The paper measures RSSI between 40 access points deployed over the five floors of an
//! office building (glass walls, large atrium) and counts, for each AP, how many other
//! APs exceed the interference threshold. CPRecycle tolerates ~15 dB more co-channel
//! interference (Fig. 11), which is modelled as a 15 dB reduction of the effective
//! threshold — shifting the whole CDF of neighbor counts to the left.
//!
//! The real building survey is not available, so this module builds a synthetic but
//! structurally similar building: five floors, eight APs per floor laid out on a grid,
//! log-distance path loss with shadowing and per-floor penetration loss.

use rand::Rng;
use rfdsp::stats::EmpiricalCdf;
use serde::{Deserialize, Serialize};
use wirelesschan::pathloss::{received_power_dbm, LogDistanceModel, PenetrationLoss};

/// Synthetic office-building deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildingModel {
    /// Number of floors (the paper's building has five).
    pub floors: usize,
    /// Access points per floor ("mostly the same place for access points in each
    /// floor") — 8 per floor gives the paper's 40 APs.
    pub aps_per_floor: usize,
    /// Floor plate dimensions in metres (x, y).
    pub floor_size_m: (f64, f64),
    /// Access-point transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Interference threshold for a standard receiver, in dBm (energy-detection level).
    pub standard_threshold_dbm: f64,
    /// Additional interference tolerance provided by CPRecycle, in dB (derived from the
    /// co-channel results, ≈ 15 dB).
    pub cprecycle_gain_db: f64,
}

impl Default for BuildingModel {
    fn default() -> Self {
        BuildingModel {
            floors: 5,
            aps_per_floor: 8,
            floor_size_m: (60.0, 40.0),
            tx_power_dbm: 20.0,
            standard_threshold_dbm: -82.0,
            cprecycle_gain_db: 15.0,
        }
    }
}

/// Per-receiver neighbor-count distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborCounts {
    /// Number of interfering neighbors per AP with a standard receiver.
    pub standard: Vec<usize>,
    /// Number of interfering neighbors per AP with a CPRecycle receiver.
    pub cprecycle: Vec<usize>,
}

impl NeighborCounts {
    /// Empirical CDF points `(count, F(count))` for the standard receiver.
    pub fn standard_cdf(&self) -> Vec<(f64, f64)> {
        cdf_points(&self.standard)
    }

    /// Empirical CDF points `(count, F(count))` for the CPRecycle receiver.
    pub fn cprecycle_cdf(&self) -> Vec<(f64, f64)> {
        cdf_points(&self.cprecycle)
    }
}

fn cdf_points(counts: &[usize]) -> Vec<(f64, f64)> {
    let as_f: Vec<f64> = counts.iter().map(|c| *c as f64).collect();
    EmpiricalCdf::new(&as_f)
        .map(|c| c.curve())
        .unwrap_or_default()
}

/// Places the APs on a jittered grid and counts interfering neighbors under both
/// thresholds.
pub fn simulate_neighbors<R: Rng + ?Sized>(rng: &mut R, model: &BuildingModel) -> NeighborCounts {
    let path = LogDistanceModel::indoor_2_4ghz();
    let pen = PenetrationLoss::glass_office();
    // Lay out APs: grid of ceil(sqrt(aps_per_floor)) per axis, jittered.
    let per_axis = (model.aps_per_floor as f64).sqrt().ceil() as usize;
    let mut positions: Vec<(f64, f64, usize)> = Vec::new();
    for floor in 0..model.floors {
        let mut placed = 0;
        'grid: for gx in 0..per_axis {
            for gy in 0..per_axis {
                if placed >= model.aps_per_floor {
                    break 'grid;
                }
                let x = (gx as f64 + 0.5 + 0.3 * (rng.gen::<f64>() - 0.5)) * model.floor_size_m.0
                    / per_axis as f64;
                let y = (gy as f64 + 0.5 + 0.3 * (rng.gen::<f64>() - 0.5)) * model.floor_size_m.1
                    / per_axis as f64;
                positions.push((x, y, floor));
                placed += 1;
            }
        }
    }

    let n = positions.len();
    let mut standard = vec![0usize; n];
    let mut cprecycle = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (xi, yi, fi) = positions[i];
            let (xj, yj, fj) = positions[j];
            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(1.0);
            let floors_crossed = fi.abs_diff(fj) as u32;
            // A couple of interior walls for every 10 m of horizontal separation in a
            // mostly-glass office.
            let walls = (dist / 10.0).floor() as u32;
            let rx_dbm = received_power_dbm(
                rng,
                model.tx_power_dbm,
                &path,
                &pen,
                dist,
                walls,
                floors_crossed,
            );
            if rx_dbm > model.standard_threshold_dbm {
                standard[i] += 1;
            }
            if rx_dbm > model.standard_threshold_dbm + model.cprecycle_gain_db {
                cprecycle[i] += 1;
            }
        }
    }
    NeighborCounts {
        standard,
        cprecycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_building_has_40_aps() {
        let m = BuildingModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let counts = simulate_neighbors(&mut rng, &m);
        assert_eq!(counts.standard.len(), 40);
        assert_eq!(counts.cprecycle.len(), 40);
    }

    #[test]
    fn cprecycle_threshold_shift_reduces_neighbor_counts() {
        let m = BuildingModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let counts = simulate_neighbors(&mut rng, &m);
        let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        let std_avg = avg(&counts.standard);
        let cp_avg = avg(&counts.cprecycle);
        assert!(std_avg > 0.0, "standard receiver should see interferers");
        assert!(
            cp_avg < 0.7 * std_avg,
            "CPRecycle should cut the average neighbor count: {cp_avg} vs {std_avg}"
        );
        // Per-AP the CPRecycle count can never exceed the standard count (higher
        // threshold ⇒ subset).
        for (s, c) in counts.standard.iter().zip(&counts.cprecycle) {
            assert!(c <= s);
        }
    }

    #[test]
    fn cdf_curves_are_monotone_and_end_at_one() {
        let m = BuildingModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let counts = simulate_neighbors(&mut rng, &m);
        for curve in [counts.standard_cdf(), counts.cprecycle_cdf()] {
            assert!(!curve.is_empty());
            for w in curve.windows(2) {
                assert!(w[1].0 >= w[0].0);
                assert!(w[1].1 >= w[0].1);
            }
            assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_gain_gives_identical_distributions() {
        let m = BuildingModel {
            cprecycle_gain_db: 0.0,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let counts = simulate_neighbors(&mut rng, &m);
        assert_eq!(counts.standard, counts.cprecycle);
    }
}
