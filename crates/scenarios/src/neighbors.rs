//! The office-building interfering-neighbors model (paper Fig. 13).
//!
//! The paper measures RSSI between 40 access points deployed over the five floors of an
//! office building (glass walls, large atrium) and counts, for each AP, how many other
//! APs exceed the interference threshold. CPRecycle tolerates ~15 dB more co-channel
//! interference (Fig. 11), which is modelled as a 15 dB reduction of the effective
//! threshold — shifting the whole CDF of neighbor counts to the left.
//!
//! The real building survey is not available, so this module builds a synthetic but
//! structurally similar building: five floors, eight APs per floor laid out on a grid,
//! log-distance path loss with shadowing and per-floor penetration loss.

use cprecycle_engine::{
    run_campaign, CampaignConfig, CampaignPoint, CampaignResult, EngineError, PointResult,
    RunOptions, TrialOutcome, TrialRecord,
};
use rand::Rng;
use rfdsp::stats::EmpiricalCdf;
use wirelesschan::pathloss::{received_power_dbm, LogDistanceModel, PenetrationLoss};

/// Synthetic office-building deployment.
#[derive(Debug, Clone)]
pub struct BuildingModel {
    /// Number of floors (the paper's building has five).
    pub floors: usize,
    /// Access points per floor ("mostly the same place for access points in each
    /// floor") — 8 per floor gives the paper's 40 APs.
    pub aps_per_floor: usize,
    /// Floor plate dimensions in metres (x, y).
    pub floor_size_m: (f64, f64),
    /// Access-point transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Interference threshold for a standard receiver, in dBm (energy-detection level).
    pub standard_threshold_dbm: f64,
    /// Additional interference tolerance provided by CPRecycle, in dB (derived from the
    /// co-channel results, ≈ 15 dB).
    pub cprecycle_gain_db: f64,
}

impl Default for BuildingModel {
    fn default() -> Self {
        BuildingModel {
            floors: 5,
            aps_per_floor: 8,
            floor_size_m: (60.0, 40.0),
            tx_power_dbm: 20.0,
            standard_threshold_dbm: -82.0,
            cprecycle_gain_db: 15.0,
        }
    }
}

/// Per-receiver neighbor-count distributions.
#[derive(Debug, Clone)]
pub struct NeighborCounts {
    /// Number of interfering neighbors per AP with a standard receiver.
    pub standard: Vec<usize>,
    /// Number of interfering neighbors per AP with a CPRecycle receiver.
    pub cprecycle: Vec<usize>,
}

impl NeighborCounts {
    /// Empirical CDF points `(count, F(count))` for the standard receiver.
    pub fn standard_cdf(&self) -> Vec<(f64, f64)> {
        cdf_points(&self.standard)
    }

    /// Empirical CDF points `(count, F(count))` for the CPRecycle receiver.
    pub fn cprecycle_cdf(&self) -> Vec<(f64, f64)> {
        cdf_points(&self.cprecycle)
    }
}

fn cdf_points(counts: &[usize]) -> Vec<(f64, f64)> {
    let as_f: Vec<f64> = counts.iter().map(|c| *c as f64).collect();
    EmpiricalCdf::new(&as_f)
        .map(|c| c.curve())
        .unwrap_or_default()
}

/// Places the APs on a jittered grid and counts interfering neighbors under both
/// thresholds.
pub fn simulate_neighbors<R: Rng + ?Sized>(rng: &mut R, model: &BuildingModel) -> NeighborCounts {
    let path = LogDistanceModel::indoor_2_4ghz();
    let pen = PenetrationLoss::glass_office();
    // Lay out APs: grid of ceil(sqrt(aps_per_floor)) per axis, jittered.
    let per_axis = (model.aps_per_floor as f64).sqrt().ceil() as usize;
    let mut positions: Vec<(f64, f64, usize)> = Vec::new();
    for floor in 0..model.floors {
        let mut placed = 0;
        'grid: for gx in 0..per_axis {
            for gy in 0..per_axis {
                if placed >= model.aps_per_floor {
                    break 'grid;
                }
                let x = (gx as f64 + 0.5 + 0.3 * (rng.gen::<f64>() - 0.5)) * model.floor_size_m.0
                    / per_axis as f64;
                let y = (gy as f64 + 0.5 + 0.3 * (rng.gen::<f64>() - 0.5)) * model.floor_size_m.1
                    / per_axis as f64;
                positions.push((x, y, floor));
                placed += 1;
            }
        }
    }

    let n = positions.len();
    let mut standard = vec![0usize; n];
    let mut cprecycle = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (xi, yi, fi) = positions[i];
            let (xj, yj, fj) = positions[j];
            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(1.0);
            let floors_crossed = fi.abs_diff(fj) as u32;
            // A couple of interior walls for every 10 m of horizontal separation in a
            // mostly-glass office.
            let walls = (dist / 10.0).floor() as u32;
            let rx_dbm = received_power_dbm(
                rng,
                model.tx_power_dbm,
                &path,
                &pen,
                dist,
                walls,
                floors_crossed,
            );
            if rx_dbm > model.standard_threshold_dbm {
                standard[i] += 1;
            }
            if rx_dbm > model.standard_threshold_dbm + model.cprecycle_gain_db {
                cprecycle[i] += 1;
            }
        }
    }
    NeighborCounts {
        standard,
        cprecycle,
    }
}

/// A building model as an engine grid point: each trial is one independent building
/// realization, and the per-AP neighbor counts flow through the tallies' auxiliary
/// sample streams (arm 0 = Standard, arm 1 = CPRecycle).
#[derive(Debug, Clone)]
pub struct NeighborPoint {
    /// The synthetic building deployment to realize.
    pub model: BuildingModel,
}

impl CampaignPoint for NeighborPoint {
    fn key(&self) -> String {
        format!("neighbors;{:?}", self.model)
    }

    fn label(&self) -> String {
        format!(
            "{} floors × {} APs",
            self.model.floors, self.model.aps_per_floor
        )
    }

    fn arm_labels(&self) -> Vec<String> {
        vec!["Standard".into(), "CPRecycle".into()]
    }
}

/// Executes one neighbor-survey trial: realize the building once, count interfering
/// neighbors under both thresholds.
pub fn run_neighbor_trial(model: &BuildingModel, rng: &mut rand::rngs::StdRng) -> TrialRecord {
    let counts = simulate_neighbors(rng, model);
    let to_outcome = |counts: &[usize]| TrialOutcome {
        success: true,
        metric: counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64,
        samples: counts.iter().map(|c| *c as f64).collect(),
    };
    TrialRecord {
        arms: vec![to_outcome(&counts.standard), to_outcome(&counts.cprecycle)],
    }
}

/// Runs the Fig. 13 survey as an engine campaign: `config.trials_per_point`
/// independent building realizations, parallelised and checkpointable like any other
/// campaign.
pub fn run_neighbor_campaign(
    config: &CampaignConfig,
    model: &BuildingModel,
    options: &RunOptions<'_>,
) -> Result<CampaignResult, EngineError> {
    let points = [NeighborPoint {
        model: model.clone(),
    }];
    run_campaign(
        config,
        &points,
        || (),
        |_state, point, _pi, _ti, rng| -> Result<TrialRecord, EngineError> {
            Ok(run_neighbor_trial(&point.model, rng))
        },
        options,
    )
}

/// Rebuilds pooled neighbor-count distributions from a neighbor campaign's point
/// result (the inverse of [`run_neighbor_trial`]'s sample encoding).
pub fn counts_from_campaign(point: &PointResult) -> NeighborCounts {
    let to_counts = |samples: &[f64]| samples.iter().map(|s| *s as usize).collect();
    NeighborCounts {
        standard: to_counts(&point.arms[0].samples),
        cprecycle: to_counts(&point.arms[1].samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_building_has_40_aps() {
        let m = BuildingModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let counts = simulate_neighbors(&mut rng, &m);
        assert_eq!(counts.standard.len(), 40);
        assert_eq!(counts.cprecycle.len(), 40);
    }

    #[test]
    fn cprecycle_threshold_shift_reduces_neighbor_counts() {
        let m = BuildingModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let counts = simulate_neighbors(&mut rng, &m);
        let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        let std_avg = avg(&counts.standard);
        let cp_avg = avg(&counts.cprecycle);
        assert!(std_avg > 0.0, "standard receiver should see interferers");
        assert!(
            cp_avg < 0.7 * std_avg,
            "CPRecycle should cut the average neighbor count: {cp_avg} vs {std_avg}"
        );
        // Per-AP the CPRecycle count can never exceed the standard count (higher
        // threshold ⇒ subset).
        for (s, c) in counts.standard.iter().zip(&counts.cprecycle) {
            assert!(c <= s);
        }
    }

    #[test]
    fn cdf_curves_are_monotone_and_end_at_one() {
        let m = BuildingModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let counts = simulate_neighbors(&mut rng, &m);
        for curve in [counts.standard_cdf(), counts.cprecycle_cdf()] {
            assert!(!curve.is_empty());
            for w in curve.windows(2) {
                assert!(w[1].0 >= w[0].0);
                assert!(w[1].1 >= w[0].1);
            }
            assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn neighbor_campaign_pools_realizations_deterministically() {
        let config = CampaignConfig::new("neighbors-test", 5).trials(3);
        let model = BuildingModel::default();
        let serial =
            run_neighbor_campaign(&config.clone().threads(1), &model, &RunOptions::default())
                .unwrap();
        let parallel =
            run_neighbor_campaign(&config.threads(4), &model, &RunOptions::default()).unwrap();
        assert_eq!(serial.deterministic_view(), parallel.deterministic_view());
        let counts = counts_from_campaign(&serial.points[0]);
        // 3 realizations × 40 APs pooled per arm.
        assert_eq!(counts.standard.len(), 120);
        assert_eq!(counts.cprecycle.len(), 120);
        for (s, c) in counts.standard.iter().zip(&counts.cprecycle) {
            assert!(c <= s, "threshold shift can only remove neighbors");
        }
    }

    #[test]
    fn zero_gain_gives_identical_distributions() {
        let m = BuildingModel {
            cprecycle_gain_db: 0.0,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let counts = simulate_neighbors(&mut rng, &m);
        assert_eq!(counts.standard, counts.cprecycle);
    }
}
