//! Plain-text rendering of experiment results.
//!
//! Every figure driver returns an [`ExperimentResult`] — a set of labelled `(x, y)`
//! series plus metadata — which the `cprecycle-bench` binaries print as aligned text
//! tables (and optionally dump as JSON for plotting). The `examples/` binaries route
//! their output through the same machinery via [`ExampleReport`], which can also dump
//! an [`obs::MetricsSnapshot`] when `CPRECYCLE_METRICS` points at a file.

use cpjson::{object, FromJson, ToJson, Value};
use obs::MetricsSnapshot;

/// One labelled data series (a curve in a paper figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. "16-QAM 1/2, with CPRecycle".
    pub label: String,
    /// X values (SIR in dB, guard band in MHz, segment count, …).
    pub x: Vec<f64>,
    /// Y values (packet success rate in %, interference power in dB, CDF, …).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series, checking that `x` and `y` have equal lengths.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series axes must have equal lengths");
        Series {
            label: label.into(),
            x,
            y,
        }
    }
}

impl ToJson for Series {
    fn to_json(&self) -> Value {
        object(vec![
            ("label", self.label.to_json()),
            ("x", self.x.to_json()),
            ("y", self.y.to_json()),
        ])
    }
}

impl FromJson for Series {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        Ok(Series {
            label: value.field_as("label")?,
            x: value.field_as("x")?,
            y: value.field_as("y")?,
        })
    }
}

/// A complete experiment result (one paper table or figure).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Identifier matching the paper ("Figure 8", "Table 1", …).
    pub id: String,
    /// Short description of what is being measured.
    pub description: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
}

impl ExperimentResult {
    /// Renders the result as an aligned text table: one row per x value, one column per
    /// series — the same rows/columns the paper's figures plot.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.description));
        if self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        // Collect the union of x values preserving order of first appearance.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &x in &s.x {
                if !xs.iter().any(|v| (*v - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        out.push_str(&format!("{:>14}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" | {:>28}", s.label));
        }
        out.push('\n');
        out.push_str(&"-".repeat(14 + self.series.len() * 31));
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x:>14.3}"));
            for s in &self.series {
                let y =
                    s.x.iter()
                        .position(|v| (*v - x).abs() < 1e-9)
                        .map(|i| s.y[i]);
                match y {
                    Some(y) => out.push_str(&format!(" | {y:>28.3}")),
                    None => out.push_str(&format!(" | {:>28}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("({})\n", self.y_label));
        out
    }

    /// Serialises the result as pretty JSON (for downstream plotting).
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parses a result previously serialised with [`ExperimentResult::to_json`].
    pub fn from_json_str(text: &str) -> cpjson::Result<Self> {
        FromJson::from_json(&Value::parse(text)?)
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Value {
        object(vec![
            ("id", self.id.to_json()),
            ("description", self.description.to_json()),
            ("x_label", self.x_label.to_json()),
            ("y_label", self.y_label.to_json()),
            ("series", self.series.to_json()),
        ])
    }
}

impl FromJson for ExperimentResult {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        Ok(ExperimentResult {
            id: value.field_as("id")?,
            description: value.field_as("description")?,
            x_label: value.field_as("x_label")?,
            y_label: value.field_as("y_label")?,
            series: value.field_as("series")?,
        })
    }
}

/// Shared result reporting for the `examples/` binaries.
///
/// An example builds one report — a titled [`ExperimentResult`] table plus free-form
/// note lines — and calls [`ExampleReport::emit`] once at the end. That keeps every
/// example's output shape consistent and gives each one metrics export for free: when
/// the `CPRECYCLE_METRICS` environment variable names a path, the snapshot passed to
/// `emit` is written there as pretty `cpjson` (the same [`MetricsSnapshot`] format
/// `campaign run --metrics` produces).
#[derive(Debug, Clone)]
pub struct ExampleReport {
    /// The tabular part of the report; examples without a sweep leave `series` empty
    /// and the table is skipped.
    pub result: ExperimentResult,
    /// Free-form summary lines printed after the table.
    pub notes: Vec<String>,
}

impl ExampleReport {
    /// A new report with no series and no notes yet.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExampleReport {
            result: ExperimentResult {
                id: id.into(),
                description: description.into(),
                x_label: x_label.into(),
                y_label: y_label.into(),
                series: Vec::new(),
            },
            notes: Vec::new(),
        }
    }

    /// Appends a measured series (one table column).
    pub fn push_series(&mut self, series: Series) {
        self.result.series.push(series);
    }

    /// Appends a free-form summary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders the report: the experiment table (when any series exist, otherwise
    /// just the heading) followed by the note lines.
    pub fn to_text(&self) -> String {
        let mut out = if self.result.series.is_empty() {
            format!("# {} — {}\n", self.result.id, self.result.description)
        } else {
            self.result.to_table()
        };
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Prints the report to stdout and, when the `CPRECYCLE_METRICS` environment
    /// variable names a path, writes `metrics` there as pretty `cpjson`.
    pub fn emit(&self, metrics: Option<&MetricsSnapshot>) {
        print!("{}", self.to_text());
        if let Some(snapshot) = metrics {
            if let Some(path) = std::env::var_os("CPRECYCLE_METRICS") {
                match std::fs::write(&path, snapshot.to_json_string()) {
                    Ok(()) => println!("(metrics snapshot written to {})", path.to_string_lossy()),
                    Err(e) => eprintln!(
                        "failed to write metrics snapshot to {}: {e}",
                        path.to_string_lossy()
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: "Figure 8".into(),
            description: "PSR vs SIR".into(),
            x_label: "SIR (dB)".into(),
            y_label: "Packet success rate (%)".into(),
            series: vec![
                Series::new("Standard", vec![-10.0, 0.0, 10.0], vec![0.0, 20.0, 95.0]),
                Series::new("CPRecycle", vec![-10.0, 0.0], vec![60.0, 98.0]),
            ],
        }
    }

    #[test]
    fn table_contains_headers_rows_and_missing_markers() {
        let t = sample().to_table();
        assert!(t.contains("Figure 8"));
        assert!(t.contains("Standard"));
        assert!(t.contains("CPRecycle"));
        assert!(t.contains("-10.000"));
        assert!(t.contains("95.000"));
        // The CPRecycle series has no point at x = 10 → a dash appears in that row.
        let row = t.lines().find(|l| l.starts_with("        10.000")).unwrap();
        assert!(row.contains('-'));
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let json = r.to_json();
        let back = ExperimentResult::from_json_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_result_renders() {
        let r = ExperimentResult {
            id: "X".into(),
            description: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(r.to_table().contains("no data"));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_series_lengths_panic() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn example_report_renders_table_and_notes() {
        let mut report = ExampleReport::new("Fig. 8", "PSR vs SIR", "SIR (dB)", "PSR (%)");
        report.push_series(Series::new("Standard", vec![-10.0, 0.0], vec![5.0, 60.0]));
        report.note("Standard collapses below -10 dB");
        let text = report.to_text();
        assert!(text.contains("Fig. 8"));
        assert!(text.contains("Standard"));
        assert!(text.ends_with("Standard collapses below -10 dB\n"));
    }

    #[test]
    fn example_report_without_series_prints_heading_only() {
        let mut report = ExampleReport::new("Quickstart", "one frame, two receivers", "", "");
        report.note("CRC OK");
        let text = report.to_text();
        assert!(text.starts_with("# Quickstart"));
        assert!(!text.contains("no data"));
        assert!(text.contains("CRC OK"));
    }
}
