//! Multi-station server driver: N bursty stations multiplexed through one
//! [`RxServer`].
//!
//! The stream campaigns ([`crate::stream`]) exercise one session per receiver arm.
//! This module drives the PR 7 server core the way an access point would see it:
//! every station is an independent bursty traffic source (its own frames, gaps and
//! interference realisation, derived from its own seed-tree RNG), and one
//! [`RxServer`] decodes all of them concurrently over a fixed worker pool. A
//! *driver* RNG interleaves the stations' captures chunk-by-chunk in a random but
//! seed-determined order, using the handles' blocking
//! [`cprecycle::SessionHandle::push`] so
//! ingress backpressure paces the driver to the receivers.
//!
//! Determinism: station captures depend only on `(master_seed, station)`, the
//! interleaving depends only on the driver RNG, and the server's per-session
//! outputs are bit-identical to standalone sessions for *any* scheduling — so the
//! whole report is a pure function of `(master_seed, config)`, independent of the
//! worker-thread count. The `one_worker_and_many_workers_produce_identical_reports`
//! test pins exactly that.

use crate::link::Scenario;
use crate::stream::{build_burst, count_in_order_recoveries, StreamArm};
use crate::Result;
use cprecycle::{
    CpRecycleReceiver, FrameReceiver, ModelPersistence, RxServer, ServerConfig, SessionConfig,
    SessionCounters,
};
use cprecycle_engine::trial_rng;
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, StandardReceiver};
use ofdmphy::PhyError;
use rand::Rng;
use rfdsp::Complex;

/// Configuration of one multi-station server run.
#[derive(Debug, Clone)]
pub struct StationsConfig {
    /// OFDM numerology shared by every station's victim link.
    pub params: OfdmParams,
    /// Victim modulation and code rate (SIGNAL fields are decoded over the air).
    pub mcs: Mcs,
    /// Interference environment; rendered independently per station (each station's
    /// RNG draws its own realisation).
    pub scenario: Scenario,
    /// Receiver arm every station's session runs (the server is homogeneous in the
    /// receiver *type*; per-station state is of course independent).
    pub arm: StreamArm,
    /// Number of stations — one [`RxServer`] session each.
    pub stations: usize,
    /// Frames per station's burst.
    pub frames_per_station: usize,
    /// Victim payload length in bytes.
    pub payload_len: usize,
    /// Inclusive range of the random noise gap (in samples) before each frame.
    pub gap_range: (usize, usize),
    /// Inclusive range of the random chunk length (in samples) the driver pushes.
    pub chunk_range: (usize, usize),
    /// Session detection threshold (see [`SessionConfig::detection_threshold`]).
    pub detection_threshold: f64,
    /// Worker threads of the server pool.
    pub threads: usize,
    /// Per-session ingress queue capacity (chunks) — the backpressure bound.
    pub queue_capacity: usize,
}

impl StationsConfig {
    /// A run at the stream campaigns' defaults: QPSK 1/2, 400-byte payloads, 3
    /// frames per station, gaps of 120–400 samples, chunks of 64–480 samples,
    /// threshold 0.45 (see [`crate::stream::StreamPoint::new`] for the rationale),
    /// 2 worker threads, ingress capacity 8 chunks.
    pub fn new(scenario: Scenario, arm: StreamArm, stations: usize) -> Self {
        StationsConfig {
            params: OfdmParams::ieee80211ag(),
            mcs: Mcs::new(Modulation::Qpsk, CodeRate::Half),
            scenario,
            arm,
            stations,
            frames_per_station: 3,
            payload_len: 400,
            gap_range: (120, 400),
            chunk_range: (64, 480),
            detection_threshold: 0.45,
            threads: 2,
            queue_capacity: 8,
        }
    }

    /// Sets the payload length.
    pub fn payload(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }

    /// Sets the number of frames per station.
    pub fn frames(mut self, frames_per_station: usize) -> Self {
        self.frames_per_station = frames_per_station;
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Seed-tree key for one station's RNG: encodes every outcome-relevant
    /// parameter (like [`cprecycle_engine::CampaignPoint::key`]) so reseeding is
    /// stable across display-label changes but sensitive to anything that alters
    /// the waveform.
    fn station_key(&self) -> String {
        format!(
            "stations;fft={};cp={};rate={};mcs={:?};scenario={:?};arm={:?};payload={};frames={};gaps={:?};thr={}",
            self.params.fft_size,
            self.params.cp_len,
            self.params.sample_rate_hz,
            self.mcs,
            self.scenario,
            self.arm,
            self.payload_len,
            self.frames_per_station,
            self.gap_range,
            self.detection_threshold,
        )
    }
}

/// Outcome of one station in a multi-station run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StationReport {
    /// Station index (== the server session id, in `add_session` order).
    pub station: usize,
    /// Frames the station transmitted.
    pub frames_sent: usize,
    /// Frames recovered in order with bit-exact payloads.
    pub frames_recovered: usize,
    /// The session's event-consistent counters after shutdown.
    pub counters: SessionCounters,
    /// Samples the driver pushed into the station's session.
    pub samples_pushed: usize,
}

/// Outcome of a multi-station server run. `PartialEq` on purpose: two runs with the
/// same `(master_seed, config)` must compare equal whatever the thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StationsReport {
    /// One report per station, in station order.
    pub stations: Vec<StationReport>,
}

impl StationsReport {
    /// Total frames transmitted across stations.
    pub fn frames_sent(&self) -> usize {
        self.stations.iter().map(|s| s.frames_sent).sum()
    }

    /// Total frames recovered across stations.
    pub fn frames_recovered(&self) -> usize {
        self.stations.iter().map(|s| s.frames_recovered).sum()
    }

    /// Per-frame packet success rate across all stations (0–1).
    pub fn per_frame_psr(&self) -> f64 {
        let sent = self.frames_sent();
        if sent == 0 {
            return 0.0;
        }
        self.frames_recovered() as f64 / sent as f64
    }

    /// Total samples pushed across stations.
    pub fn samples_total(&self) -> usize {
        self.stations.iter().map(|s| s.samples_pushed).sum()
    }
}

/// Runs one multi-station server campaign: build every station's capture, decode
/// them all through one [`RxServer`], report per-station recovery and counters.
pub fn run_stations(master_seed: u64, cfg: &StationsConfig) -> Result<StationsReport> {
    match &cfg.arm {
        StreamArm::Standard => drive(master_seed, cfg, ModelPersistence::PerFrame, |params| {
            StandardReceiver::new(params)
        }),
        StreamArm::CpRecycle {
            config,
            persistence,
        } => {
            let (config, persistence) = (*config, *persistence);
            drive(master_seed, cfg, persistence, move |params| {
                CpRecycleReceiver::new(params, config)
            })
        }
    }
}

fn push_error(e: cprecycle::PushError) -> PhyError {
    PhyError::DecodeFailure(format!("server push failed: {e}"))
}

fn drive<R>(
    master_seed: u64,
    cfg: &StationsConfig,
    persistence: ModelPersistence,
    make_receiver: impl Fn(OfdmParams) -> R,
) -> Result<StationsReport>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
{
    let key = cfg.station_key();
    let tx = Transmitter::new(cfg.params.clone());

    // Per-station captures from per-station seed-tree RNGs: station `s` sees the
    // same waveform whatever the other stations (or the worker count) do.
    let mut captures: Vec<Vec<Complex>> = Vec::with_capacity(cfg.stations);
    let mut expected: Vec<Vec<Vec<u8>>> = Vec::with_capacity(cfg.stations);
    for s in 0..cfg.stations {
        let mut rng = trial_rng(master_seed, &key, s as u64);
        let (payloads, victim) = build_burst(
            &tx,
            cfg.mcs,
            cfg.payload_len,
            cfg.frames_per_station,
            cfg.gap_range,
            &mut rng,
        )?;
        let output = cfg.scenario.render(&mut rng, &cfg.params, &victim)?;
        captures.push(output.received);
        expected.push(payloads);
    }

    // Same head-of-line-stall guard as the stream campaigns.
    let longest_frame = FrameInfo {
        mcs: cfg.mcs,
        psdu_len: cfg.payload_len + 4,
    }
    .frame_sample_len(&cfg.params);
    let session_config = SessionConfig {
        persistence,
        detection_threshold: cfg.detection_threshold,
        correct_cfo: false,
        max_frame_samples: Some(longest_frame + 512),
    };

    let server: RxServer<R> = RxServer::new(ServerConfig {
        threads: cfg.threads.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        ..Default::default()
    });
    let handles: Vec<_> = (0..cfg.stations)
        .map(|_| server.add_session(make_receiver(cfg.params.clone()), session_config))
        .collect();

    // Interleave the captures in a driver-RNG-determined order. The index
    // `cfg.stations` cannot collide with any station RNG (stations use 0..N).
    let mut driver = trial_rng(master_seed, &key, cfg.stations as u64);
    let (chunk_lo, chunk_hi) = cfg.chunk_range;
    let mut offsets = vec![0usize; cfg.stations];
    let mut live: Vec<usize> = (0..cfg.stations).collect();
    while !live.is_empty() {
        let pick = driver.gen_range(0..live.len());
        let s = live[pick];
        let len = driver.gen_range(chunk_lo.max(1)..=chunk_hi.max(1));
        let lo = offsets[s];
        let hi = (lo + len).min(captures[s].len());
        handles[s].push(&captures[s][lo..hi]).map_err(push_error)?;
        offsets[s] = hi;
        if hi == captures[s].len() {
            handles[s].flush().map_err(push_error)?;
            live.swap_remove(pick);
        }
    }
    server.shutdown();

    let mut stations = Vec::with_capacity(cfg.stations);
    for (s, handle) in handles.iter().enumerate() {
        if let Some(err) = handle.take_error() {
            return Err(err);
        }
        let samples_pushed = handle.samples_pushed();
        let counters = handle.counters();
        let recovered = count_in_order_recoveries(handle.drain_events(), &expected[s]);
        stations.push(StationReport {
            station: s,
            frames_sent: cfg.frames_per_station,
            frames_recovered: recovered,
            counters,
            samples_pushed,
        });
    }
    Ok(StationsReport { stations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_config(arm: StreamArm, stations: usize) -> StationsConfig {
        StationsConfig::new(Scenario::Clean { snr_db: 28.0 }, arm, stations)
            .payload(60)
            .frames(2)
    }

    #[test]
    fn clean_stations_recover_every_frame() {
        let cfg = clean_config(StreamArm::Standard, 3).threads(2);
        let report = run_stations(0xACE5, &cfg).unwrap();
        assert_eq!(report.stations.len(), 3);
        for station in &report.stations {
            assert_eq!(
                station.frames_recovered, station.frames_sent,
                "station {} lost frames: {:?}",
                station.station, station.counters
            );
            assert!(station.samples_pushed > 0);
        }
        assert_eq!(report.per_frame_psr(), 1.0);
        assert_eq!(report.frames_sent(), 6);
    }

    #[test]
    fn one_worker_and_many_workers_produce_identical_reports() {
        // The server's determinism contract surfaced at the campaign layer: the
        // report (recoveries, counters, sample tallies) is a pure function of
        // (master_seed, config) — the pool size must not be observable.
        let seed = 0xBEE5;
        let serial = run_stations(seed, &clean_config(StreamArm::Standard, 4).threads(1)).unwrap();
        let parallel =
            run_stations(seed, &clean_config(StreamArm::Standard, 4).threads(4)).unwrap();
        assert_eq!(serial, parallel);
        // And re-running the same configuration reproduces the same report.
        let again = run_stations(seed, &clean_config(StreamArm::Standard, 4).threads(4)).unwrap();
        assert_eq!(parallel, again);
    }

    #[test]
    fn rolling_cprecycle_stations_are_thread_count_invariant() {
        // Rolling persistence carries model state across a station's frames — the
        // hardest case for scheduling determinism, because any cross-session
        // leakage or reordering would change later frames' decodes.
        let seed = 0xD00D;
        let arm = StreamArm::cprecycle(ModelPersistence::Rolling);
        let serial = run_stations(seed, &clean_config(arm.clone(), 2).threads(1)).unwrap();
        let parallel = run_stations(seed, &clean_config(arm, 2).threads(3)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.frames_recovered(), serial.frames_sent());
    }

    #[test]
    fn station_key_is_sensitive_to_waveform_parameters_only() {
        let a = clean_config(StreamArm::Standard, 3);
        let b = a.clone().payload(61);
        assert_ne!(a.station_key(), b.station_key());
        // Threads and queue capacity must NOT reseed stations: the same traffic
        // must be replayable at any pool size.
        let c = a.clone().threads(7);
        assert_eq!(a.station_key(), c.station_key());
    }
}
