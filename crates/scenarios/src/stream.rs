//! Bursty-traffic streaming campaigns: back-to-back frames at random gaps decoded
//! through [`RxSession`]s, at campaign scale.
//!
//! The link campaigns ([`crate::link`]) isolate the decision math with genie timing —
//! one frame, known start, known MCS. This module exercises the part of the receive
//! chain the paper's deployment story actually depends on: a *stream* of frames at
//! random gaps, detected by the incremental synchroniser, SIGNAL fields decoded over
//! the air, and (optionally) the interference model rolled forward across frames via
//! [`ModelPersistence::Rolling`] — PR 4's incremental dirty-bin
//! `InterferenceModel::update()` exercised by the engine at campaign scale.
//!
//! A *stream trial* builds `frames_per_trial` victim frames with distinct random
//! payloads, lays them out with random inter-frame gaps, renders one interference
//! scenario over the whole capture, and pushes the result chunk-by-chunk through one
//! session per arm. Per-frame recovery is counted **in order**: a frame counts as
//! recovered only if its payload is decoded after every earlier recovered frame (a
//! receiver cannot reorder a radio stream). The trial reports
//! `success = all frames recovered` (the aggregate PSR) and
//! `metric = recovered fraction` (whose campaign mean is the per-frame PSR).
//!
//! Power-normalisation note: the scenario's SIR/SNR are referenced to the average
//! power of the whole bursty capture (gaps included), so the effective per-frame SIR
//! is slightly harsher than the nominal figure by the duty-cycle factor; grids keep
//! gaps small relative to frames so the two stay within ~1 dB.

use crate::figures::FigureScale;
use crate::link::Scenario;
use crate::report::{ExperimentResult, Series};
use crate::Result;
use cprecycle::{
    CpRecycleConfig, CpRecycleReceiver, ModelPersistence, RxEvent, RxSession, SessionConfig,
};
use cprecycle_engine::{
    run_campaign, CampaignConfig, CampaignPoint, CampaignResult, EngineError, RunOptions,
    TrialOutcome, TrialRecord,
};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, StandardReceiver};
use rand::rngs::StdRng;
use rand::Rng;
use rfdsp::Complex;
use std::collections::HashMap;

/// One receiver arm of a stream campaign: which receiver decodes the stream, and —
/// for CPRecycle — how its interference model persists across the stream's frames.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamArm {
    /// The conventional receiver behind a session.
    Standard,
    /// The CPRecycle receiver behind a session.
    CpRecycle {
        /// Receiver configuration (decision stage, `P`, estimator backend, …).
        config: CpRecycleConfig,
        /// Cross-frame model persistence ([`ModelPersistence::Rolling`] is the first
        /// real consumer of the incremental model update).
        persistence: ModelPersistence,
    },
}

impl StreamArm {
    /// A CPRecycle arm with the default configuration and the given persistence.
    pub fn cprecycle(persistence: ModelPersistence) -> Self {
        StreamArm::CpRecycle {
            config: CpRecycleConfig::default(),
            persistence,
        }
    }

    /// Label used in reports and campaign tallies; names the receiver, decoder and —
    /// for model-scoring CPRecycle arms — the persistence policy.
    pub fn label(&self) -> String {
        match self {
            StreamArm::Standard => "Standard".into(),
            StreamArm::CpRecycle {
                config,
                persistence,
            } => {
                if config.decision.needs_interference_model() {
                    format!(
                        "CPRecycle({}, P={}, {}, {})",
                        config.decision.label(),
                        config.num_segments,
                        config.model.label(),
                        persistence.label()
                    )
                } else {
                    format!(
                        "CPRecycle({}, P={})",
                        config.decision.label(),
                        config.num_segments
                    )
                }
            }
        }
    }
}

/// One operating point of a stream campaign.
#[derive(Debug, Clone)]
pub struct StreamPoint {
    /// Display label for reports.
    pub label: String,
    /// OFDM numerology of the victim link.
    pub params: OfdmParams,
    /// Victim modulation and code rate (frames advertise it in their SIGNAL field —
    /// sessions decode over the air, there is no genie metadata).
    pub mcs: Mcs,
    /// Interference environment, rendered over the whole bursty capture.
    pub scenario: Scenario,
    /// Receiver arms; each trial streams the same capture through every one.
    pub arms: Vec<StreamArm>,
    /// Victim payload length in bytes.
    pub payload_len: usize,
    /// Number of back-to-back frames per trial (≥ 1; the bursty grids use ≥ 3).
    pub frames_per_trial: usize,
    /// Inclusive range of the random noise gap (in samples) before each frame.
    pub gap_range: (usize, usize),
    /// Chunk size (in samples) the capture is pushed with.
    pub chunk_len: usize,
    /// Session detection threshold (see [`SessionConfig::detection_threshold`]).
    pub detection_threshold: f64,
}

impl StreamPoint {
    /// A point at the paper's default numerology: QPSK 1/2, 3 frames of 400 bytes per
    /// trial, gaps of 120–400 samples, 480-sample chunks, threshold 0.45 (asynchronous
    /// interference inflates the Schmidl–Cox energy normaliser, so the batch default
    /// of 0.8 would refuse to detect exactly the frames CPRecycle can save; 0.45
    /// measured best across the grid's SIR range with the session's false-alarm
    /// handling absorbing the extra fires).
    pub fn new(label: impl Into<String>, scenario: Scenario, arms: Vec<StreamArm>) -> Self {
        StreamPoint {
            label: label.into(),
            params: OfdmParams::ieee80211ag(),
            mcs: Mcs::new(Modulation::Qpsk, CodeRate::Half),
            scenario,
            arms,
            payload_len: 400,
            frames_per_trial: 3,
            gap_range: (120, 400),
            chunk_len: 480,
            detection_threshold: 0.45,
        }
    }

    /// Sets the payload length.
    pub fn payload(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }

    /// Sets the number of frames per trial.
    pub fn frames(mut self, frames_per_trial: usize) -> Self {
        self.frames_per_trial = frames_per_trial;
        self
    }
}

impl CampaignPoint for StreamPoint {
    /// Like [`crate::link::LinkPoint`], the key encodes every outcome-relevant
    /// parameter (including the arm set with its persistence policies, the burst
    /// geometry and the chunking) but not the display label.
    fn key(&self) -> String {
        format!(
            "stream;fft={};cp={};rate={};mcs={:?};scenario={:?};arms={:?};payload={};frames={};gaps={:?};chunk={};thr={}",
            self.params.fft_size,
            self.params.cp_len,
            self.params.sample_rate_hz,
            self.mcs,
            self.scenario,
            self.arms,
            self.payload_len,
            self.frames_per_trial,
            self.gap_range,
            self.chunk_len,
            self.detection_threshold,
        )
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn arm_labels(&self) -> Vec<String> {
        self.arms.iter().map(|a| a.label()).collect()
    }
}

/// Worker-local state: transmitters per grid point. Sessions are deliberately *not*
/// cached across trials — a trial's outcome must depend only on its seed-tree RNG,
/// never on which trials the same worker ran before (rolling model state would leak
/// across trials and break the serial≡parallel determinism contract).
#[derive(Default)]
pub struct StreamWorker {
    transmitters: HashMap<String, Transmitter>,
}

impl StreamWorker {
    /// An empty worker cache.
    pub fn new() -> Self {
        StreamWorker::default()
    }
}

/// Builds one bursty victim capture: `frames` frames with distinct random payloads,
/// each preceded by a random gap drawn from `gap_range` (inclusive), plus a trailing
/// pad so the last frame's fine sync and decode never wait on a flush. Returns the
/// payloads (for recovery accounting) and the composite victim samples. Shared by
/// the stream campaigns and the multi-station server driver ([`crate::stations`]).
pub fn build_burst(
    tx: &Transmitter,
    mcs: Mcs,
    payload_len: usize,
    frames: usize,
    gap_range: (usize, usize),
    rng: &mut StdRng,
) -> Result<(Vec<Vec<u8>>, Vec<Complex>)> {
    let (lo, hi) = gap_range;
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(frames);
    let mut victim: Vec<Complex> = Vec::new();
    victim.extend(std::iter::repeat_n(Complex::zero(), rng.gen_range(lo..=hi)));
    for i in 0..frames {
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
        let scramble_seed = rng.gen_range(1..=127u8);
        let frame = tx.build_frame(&payload, mcs, scramble_seed)?;
        payloads.push(payload);
        victim.extend_from_slice(&frame.samples);
        if i + 1 < frames {
            victim.extend(std::iter::repeat_n(Complex::zero(), rng.gen_range(lo..=hi)));
        }
    }
    victim.extend(std::iter::repeat_n(Complex::zero(), hi.max(256)));
    Ok((payloads, victim))
}

/// Counts in-order payload recoveries against the expected burst. A decoded frame is
/// credited against the earliest not-yet-matched expected frame at or after the last
/// match (a receiver cannot reorder a radio stream), so losing one frame mid-burst
/// does not zero credit for the frames recovered after it.
pub fn count_in_order_recoveries(
    events: impl IntoIterator<Item = RxEvent>,
    expected: &[Vec<u8>],
) -> usize {
    let mut recovered = 0usize;
    let mut next = 0usize;
    for event in events {
        if next >= expected.len() {
            break;
        }
        if let RxEvent::FrameDecoded { frame, .. } = event {
            if let Some(payload) = frame.payload.as_deref() {
                if let Some(hit) =
                    (next..expected.len()).find(|&i| expected[i].as_slice() == payload)
                {
                    recovered += 1;
                    next = hit + 1;
                }
            }
        }
    }
    recovered
}

/// Executes one stream trial: build the burst, render the scenario, stream it through
/// one fresh session per arm. Public so trials can be replayed in isolation.
pub fn run_stream_trial(
    worker: &mut StreamWorker,
    point: &StreamPoint,
    rng: &mut StdRng,
) -> Result<TrialRecord> {
    let tx = worker
        .transmitters
        .entry(point.key())
        .or_insert_with(|| Transmitter::new(point.params.clone()));

    let (payloads, victim) = build_burst(
        tx,
        point.mcs,
        point.payload_len,
        point.frames_per_trial,
        point.gap_range,
        rng,
    )?;

    let output = point.scenario.render(rng, &point.params, &victim)?;

    let mut arms = Vec::with_capacity(point.arms.len());
    for arm in &point.arms {
        let recovered = match arm {
            StreamArm::Standard => stream_capture(
                StandardReceiver::new(point.params.clone()),
                point,
                ModelPersistence::PerFrame,
                &output.received,
                &payloads,
            )?,
            StreamArm::CpRecycle {
                config,
                persistence,
            } => stream_capture(
                CpRecycleReceiver::new(point.params.clone(), *config),
                point,
                *persistence,
                &output.received,
                &payloads,
            )?,
        };
        let fraction = recovered as f64 / point.frames_per_trial as f64;
        arms.push(TrialOutcome::new(
            recovered == point.frames_per_trial,
            fraction,
        ));
    }
    Ok(TrialRecord { arms })
}

/// Streams one capture through a fresh session and counts in-order payload matches.
fn stream_capture<R: cprecycle::FrameReceiver>(
    receiver: R,
    point: &StreamPoint,
    persistence: ModelPersistence,
    capture: &[Complex],
    expected: &[Vec<u8>],
) -> Result<usize> {
    // A receiver knows its network's longest legitimate frame; capping there turns
    // parity-fluke SIGNAL lengths (detections on the *interferer's* preambles leak
    // through the channel filter) into false alarms instead of head-of-line stalls.
    let longest_frame = FrameInfo {
        mcs: point.mcs,
        psdu_len: point.payload_len + 4,
    }
    .frame_sample_len(&point.params);
    let mut session = RxSession::with_config(
        receiver,
        SessionConfig {
            persistence,
            detection_threshold: point.detection_threshold,
            correct_cfo: false,
            max_frame_samples: Some(longest_frame + 512),
        },
    );
    for chunk in capture.chunks(point.chunk_len.max(1)) {
        session.push(chunk)?;
    }
    session.flush()?;
    Ok(count_in_order_recoveries(session.drain_events(), expected))
}

/// Runs a stream campaign over `points` with the engine.
pub fn run_stream_campaign(
    config: &CampaignConfig,
    points: &[StreamPoint],
    options: &RunOptions<'_>,
) -> std::result::Result<CampaignResult, EngineError> {
    run_campaign(
        config,
        points,
        StreamWorker::new,
        |worker, point, _point_idx, _trial_idx, rng| run_stream_trial(worker, point, rng),
        options,
    )
}

/// Replays one stream trial of a point in isolation, reproducing exactly what the
/// campaign executor computed for `(master_seed, point, trial_idx)`.
pub fn replay_stream_trial(
    master_seed: u64,
    point: &StreamPoint,
    trial_idx: usize,
) -> Result<TrialRecord> {
    let mut worker = StreamWorker::new();
    let mut rng = cprecycle_engine::trial_rng(master_seed, &point.key(), trial_idx as u64);
    run_stream_trial(&mut worker, point, &mut rng)
}

// ---------------------------------------------------------------------------
// The `fig_stream` grid and driver
// ---------------------------------------------------------------------------

fn stream_sirs(scale: &FigureScale) -> Vec<f64> {
    if scale.coarse {
        vec![-8.0]
    } else {
        vec![-20.0, -14.0, -8.0, -2.0, 4.0]
    }
}

/// The bursty-traffic grid: ≥ 3 back-to-back frames per trial under single-interferer
/// ACI (the fig. 8 overlapping-channel geometry), decoded by the standard receiver
/// and by CPRecycle under both persistence policies — so one engine run sweeps the
/// streaming receive chain and the cross-frame model together.
pub fn stream_grid(scale: &FigureScale) -> Vec<StreamPoint> {
    let arms = vec![
        StreamArm::Standard,
        StreamArm::cprecycle(ModelPersistence::PerFrame),
        StreamArm::cprecycle(ModelPersistence::Rolling),
    ];
    stream_sirs(scale)
        .iter()
        .map(|sir| {
            StreamPoint::new(
                format!("SIR {sir} dB"),
                Scenario::Aci(crate::interference::AciScenario {
                    sir_db: *sir,
                    channel_offset_hz: Some(15e6),
                    ..Default::default()
                }),
                arms.clone(),
            )
            .payload(scale.payload_len)
        })
        .collect()
}

/// Streaming-receiver comparison: aggregate (all-frames) and per-frame packet
/// success rates versus SIR for every stream arm, as one engine campaign over the
/// bursty-traffic grid.
pub fn fig_stream(scale: &FigureScale) -> Result<ExperimentResult> {
    let sirs = stream_sirs(scale);
    let points = stream_grid(scale);
    let result = run_stream_campaign(
        &scale.campaign("stream"),
        &points,
        &crate::telemetry::run_options(),
    )
    .map_err(|e| ofdmphy::PhyError::DecodeFailure(e.to_string()))?;
    let arm_labels: Vec<String> = result.points[0]
        .arms
        .iter()
        .map(|a| a.label.clone())
        .collect();
    let mut aggregate: Vec<Vec<f64>> = vec![Vec::new(); arm_labels.len()];
    let mut per_frame: Vec<Vec<f64>> = vec![Vec::new(); arm_labels.len()];
    for point in &result.points {
        for (i, arm) in point.arms.iter().enumerate() {
            aggregate[i].push(arm.success_percent());
            per_frame[i].push(100.0 * arm.metric_mean());
        }
    }
    let mut series = Vec::new();
    for (i, label) in arm_labels.iter().enumerate() {
        series.push(Series::new(
            format!("{label} — per-frame PSR"),
            sirs.clone(),
            per_frame[i].clone(),
        ));
        series.push(Series::new(
            format!("{label} — all-frames PSR"),
            sirs.clone(),
            aggregate[i].clone(),
        ));
    }
    Ok(ExperimentResult {
        id: "Streaming sessions".into(),
        description: "Per-frame and aggregate PSR vs SIR for bursty traffic (3 frames/trial, \
                      random gaps, single ACI interferer, over-the-air sync + SIGNAL decode)"
            .into(),
        x_label: "Signal to interference ratio (dB)".into(),
        y_label: "Packet success rate (%)".into(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_point(arms: Vec<StreamArm>) -> StreamPoint {
        StreamPoint::new("clean", Scenario::Clean { snr_db: 28.0 }, arms)
            .payload(60)
            .frames(3)
    }

    #[test]
    fn arm_labels_name_receiver_and_persistence() {
        assert_eq!(StreamArm::Standard.label(), "Standard");
        let rolling = StreamArm::cprecycle(ModelPersistence::Rolling).label();
        assert!(rolling.contains("Rolling"), "{rolling}");
        assert!(rolling.contains("Sphere"), "{rolling}");
        let per_frame = StreamArm::cprecycle(ModelPersistence::PerFrame).label();
        assert!(per_frame.contains("PerFrame"), "{per_frame}");
    }

    #[test]
    fn persistence_is_part_of_the_point_key() {
        let a = clean_point(vec![StreamArm::cprecycle(ModelPersistence::PerFrame)]);
        let b = clean_point(vec![StreamArm::cprecycle(ModelPersistence::Rolling)]);
        assert_ne!(a.key(), b.key(), "persistence must affect point identity");
        // Burst geometry is part of the identity too.
        let c = clean_point(vec![StreamArm::Standard]).frames(5);
        let d = clean_point(vec![StreamArm::Standard]);
        assert_ne!(c.key(), d.key());
        // Labels are not.
        let mut e = clean_point(vec![StreamArm::Standard]);
        e.label = "renamed".into();
        assert_eq!(e.key(), d.key());
    }

    #[test]
    fn clean_burst_recovers_every_frame_for_every_arm() {
        // The end-to-end acceptance shape: a bursty campaign (3 back-to-back frames
        // per trial) through the engine, with per-frame PSR reported per arm.
        let point = clean_point(vec![
            StreamArm::Standard,
            StreamArm::cprecycle(ModelPersistence::PerFrame),
            StreamArm::cprecycle(ModelPersistence::Rolling),
        ]);
        let result = run_stream_campaign(
            &CampaignConfig::new("stream-clean", 0xFEED).trials(3),
            std::slice::from_ref(&point),
            &RunOptions::default(),
        )
        .unwrap();
        for arm in &result.points[0].arms {
            assert_eq!(arm.success_percent(), 100.0, "{}", arm.label);
            assert_eq!(arm.metric_mean(), 1.0, "{}", arm.label);
        }
    }

    #[test]
    fn serial_and_parallel_stream_campaigns_are_bit_identical() {
        // Sessions are rebuilt per trial, so rolling model state cannot leak across
        // trials and the engine's determinism contract holds through the whole
        // streaming chain.
        let points = vec![
            clean_point(vec![
                StreamArm::Standard,
                StreamArm::cprecycle(ModelPersistence::Rolling),
            ]),
            StreamPoint::new(
                "cci",
                Scenario::Cci(crate::interference::CciScenario {
                    sir_db: 15.0,
                    ..Default::default()
                }),
                vec![StreamArm::cprecycle(ModelPersistence::Rolling)],
            )
            .payload(60),
        ];
        let serial = run_stream_campaign(
            &CampaignConfig::new("stream-det", 0xBEEF)
                .trials(3)
                .threads(1),
            &points,
            &RunOptions::default(),
        )
        .unwrap();
        let parallel = run_stream_campaign(
            &CampaignConfig::new("stream-det", 0xBEEF)
                .trials(3)
                .threads(4),
            &points,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(serial.deterministic_view(), parallel.deterministic_view());
    }

    #[test]
    fn replaying_a_stream_trial_reproduces_its_outcome() {
        let point = clean_point(vec![StreamArm::cprecycle(ModelPersistence::Rolling)]);
        let seed = 0xABCD;
        let trials = 3;
        let campaign = run_stream_campaign(
            &CampaignConfig::new("stream-replay", seed).trials(trials),
            std::slice::from_ref(&point),
            &RunOptions::default(),
        )
        .unwrap();
        let mut successes = 0usize;
        let mut metric_sum = 0.0f64;
        for t in 0..trials {
            let record = replay_stream_trial(seed, &point, t).unwrap();
            if record.arms[0].success {
                successes += 1;
            }
            metric_sum += record.arms[0].metric;
        }
        let arm = &campaign.points[0].arms[0];
        assert_eq!(arm.successes, successes);
        assert_eq!(arm.metric_sum.to_bits(), metric_sum.to_bits());
    }
}
