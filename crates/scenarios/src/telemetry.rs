//! Process-wide telemetry for the figure drivers.
//!
//! The figure functions in [`crate::figures`] deliberately keep their signatures to
//! `(scale) -> result`; threading a recorder through every one of them (and through
//! `FigureScale`) would churn the whole driver surface for an optional concern. The
//! compromise is one process-global recorder slot: a binary that wants telemetry calls
//! [`install`] before running drivers, every campaign launched without an explicit
//! [`RunOptions::recorder`](cprecycle_engine::RunOptions) reports into it, and the
//! binary reads [`snapshot`] at the end. Binaries that never install pay nothing — the
//! slot stays empty and campaigns run with recording fully compiled out of the hot
//! path.

use obs::{InMemoryRecorder, MetricsSnapshot, Recorder};
use std::sync::OnceLock;

static GLOBAL: OnceLock<InMemoryRecorder> = OnceLock::new();

/// Installs the process-wide recorder (idempotent — the first call wins) and returns
/// it. Campaigns started after this report their executor spans, worker gauges and
/// receive-chain stage timing into it unless given an explicit recorder.
pub fn install() -> &'static InMemoryRecorder {
    GLOBAL.get_or_init(InMemoryRecorder::default)
}

/// The installed recorder, or `None` when [`install`] has never been called.
pub fn installed() -> Option<&'static InMemoryRecorder> {
    GLOBAL.get()
}

/// A snapshot of the installed recorder's state, or `None` when telemetry was never
/// installed.
pub fn snapshot() -> Option<MetricsSnapshot> {
    GLOBAL.get().and_then(|r| r.snapshot())
}

/// Engine run options wired to the installed recorder (every other field default).
/// The figure drivers use this instead of `RunOptions::default()` so an installed
/// telemetry recorder sees their campaigns.
pub fn run_options() -> cprecycle_engine::RunOptions<'static> {
    cprecycle_engine::RunOptions {
        recorder: installed().map(|r| r as &(dyn Recorder + Sync)),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_snapshot_reads_it() {
        // `installed()` may already be set by another test in this process; either
        // way the same instance must come back every time.
        let a = install() as *const InMemoryRecorder;
        let b = install() as *const InMemoryRecorder;
        assert_eq!(a, b);
        install().counter("telemetry_test_ticks", 2);
        let snap = snapshot().expect("installed");
        assert!(snap.counter("telemetry_test_ticks") >= 2);
        assert!(installed().is_some());
    }
}
