//! Oversampled (wideband) signal processing for adjacent-channel scenarios.
//!
//! At the victim's native 20 MS/s complex sampling rate an adjacent 20 MHz channel
//! aliases straight back into the victim band, so adjacent-channel interference cannot
//! be modelled honestly at 1×. These helpers build the composite at `L×` oversampling
//! (the paper's Fig. 1 view of a 45 MHz observation window), then apply the victim
//! receiver's channel-select filter and decimate back to 20 MS/s.

use crate::Result;
use ofdmphy::PhyError;
use rfdsp::filter::FirFilter;
use rfdsp::resample::{downsample, upsample};
use rfdsp::Complex;

/// Interpolates a 20 MS/s waveform to `factor ×` oversampling (zero-stuff + low-pass,
/// amplitude-compensated so the waveform keeps its original scale).
pub fn upsample_interp(x: &[Complex], factor: usize) -> Result<Vec<Complex>> {
    if factor == 0 {
        return Err(PhyError::invalid("factor", "must be at least 1"));
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    let stuffed = upsample(x, factor)?;
    let taps = 16 * factor + 1;
    let filter = FirFilter::lowpass_kaiser(taps, 0.5 / factor as f64 * 0.9, 8.0)?;
    let filtered = filter.filter_same(&stuffed);
    Ok(filtered.iter().map(|v| v.scale(factor as f64)).collect())
}

/// Applies the victim receiver's channel-select low-pass filter (passband ≈ ±9 MHz at
/// the oversampled rate) and decimates back to 20 MS/s.
pub fn channel_select_and_decimate(x: &[Complex], factor: usize) -> Result<Vec<Complex>> {
    if factor == 0 {
        return Err(PhyError::invalid("factor", "must be at least 1"));
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    // Passband edge 9 MHz of the oversampled rate 20·L MS/s.
    let cutoff = 9.0e6 / (20.0e6 * factor as f64);
    let taps = 16 * factor + 1;
    let filter = FirFilter::lowpass_kaiser(taps, cutoff, 8.0)?;
    let filtered = filter.filter_same(x);
    Ok(downsample(&filtered, factor)?)
}

/// Frequency-shifts an oversampled waveform by `offset_hz` given the oversampled rate.
pub fn shift_by_hz(x: &[Complex], offset_hz: f64, sample_rate_hz: f64) -> Vec<Complex> {
    rfdsp::filter::frequency_shift(x, offset_hz / sample_rate_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::frame::{Mcs, Transmitter};
    use ofdmphy::modulation::Modulation;
    use ofdmphy::params::OfdmParams;
    use ofdmphy::rx::{FrameInfo, StandardReceiver};
    use rfdsp::power::{signal_power, welch_psd};

    #[test]
    fn factor_one_is_identity() {
        let x: Vec<Complex> = (0..64).map(|t| Complex::cis(0.2 * t as f64)).collect();
        assert_eq!(upsample_interp(&x, 1).unwrap(), x);
        assert_eq!(channel_select_and_decimate(&x, 1).unwrap(), x);
        assert!(upsample_interp(&x, 0).is_err());
        assert!(channel_select_and_decimate(&x, 0).is_err());
    }

    #[test]
    fn up_then_down_roundtrip_preserves_frame_decodability() {
        // The whole point: a frame pushed through the wideband path with no interferer
        // must still decode, so any packet loss later is attributable to interference.
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let rx = StandardReceiver::new(params);
        let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
        let payload = vec![0x3C; 120];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        for factor in [2usize, 4] {
            let wide = upsample_interp(&frame.samples, factor).unwrap();
            let narrow = channel_select_and_decimate(&wide, factor).unwrap();
            assert_eq!(narrow.len(), frame.samples.len());
            let info = FrameInfo {
                mcs,
                psdu_len: payload.len() + 4,
            };
            let decoded = rx.decode_frame(&narrow, 0, Some(info)).unwrap();
            assert!(decoded.crc_ok, "factor {factor}");
            assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
        }
    }

    #[test]
    fn upsample_preserves_power_and_band_limits() {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params);
        let frame = tx
            .build_frame(
                &[0xAB; 200],
                Mcs::new(Modulation::Qpsk, CodeRate::Half),
                0x11,
            )
            .unwrap();
        let wide = upsample_interp(&frame.samples, 4).unwrap();
        assert_eq!(wide.len(), frame.samples.len() * 4);
        let p_narrow = signal_power(&frame.samples).unwrap();
        let p_wide = signal_power(&wide).unwrap();
        assert!(
            (p_wide - p_narrow).abs() / p_narrow < 0.1,
            "power {p_wide} vs {p_narrow}"
        );
        // The oversampled spectrum must be confined to the central quarter of the band.
        let psd = welch_psd(&wide, 256).unwrap();
        let in_band: f64 = psd[..32].iter().sum::<f64>() + psd[224..].iter().sum::<f64>();
        let total: f64 = psd.iter().sum();
        assert!(
            in_band / total > 0.98,
            "in-band fraction {}",
            in_band / total
        );
    }

    #[test]
    fn adjacent_channel_is_rejected_by_channel_select_filter() {
        // A tone 20 MHz away from the victim centre must be attenuated by the receive
        // filter by tens of dB after decimation.
        let factor = 4usize;
        let fs = 20e6 * factor as f64;
        let n = 8192;
        let tone: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 20e6 / fs * t as f64))
            .collect();
        let out = channel_select_and_decimate(&tone, factor).unwrap();
        let attenuation_db = 10.0
            * (signal_power(&tone).unwrap() / signal_power(&out[100..]).unwrap().max(1e-30))
                .log10();
        assert!(
            attenuation_db > 30.0,
            "attenuation only {attenuation_db} dB"
        );
    }

    #[test]
    fn shift_by_hz_moves_spectrum() {
        let factor = 4;
        let fs = 20e6 * factor as f64;
        let x = vec![Complex::one(); 4096];
        let shifted = shift_by_hz(&x, 10e6, fs);
        let psd = welch_psd(&shifted, 64).unwrap();
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // 10 MHz of an 80 MHz rate = bin 8 of 64.
        assert_eq!(peak, 8);
    }
}
