//! Additive white Gaussian noise at a target SNR.

use crate::{ChannelError, Result};
use rand::Rng;
use rfdsp::noise::GaussianSource;
use rfdsp::power::{db_to_lin, signal_power};
use rfdsp::Complex;

/// An AWGN channel that adds complex white Gaussian noise scaled to achieve a requested
/// signal-to-noise ratio relative to the measured power of the signal passed in, or with
/// an absolute noise variance.
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    gauss: GaussianSource,
}

impl Default for AwgnChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl AwgnChannel {
    /// Creates a new AWGN channel.
    pub fn new() -> Self {
        AwgnChannel {
            gauss: GaussianSource::new(),
        }
    }

    /// Adds noise so that the resulting SNR (signal power / noise power) equals
    /// `snr_db`, measuring the signal power from `signal` itself.
    ///
    /// Returns the noise variance that was applied, which receivers can use as ground
    /// truth when an oracle noise estimate is needed.
    pub fn add_noise_snr<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        signal: &mut [Complex],
        snr_db: f64,
    ) -> Result<f64> {
        if signal.is_empty() {
            return Err(ChannelError::EmptyInput);
        }
        let p = signal_power(signal)?;
        if p == 0.0 {
            return Err(ChannelError::invalid("signal", "zero-power signal"));
        }
        let variance = p / db_to_lin(snr_db);
        self.gauss.add_awgn(rng, signal, variance);
        Ok(variance)
    }

    /// Adds noise with an explicit total variance `E[|n|²] = variance`.
    pub fn add_noise_variance<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        signal: &mut [Complex],
        variance: f64,
    ) -> Result<()> {
        if variance < 0.0 {
            return Err(ChannelError::invalid("variance", "must be non-negative"));
        }
        if variance > 0.0 {
            self.gauss.add_awgn(rng, signal, variance);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rfdsp::power::lin_to_db;

    #[test]
    fn snr_target_is_met() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut chan = AwgnChannel::new();
        for snr in [0.0, 10.0, 20.0] {
            let clean = vec![Complex::new(1.0, 1.0); 50_000];
            let mut noisy = clean.clone();
            chan.add_noise_snr(&mut rng, &mut noisy, snr).unwrap();
            let noise_power: f64 = noisy
                .iter()
                .zip(&clean)
                .map(|(a, b)| (*a - *b).norm_sqr())
                .sum::<f64>()
                / clean.len() as f64;
            let measured = lin_to_db(signal_power(&clean).unwrap() / noise_power);
            assert!(
                (measured - snr).abs() < 0.3,
                "snr {snr} measured {measured}"
            );
        }
    }

    #[test]
    fn returns_applied_variance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut chan = AwgnChannel::new();
        let mut sig = vec![Complex::new(2.0, 0.0); 1000];
        let var = chan.add_noise_snr(&mut rng, &mut sig, 10.0).unwrap();
        assert!((var - 0.4).abs() < 1e-12); // power 4 / 10
    }

    #[test]
    fn zero_variance_leaves_signal_unchanged() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut chan = AwgnChannel::new();
        let clean = vec![Complex::new(1.0, -1.0); 64];
        let mut sig = clean.clone();
        chan.add_noise_variance(&mut rng, &mut sig, 0.0).unwrap();
        assert_eq!(sig, clean);
    }

    #[test]
    fn error_cases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut chan = AwgnChannel::new();
        let mut empty: Vec<Complex> = vec![];
        assert!(chan.add_noise_snr(&mut rng, &mut empty, 10.0).is_err());
        let mut zeros = vec![Complex::zero(); 16];
        assert!(chan.add_noise_snr(&mut rng, &mut zeros, 10.0).is_err());
        let mut sig = vec![Complex::one(); 16];
        assert!(chan.add_noise_variance(&mut rng, &mut sig, -1.0).is_err());
    }
}
