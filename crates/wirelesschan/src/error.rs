//! Error type for the channel simulator.

use std::fmt;

/// Errors produced by channel models and scenario mixing.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An input signal was empty where a non-empty one is required.
    EmptyInput,
    /// An underlying DSP primitive failed.
    Dsp(rfdsp::DspError),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ChannelError::EmptyInput => write!(f, "input signal must not be empty"),
            ChannelError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChannelError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfdsp::DspError> for ChannelError {
    fn from(e: rfdsp::DspError) -> Self {
        ChannelError::Dsp(e)
    }
}

impl ChannelError {
    /// Helper for building an [`ChannelError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        ChannelError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ChannelError::EmptyInput.to_string().contains("empty"));
        assert!(ChannelError::invalid("snr", "out of range")
            .to_string()
            .contains("snr"));
        let wrapped = ChannelError::from(rfdsp::DspError::EmptyInput);
        assert!(wrapped.to_string().contains("dsp error"));
    }

    #[test]
    fn source_chains_dsp_errors() {
        use std::error::Error;
        let wrapped = ChannelError::from(rfdsp::DspError::EmptyInput);
        assert!(wrapped.source().is_some());
        assert!(ChannelError::EmptyInput.source().is_none());
    }
}
