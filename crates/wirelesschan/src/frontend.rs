//! Transmitter front-end nonidealities.
//!
//! Adjacent-channel interference in the paper arises because a real transmitter "leaks
//! part of its power into the adjacent channels … due to imperfect filters at the
//! transmitters or due to intermodulation of signals" (§2.1). Two models reproduce
//! those mechanisms at baseband:
//!
//! * [`RappPa`] — the Rapp solid-state power-amplifier model. Driving an OFDM signal
//!   (high PAPR) close to saturation produces the spectral regrowth that spills energy
//!   into neighbouring channels.
//! * [`IqImbalance`] — gain/phase mismatch between the I and Q mixer arms, producing an
//!   image component.
//!
//! A composite [`TxFrontend`] applies both plus an optional transmit low-pass filter
//! (the "imperfect filter" knob: fewer taps → more out-of-band energy).

use crate::{ChannelError, Result};
use rfdsp::filter::FirFilter;
use rfdsp::Complex;

/// Rapp model of a solid-state power amplifier.
///
/// The AM/AM characteristic is `g(a) = a / (1 + (a/A_sat)^{2p})^{1/(2p)}`; the model has
/// no AM/PM conversion. Small `p` gives a soft knee (more distortion products), large
/// `p` approaches an ideal clipper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RappPa {
    /// Saturation amplitude `A_sat` (output amplitude asymptote).
    saturation_amplitude: f64,
    /// Knee smoothness factor `p` (typically 1–3 for real PAs).
    smoothness: f64,
}

impl RappPa {
    /// Creates a Rapp PA model.
    pub fn new(saturation_amplitude: f64, smoothness: f64) -> Result<Self> {
        if saturation_amplitude <= 0.0 {
            return Err(ChannelError::invalid(
                "saturation_amplitude",
                "must be positive",
            ));
        }
        if smoothness <= 0.0 {
            return Err(ChannelError::invalid("smoothness", "must be positive"));
        }
        Ok(RappPa {
            saturation_amplitude,
            smoothness,
        })
    }

    /// Creates a PA whose saturation point sits `backoff_db` above the RMS amplitude of
    /// a unit-power signal. Small back-off (e.g. 3 dB) produces significant spectral
    /// regrowth; large back-off (e.g. 12 dB) is nearly linear.
    pub fn with_backoff_db(backoff_db: f64, smoothness: f64) -> Result<Self> {
        let a_sat = 10f64.powf(backoff_db / 20.0);
        RappPa::new(a_sat, smoothness)
    }

    /// The AM/AM transfer function applied to one amplitude.
    #[inline]
    pub fn am_am(&self, amplitude: f64) -> f64 {
        let ratio = amplitude / self.saturation_amplitude;
        amplitude / (1.0 + ratio.powf(2.0 * self.smoothness)).powf(1.0 / (2.0 * self.smoothness))
    }

    /// Applies the PA to a signal in place.
    pub fn apply(&self, signal: &mut [Complex]) {
        for s in signal.iter_mut() {
            let a = s.norm();
            if a > 0.0 {
                let g = self.am_am(a) / a;
                *s = s.scale(g);
            }
        }
    }
}

/// Gain and phase imbalance between the I and Q arms of a quadrature modulator.
///
/// The impaired output is `y = μ·x + ν·conj(x)` with
/// `μ = (1 + g·e^{iφ})/2`, `ν = (1 − g·e^{iφ})/2`, producing an image-frequency
/// component `ν/μ` below the desired signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqImbalance {
    mu: Complex,
    nu: Complex,
}

impl IqImbalance {
    /// Creates an IQ imbalance with amplitude mismatch `gain_db` and phase mismatch
    /// `phase_deg` between the arms. `(0.0, 0.0)` is a perfect front end.
    pub fn new(gain_db: f64, phase_deg: f64) -> Self {
        let g = 10f64.powf(gain_db / 20.0);
        let phi = phase_deg.to_radians();
        let ge = Complex::from_polar(g, phi);
        let mu = (Complex::one() + ge).scale(0.5);
        let nu = (Complex::one() - ge).scale(0.5);
        IqImbalance { mu, nu }
    }

    /// Image rejection ratio in dB (power of desired over image component).
    pub fn image_rejection_db(&self) -> f64 {
        10.0 * (self.mu.norm_sqr() / self.nu.norm_sqr().max(1e-300)).log10()
    }

    /// Applies the imbalance to a signal in place.
    pub fn apply(&self, signal: &mut [Complex]) {
        for s in signal.iter_mut() {
            *s = self.mu * *s + self.nu * s.conj();
        }
    }
}

/// A composite transmit front end: optional transmit filter, PA, IQ imbalance.
#[derive(Debug, Clone)]
pub struct TxFrontend {
    /// Optional transmit pulse-shaping / mask filter. `None` models a transmitter whose
    /// filtering is ideal enough to be ignored at this sample rate.
    pub tx_filter: Option<FirFilter>,
    /// Optional PA nonlinearity.
    pub pa: Option<RappPa>,
    /// Optional IQ imbalance.
    pub iq: Option<IqImbalance>,
}

impl TxFrontend {
    /// A perfectly linear, distortion-free front end.
    pub fn ideal() -> Self {
        TxFrontend {
            tx_filter: None,
            pa: None,
            iq: None,
        }
    }

    /// A "leaky" front end representative of low-cost consumer hardware: a short
    /// (weakly selective) transmit filter, a PA at 4 dB back-off and a 25 dB image
    /// rejection — the configuration used to generate adjacent-channel leakage in the
    /// reproduction's ACI scenarios.
    pub fn consumer_grade() -> Self {
        TxFrontend {
            tx_filter: Some(
                FirFilter::lowpass_hamming(11, 0.45).expect("static parameters are valid"),
            ),
            pa: Some(RappPa::with_backoff_db(4.0, 2.0).expect("static parameters are valid")),
            iq: Some(IqImbalance::new(0.5, 2.0)),
        }
    }

    /// Applies the front end to a transmit waveform, returning the impaired waveform.
    ///
    /// The PA back-off is interpreted relative to the waveform's own RMS amplitude (the
    /// drive level), so the same front end produces the same relative distortion
    /// regardless of the absolute digital scale of the baseband samples.
    pub fn apply(&self, signal: &[Complex]) -> Vec<Complex> {
        let mut out = match &self.tx_filter {
            Some(f) => f.filter_same(signal),
            None => signal.to_vec(),
        };
        if let Some(pa) = &self.pa {
            let rms =
                (out.iter().map(|s| s.norm_sqr()).sum::<f64>() / out.len().max(1) as f64).sqrt();
            if rms > 0.0 {
                for s in out.iter_mut() {
                    *s = s.scale(1.0 / rms);
                }
                pa.apply(&mut out);
                for s in out.iter_mut() {
                    *s = s.scale(rms);
                }
            }
        }
        if let Some(iq) = &self.iq {
            iq.apply(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rfdsp::noise::GaussianSource;
    use rfdsp::power::{signal_power, welch_psd};

    #[test]
    fn rapp_validation() {
        assert!(RappPa::new(0.0, 2.0).is_err());
        assert!(RappPa::new(1.0, 0.0).is_err());
        assert!(RappPa::new(1.0, 2.0).is_ok());
    }

    #[test]
    fn rapp_is_linear_for_small_signals() {
        let pa = RappPa::new(1.0, 2.0).unwrap();
        for a in [0.001, 0.01, 0.05] {
            assert!((pa.am_am(a) - a).abs() / a < 0.01);
        }
    }

    #[test]
    fn rapp_saturates_large_signals() {
        let pa = RappPa::new(1.0, 2.0).unwrap();
        assert!(pa.am_am(10.0) < 1.05);
        assert!(pa.am_am(100.0) < 1.01);
        // Monotone increasing.
        let mut prev = 0.0;
        for i in 1..100 {
            let g = pa.am_am(i as f64 * 0.1);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    fn rapp_apply_preserves_phase() {
        let pa = RappPa::new(1.0, 2.0).unwrap();
        let mut sig = vec![Complex::from_polar(3.0, 1.1)];
        pa.apply(&mut sig);
        assert!((sig[0].arg() - 1.1).abs() < 1e-12);
        assert!(sig[0].norm() < 3.0);
    }

    #[test]
    fn rapp_causes_spectral_regrowth() {
        // A band-limited Gaussian signal through a heavily driven PA gains out-of-band
        // power — the ACI mechanism from the paper.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut g = GaussianSource::new();
        let raw = g.complex_vector(&mut rng, 8192, 1.0);
        let lp = FirFilter::lowpass_hamming(63, 0.1).unwrap();
        let band_limited = lp.filter_same(&raw);
        let mut amplified = band_limited.clone();
        RappPa::with_backoff_db(1.0, 2.0)
            .unwrap()
            .apply(&mut amplified);

        let oob_power = |x: &[Complex]| {
            let psd = welch_psd(x, 128).unwrap();
            // Out-of-band: bins corresponding to |f| > 0.25 cycles/sample.
            let oob: f64 = psd[32..96].iter().sum();
            let total: f64 = psd.iter().sum();
            oob / total
        };
        let before = oob_power(&band_limited);
        let after = oob_power(&amplified);
        assert!(
            after > 3.0 * before,
            "regrowth: before {before}, after {after}"
        );
    }

    #[test]
    fn iq_imbalance_perfect_case() {
        let iq = IqImbalance::new(0.0, 0.0);
        assert!(iq.image_rejection_db() > 200.0);
        let mut sig = vec![Complex::new(1.0, 2.0)];
        iq.apply(&mut sig);
        assert!((sig[0] - Complex::new(1.0, 2.0)).norm() < 1e-12);
    }

    #[test]
    fn iq_imbalance_creates_image() {
        let iq = IqImbalance::new(1.0, 5.0);
        let irr = iq.image_rejection_db();
        assert!(irr > 10.0 && irr < 40.0, "irr {irr}");
        // A positive-frequency tone gains a negative-frequency (conjugate) component.
        let n = 256;
        let tone: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 0.1 * t as f64))
            .collect();
        let mut impaired = tone.clone();
        iq.apply(&mut impaired);
        let image: Vec<Complex> = impaired
            .iter()
            .zip(&tone)
            .map(|(y, x)| *y - *x * Complex::cis(0.0))
            .collect();
        assert!(signal_power(&image).unwrap() > 1e-6);
    }

    #[test]
    fn ideal_frontend_is_transparent() {
        let fe = TxFrontend::ideal();
        let sig: Vec<Complex> = (0..64).map(|t| Complex::cis(0.3 * t as f64)).collect();
        let out = fe.apply(&sig);
        for (a, b) in out.iter().zip(&sig) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn consumer_grade_frontend_distorts() {
        let fe = TxFrontend::consumer_grade();
        let sig: Vec<Complex> = (0..256)
            .map(|t| Complex::cis(0.05 * t as f64).scale(1.5))
            .collect();
        let out = fe.apply(&sig);
        assert_eq!(out.len(), sig.len());
        let diff: Vec<Complex> = out.iter().zip(&sig).map(|(a, b)| *a - *b).collect();
        assert!(signal_power(&diff).unwrap() > 1e-4);
    }
}
