//! Oscillator and timing impairments: carrier frequency offset, sampling clock offset
//! and Wiener phase noise.
//!
//! The paper's §3.3 lists phase noise as one of the reasons a naive Euclidean-distance
//! decoder fails, and §4.1 motivates decoupling amplitude and phase deviations in the
//! interference model. These impairments let scenarios stress exactly that behaviour.

use crate::{ChannelError, Result};
use rand::Rng;
use rfdsp::noise::GaussianSource;
use rfdsp::Complex;

/// Applies a carrier frequency offset of `cfo_hz` at `sample_rate_hz` to a signal,
/// starting from phase zero.
///
/// A CFO of `f` rotates sample `t` by `e^{i2π·f·t/fs}`. Residual CFO after coarse
/// correction is what the 802.11 pilot tracking loop removes.
pub fn apply_cfo(signal: &mut [Complex], cfo_hz: f64, sample_rate_hz: f64) -> Result<()> {
    if sample_rate_hz <= 0.0 {
        return Err(ChannelError::invalid("sample_rate_hz", "must be positive"));
    }
    let step = 2.0 * std::f64::consts::PI * cfo_hz / sample_rate_hz;
    for (t, s) in signal.iter_mut().enumerate() {
        *s *= Complex::cis(step * t as f64);
    }
    Ok(())
}

/// Wiener (random-walk) phase-noise process.
///
/// Each sample's phase increment is drawn from `N(0, 2π·linewidth/fs)`, the standard
/// Lorentzian-linewidth oscillator model; the accumulated phase multiplies the signal.
#[derive(Debug, Clone)]
pub struct WienerPhaseNoise {
    /// Oscillator 3-dB linewidth in Hz.
    linewidth_hz: f64,
    /// Sample rate in Hz.
    sample_rate_hz: f64,
}

impl WienerPhaseNoise {
    /// Creates a phase-noise process with the given linewidth and sample rate.
    pub fn new(linewidth_hz: f64, sample_rate_hz: f64) -> Result<Self> {
        if linewidth_hz < 0.0 {
            return Err(ChannelError::invalid(
                "linewidth_hz",
                "must be non-negative",
            ));
        }
        if sample_rate_hz <= 0.0 {
            return Err(ChannelError::invalid("sample_rate_hz", "must be positive"));
        }
        Ok(WienerPhaseNoise {
            linewidth_hz,
            sample_rate_hz,
        })
    }

    /// Applies one realisation of the phase-noise process to `signal` in place and
    /// returns the final accumulated phase (useful for chaining across packets).
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, signal: &mut [Complex]) -> f64 {
        let mut gauss = GaussianSource::new();
        let sigma = (2.0 * std::f64::consts::PI * self.linewidth_hz / self.sample_rate_hz).sqrt();
        let mut phase = 0.0;
        for s in signal.iter_mut() {
            phase += gauss.sample(rng, 0.0, sigma);
            *s *= Complex::cis(phase);
        }
        phase
    }
}

/// Applies a constant timing offset of an integer number of samples by prepending
/// zeros (the transmission starts `offset` samples later within the observation
/// window) and truncating to the original length.
pub fn apply_integer_delay(signal: &[Complex], offset: usize) -> Vec<Complex> {
    let n = signal.len();
    let mut out = vec![Complex::zero(); n];
    out[offset..n].copy_from_slice(&signal[..n - offset]);
    out
}

/// Applies a sampling-clock offset of `ppm` parts-per-million by linear interpolation
/// resampling — sample `t` of the output reads the input at `t·(1 + ppm·1e-6)`.
pub fn apply_sampling_clock_offset(signal: &[Complex], ppm: f64) -> Vec<Complex> {
    let n = signal.len();
    let rate = 1.0 + ppm * 1e-6;
    let mut out = vec![Complex::zero(); n];
    for (t, o) in out.iter_mut().enumerate() {
        let pos = t as f64 * rate;
        let lo = pos.floor() as usize;
        let frac = pos - pos.floor();
        if lo + 1 < n {
            *o = signal[lo].scale(1.0 - frac) + signal[lo + 1].scale(frac);
        } else if lo < n {
            *o = signal[lo];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cfo_rotates_constant_signal() {
        let mut sig = vec![Complex::one(); 100];
        apply_cfo(&mut sig, 1000.0, 20_000_000.0).unwrap();
        // After t samples phase = 2π·1000·t/20e6.
        let expected = Complex::cis(2.0 * std::f64::consts::PI * 1000.0 * 50.0 / 20e6);
        assert!((sig[50] - expected).norm() < 1e-12);
        assert_eq!(sig[0], Complex::one());
    }

    #[test]
    fn cfo_validation() {
        let mut sig = vec![Complex::one(); 4];
        assert!(apply_cfo(&mut sig, 100.0, 0.0).is_err());
        assert!(apply_cfo(&mut sig, 100.0, -5.0).is_err());
    }

    #[test]
    fn zero_cfo_is_identity() {
        let orig: Vec<Complex> = (0..32).map(|t| Complex::new(t as f64, -1.0)).collect();
        let mut sig = orig.clone();
        apply_cfo(&mut sig, 0.0, 20e6).unwrap();
        for (a, b) in sig.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn phase_noise_preserves_magnitude() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pn = WienerPhaseNoise::new(1000.0, 20e6).unwrap();
        let mut sig = vec![Complex::new(2.0, 0.0); 256];
        pn.apply(&mut rng, &mut sig);
        for s in &sig {
            assert!((s.norm() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_noise_variance_grows_with_linewidth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let narrow = WienerPhaseNoise::new(10.0, 20e6).unwrap();
        let wide = WienerPhaseNoise::new(100_000.0, 20e6).unwrap();
        let mut a = vec![Complex::one(); 2000];
        let mut b = vec![Complex::one(); 2000];
        narrow.apply(&mut rng, &mut a);
        wide.apply(&mut rng, &mut b);
        let drift = |v: &[Complex]| v.last().unwrap().arg().abs();
        // Not strictly monotone per-realisation, but with these linewidths the wide
        // oscillator drifts orders of magnitude more.
        assert!(drift(&b) > drift(&a));
    }

    #[test]
    fn phase_noise_validation() {
        assert!(WienerPhaseNoise::new(-1.0, 20e6).is_err());
        assert!(WienerPhaseNoise::new(100.0, 0.0).is_err());
    }

    #[test]
    fn zero_linewidth_leaves_signal_unchanged() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pn = WienerPhaseNoise::new(0.0, 20e6).unwrap();
        let orig: Vec<Complex> = (0..64).map(|t| Complex::cis(0.2 * t as f64)).collect();
        let mut sig = orig.clone();
        pn.apply(&mut rng, &mut sig);
        for (a, b) in sig.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn integer_delay_shifts_and_zero_fills() {
        let x: Vec<Complex> = (1..=5).map(|i| Complex::new(i as f64, 0.0)).collect();
        let y = apply_integer_delay(&x, 2);
        assert_eq!(y.len(), 5);
        assert_eq!(y[0], Complex::zero());
        assert_eq!(y[1], Complex::zero());
        assert_eq!(y[2], Complex::new(1.0, 0.0));
        assert_eq!(y[4], Complex::new(3.0, 0.0));
        assert_eq!(apply_integer_delay(&x, 0), x);
    }

    #[test]
    fn sampling_clock_offset_zero_is_identity() {
        let x: Vec<Complex> = (0..16).map(|t| Complex::new(t as f64, t as f64)).collect();
        let y = apply_sampling_clock_offset(&x, 0.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn sampling_clock_offset_stretches_signal() {
        // With +100000 ppm (10%) the output index 10 reads input position 11.
        let x: Vec<Complex> = (0..32).map(|t| Complex::new(t as f64, 0.0)).collect();
        let y = apply_sampling_clock_offset(&x, 100_000.0);
        assert!((y[10].re - 11.0).abs() < 1e-9);
    }
}
