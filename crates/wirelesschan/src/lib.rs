//! # wirelesschan — baseband wireless channel simulator
//!
//! The CPRecycle paper evaluates its receiver over the air with USRPs in an office
//! building. This crate replaces that RF path with a discrete-time baseband simulation
//! of every impairment the paper's argument depends on:
//!
//! * [`awgn`] — additive white Gaussian noise at a target SNR.
//! * [`multipath`] — tapped-delay-line multipath with indoor power-delay profiles
//!   (nanosecond-scale delay spreads, per the measurement studies the paper cites),
//!   Rayleigh or Rician tap fading, and delay-spread statistics.
//! * [`impairments`] — carrier frequency offset, sampling clock offset and Wiener
//!   phase noise (the oscillator effects discussed in §3.3).
//! * [`frontend`] — transmitter front-end nonidealities: Rapp-model power-amplifier
//!   nonlinearity (the spectral regrowth responsible for adjacent-channel leakage) and
//!   IQ imbalance.
//! * [`pathloss`] — log-distance path loss with shadowing plus floor/wall penetration
//!   losses, used by the office-building neighbor model (paper Fig. 13).
//! * [`mixer`] — the scenario glue: frequency-shift an interferer to its channel
//!   offset, delay it by an arbitrary (fractional) timing offset, scale it to an exact
//!   SIR and add it to the signal of interest.
//!
//! Everything is deterministic given a caller-supplied RNG, so experiments are
//! reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awgn;
pub mod error;
pub mod frontend;
pub mod impairments;
pub mod mixer;
pub mod multipath;
pub mod pathloss;

pub use error::ChannelError;

/// Convenience alias for results returned by fallible channel operations.
pub type Result<T> = std::result::Result<T, ChannelError>;
