//! Scenario mixing: placing interferers at a frequency offset, timing offset and SIR
//! relative to a signal of interest.
//!
//! The paper's two evaluation scenarios are built exactly this way:
//!
//! * **Adjacent-channel interference** — the interferer transmits its own OFDM waveform
//!   on a neighbouring channel; at the victim receiver it appears frequency-shifted by
//!   the channel separation and time-shifted by "a temporal offset that is greater than
//!   the duration of the cyclic prefix" so it is never symbol-aligned.
//! * **Co-channel interference** — same subcarriers (no frequency shift), also not
//!   symbol-aligned.
//!
//! [`InterfererSpec`] captures those three degrees of freedom; [`combine`] renders a
//! composite received waveform with every interferer scaled to its exact target SIR
//! (measured over the in-band signal powers before mixing, matching how the testbed SIR
//! was set by adjusting transmit power / position).

use crate::{ChannelError, Result};
use rfdsp::filter::frequency_shift;
use rfdsp::power::{gain_for_sir, signal_power};
use rfdsp::resample::fractional_delay;
use rfdsp::Complex;

/// Placement of one interferer relative to the signal of interest.
#[derive(Debug, Clone)]
pub struct InterfererSpec {
    /// The interferer's transmitted baseband waveform (its own OFDM frames).
    pub waveform: Vec<Complex>,
    /// Frequency offset of the interferer's centre relative to the victim receiver's
    /// centre frequency, in cycles/sample (e.g. a 20 MHz channel separation observed at
    /// a 20 MS/s receiver is `1.0`, i.e. aliased; partially-overlapping Wi-Fi channels
    /// are fractions like `15 MHz / 20 MS/s = 0.75`).
    pub frequency_offset: f64,
    /// Timing offset of the interferer's first sample relative to the victim packet's
    /// first sample, in samples (may be fractional). The paper's ACI/CCI interferers use
    /// offsets larger than the cyclic prefix so they are never symbol-aligned.
    pub timing_offset_samples: f64,
    /// Target signal-to-interference ratio in dB, measured as (signal power) /
    /// (this interferer's power at the receiver).
    pub sir_db: f64,
}

impl InterfererSpec {
    /// Convenience constructor.
    pub fn new(
        waveform: Vec<Complex>,
        frequency_offset: f64,
        timing_offset_samples: f64,
        sir_db: f64,
    ) -> Self {
        InterfererSpec {
            waveform,
            frequency_offset,
            timing_offset_samples,
            sir_db,
        }
    }
}

/// Output of [`combine`]: the composite waveform plus the per-interferer contributions,
/// which the Oracle receiver and the interference-power figures (Fig. 4a/4b) need in
/// isolation.
#[derive(Debug, Clone)]
pub struct CombinedSignal {
    /// Signal of interest plus every interferer contribution (no receiver noise —
    /// the AWGN stage is applied separately so SNR and SIR remain independent knobs).
    pub composite: Vec<Complex>,
    /// Each interferer's contribution as seen at the receiver, already shifted, delayed
    /// and scaled. Same length as the composite.
    pub interference: Vec<Vec<Complex>>,
}

/// Renders one interferer's contribution at the receiver: fractional delay, frequency
/// shift, truncation/zero-padding to `len` samples and scaling to the target SIR
/// relative to `signal`.
pub fn render_interferer(
    signal: &[Complex],
    spec: &InterfererSpec,
    len: usize,
) -> Result<Vec<Complex>> {
    if spec.waveform.is_empty() {
        return Err(ChannelError::EmptyInput);
    }
    if spec.timing_offset_samples < 0.0 {
        return Err(ChannelError::invalid(
            "timing_offset_samples",
            "must be non-negative",
        ));
    }
    // Extend or truncate the interferer waveform to the observation length by cyclic
    // repetition (a continuously transmitting interferer, as in the paper's setup where
    // the interferer "continuously transmits 400 byte packets").
    let mut extended = Vec::with_capacity(len);
    while extended.len() < len {
        let take = (len - extended.len()).min(spec.waveform.len());
        extended.extend_from_slice(&spec.waveform[..take]);
    }
    // Apply the (possibly fractional) timing offset.
    let delayed = if spec.timing_offset_samples == 0.0 {
        extended
    } else {
        fractional_delay(&extended, spec.timing_offset_samples, 16)?
    };
    // Move the interferer to its channel offset.
    let shifted = if spec.frequency_offset == 0.0 {
        delayed
    } else {
        frequency_shift(&delayed, spec.frequency_offset)
    };
    // Scale to the target SIR relative to the signal of interest.
    let nonzero: Vec<Complex> = shifted
        .iter()
        .copied()
        .filter(|s| s.norm_sqr() > 0.0)
        .collect();
    if nonzero.is_empty() {
        return Err(ChannelError::invalid(
            "waveform",
            "interferer contribution has zero power at the receiver",
        ));
    }
    let gain = gain_for_sir(signal, &nonzero, spec.sir_db)?;
    Ok(shifted.iter().map(|s| s.scale(gain)).collect())
}

/// Combines a signal of interest with any number of interferers.
///
/// Each interferer is scaled so that `signal power / interferer power = sir_db`
/// individually (the paper's multi-interferer experiments quote the SIR per interferer:
/// "the SIR is varied by increasing the transmit power in both the interferers").
pub fn combine(signal: &[Complex], interferers: &[InterfererSpec]) -> Result<CombinedSignal> {
    if signal.is_empty() {
        return Err(ChannelError::EmptyInput);
    }
    if signal_power(signal)? == 0.0 {
        return Err(ChannelError::invalid(
            "signal",
            "zero-power signal of interest",
        ));
    }
    let len = signal.len();
    let mut composite = signal.to_vec();
    let mut interference = Vec::with_capacity(interferers.len());
    for spec in interferers {
        let contribution = render_interferer(signal, spec, len)?;
        for (c, i) in composite.iter_mut().zip(&contribution) {
            *c += *i;
        }
        interference.push(contribution);
    }
    Ok(CombinedSignal {
        composite,
        interference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rfdsp::noise::GaussianSource;
    use rfdsp::power::lin_to_db;

    fn test_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = GaussianSource::new();
        g.complex_vector(&mut rng, n, 1.0)
    }

    #[test]
    fn combine_without_interferers_is_identity() {
        let sig = test_signal(256, 1);
        let out = combine(&sig, &[]).unwrap();
        assert_eq!(out.composite, sig);
        assert!(out.interference.is_empty());
    }

    #[test]
    fn single_interferer_hits_target_sir() {
        let sig = test_signal(4096, 2);
        let intf_wave = test_signal(4096, 3);
        for sir in [-20.0, -10.0, 0.0, 10.0] {
            let spec = InterfererSpec::new(intf_wave.clone(), 0.0, 0.0, sir);
            let out = combine(&sig, &[spec]).unwrap();
            let ps = signal_power(&sig).unwrap();
            let pi = signal_power(&out.interference[0]).unwrap();
            let measured = lin_to_db(ps / pi);
            assert!(
                (measured - sir).abs() < 0.3,
                "target {sir} measured {measured}"
            );
        }
    }

    #[test]
    fn composite_is_signal_plus_interference() {
        let sig = test_signal(512, 4);
        let spec = InterfererSpec::new(test_signal(512, 5), 0.1, 3.0, -5.0);
        let out = combine(&sig, &[spec]).unwrap();
        for (t, composite) in out.composite.iter().enumerate() {
            let expected = sig[t] + out.interference[0][t];
            assert!((*composite - expected).norm() < 1e-9);
        }
    }

    #[test]
    fn two_interferers_each_hit_their_sir() {
        let sig = test_signal(2048, 6);
        let specs = vec![
            InterfererSpec::new(test_signal(2048, 7), 0.2, 10.0, -10.0),
            InterfererSpec::new(test_signal(2048, 8), -0.2, 25.0, -10.0),
        ];
        let out = combine(&sig, &specs).unwrap();
        assert_eq!(out.interference.len(), 2);
        let ps = signal_power(&sig).unwrap();
        for contribution in &out.interference {
            let nz: Vec<Complex> = contribution
                .iter()
                .copied()
                .filter(|s| s.norm_sqr() > 0.0)
                .collect();
            let measured = lin_to_db(ps / signal_power(&nz).unwrap());
            assert!((measured + 10.0).abs() < 0.5, "measured {measured}");
        }
    }

    #[test]
    fn short_interferer_waveform_is_repeated() {
        let sig = test_signal(1000, 9);
        let short = test_signal(100, 10);
        let spec = InterfererSpec::new(short, 0.0, 0.0, 0.0);
        let out = combine(&sig, &[spec]).unwrap();
        // The interferer contribution must span the whole observation.
        let tail_power = signal_power(&out.interference[0][900..]).unwrap();
        assert!(tail_power > 0.1);
    }

    #[test]
    fn frequency_offset_moves_interferer_out_of_band() {
        // A DC-heavy interferer shifted by 0.25 cycles/sample should end up with most of
        // its energy away from DC.
        let sig = test_signal(4096, 11);
        let dc_interferer = vec![Complex::one(); 4096];
        let spec = InterfererSpec::new(dc_interferer, 0.25, 0.0, 0.0);
        let out = combine(&sig, &[spec]).unwrap();
        let psd = rfdsp::power::welch_psd(&out.interference[0], 64).unwrap();
        let peak_bin = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_bin, 16); // 0.25 cycles/sample of a 64-bin PSD
    }

    #[test]
    fn timing_offset_delays_interferer_energy() {
        let sig = test_signal(512, 12);
        let spec = InterfererSpec::new(test_signal(512, 13), 0.0, 100.0, 0.0);
        let out = combine(&sig, &[spec]).unwrap();
        let early = signal_power(&out.interference[0][..95]).unwrap();
        let late = signal_power(&out.interference[0][105..]).unwrap();
        assert!(early < 1e-6 * late.max(1.0), "early {early} late {late}");
    }

    #[test]
    fn error_cases() {
        let sig = test_signal(64, 14);
        assert!(combine(&[], &[]).is_err());
        assert!(combine(&vec![Complex::zero(); 64], &[]).is_err());
        let empty_spec = InterfererSpec::new(vec![], 0.0, 0.0, 0.0);
        assert!(combine(&sig, &[empty_spec]).is_err());
        let neg_delay = InterfererSpec::new(test_signal(64, 15), 0.0, -1.0, 0.0);
        assert!(combine(&sig, &[neg_delay]).is_err());
        let zero_intf = InterfererSpec::new(vec![Complex::zero(); 64], 0.0, 0.0, 0.0);
        assert!(combine(&sig, &[zero_intf]).is_err());
    }
}
