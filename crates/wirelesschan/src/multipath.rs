//! Tapped-delay-line multipath channels with indoor power-delay profiles.
//!
//! The entire premise of CPRecycle is that indoor delay spreads (tens to a few hundred
//! nanoseconds) are far smaller than the cyclic prefix the standards provision
//! (0.8 µs in 802.11a/g, ~4.7 µs in LTE), leaving `P = CP − delay_spread` ISI-free
//! samples. The models here let scenarios dial in exactly that relationship:
//!
//! * [`PowerDelayProfile`] — a set of (delay, average power) taps. Constructors cover
//!   a single-tap (flat) channel, an exponentially decaying profile with a chosen RMS
//!   delay spread, and the sample-spaced profile used by the experiments.
//! * [`MultipathChannel`] — a realisation of a PDP with Rayleigh or Rician tap fading,
//!   applied to a signal by direct convolution. The channel impulse response is frozen
//!   for the duration of a packet (block fading), matching the paper's per-packet
//!   channel estimation from the preamble.

use crate::{ChannelError, Result};
use rand::Rng;
use rfdsp::noise::GaussianSource;
use rfdsp::Complex;

/// Statistical distribution of each channel tap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingKind {
    /// Taps are fixed at the PDP amplitude with zero phase — deterministic, used for
    /// unit tests and for isolating interference effects from fading.
    Static,
    /// Each tap is a zero-mean circularly-symmetric complex Gaussian (Rayleigh
    /// magnitude) with variance equal to the PDP tap power.
    Rayleigh,
    /// First tap has a deterministic line-of-sight component with the given K-factor
    /// (linear power ratio of LOS to scattered power); remaining taps are Rayleigh.
    Rician {
        /// Ratio of line-of-sight power to scattered power (linear, not dB).
        k_factor: f64,
    },
}

/// A power-delay profile: average tap powers at integer sample delays.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDelayProfile {
    /// `(delay_in_samples, linear_average_power)` pairs, sorted by delay.
    taps: Vec<(usize, f64)>,
}

impl PowerDelayProfile {
    /// Creates a profile from explicit `(delay, power)` taps. Powers are normalised so
    /// the total channel power is 1 (the channel neither amplifies nor attenuates on
    /// average; large-scale loss is handled by [`crate::pathloss`]).
    pub fn from_taps(mut taps: Vec<(usize, f64)>) -> Result<Self> {
        if taps.is_empty() {
            return Err(ChannelError::EmptyInput);
        }
        if taps.iter().any(|(_, p)| *p < 0.0) {
            return Err(ChannelError::invalid(
                "taps",
                "tap powers must be non-negative",
            ));
        }
        let total: f64 = taps.iter().map(|(_, p)| p).sum();
        if total <= 0.0 {
            return Err(ChannelError::invalid(
                "taps",
                "total tap power must be positive",
            ));
        }
        for t in taps.iter_mut() {
            t.1 /= total;
        }
        taps.sort_by_key(|t| t.0);
        Ok(PowerDelayProfile { taps })
    }

    /// A single-tap (frequency-flat) profile.
    pub fn flat() -> Self {
        PowerDelayProfile {
            taps: vec![(0, 1.0)],
        }
    }

    /// An exponentially decaying profile with `num_taps` sample-spaced taps and an RMS
    /// delay spread of `rms_delay_spread_samples` samples.
    ///
    /// For 802.11a/g at 20 MHz one sample is 50 ns, so typical indoor delay spreads of
    /// 30–150 ns correspond to roughly 0.6–3 samples — comfortably inside the 16-sample
    /// cyclic prefix, which is exactly the over-provisioning CPRecycle recycles.
    pub fn exponential(num_taps: usize, rms_delay_spread_samples: f64) -> Result<Self> {
        if num_taps == 0 {
            return Err(ChannelError::invalid("num_taps", "must be at least 1"));
        }
        if rms_delay_spread_samples < 0.0 {
            return Err(ChannelError::invalid(
                "rms_delay_spread_samples",
                "must be non-negative",
            ));
        }
        if num_taps == 1 || rms_delay_spread_samples < 1e-9 {
            return Ok(PowerDelayProfile::flat());
        }
        let taps = (0..num_taps)
            .map(|d| (d, (-(d as f64) / rms_delay_spread_samples).exp()))
            .collect();
        PowerDelayProfile::from_taps(taps)
    }

    /// The `(delay, power)` taps (normalised to unit total power).
    pub fn taps(&self) -> &[(usize, f64)] {
        &self.taps
    }

    /// Largest tap delay in samples — the quantity that must stay below the CP length
    /// for an ISI-free region to exist.
    pub fn max_delay(&self) -> usize {
        self.taps.last().map(|t| t.0).unwrap_or(0)
    }

    /// RMS delay spread in samples, computed from the normalised tap powers.
    pub fn rms_delay_spread(&self) -> f64 {
        let mean_delay: f64 = self.taps.iter().map(|(d, p)| *d as f64 * p).sum();
        let second: f64 = self
            .taps
            .iter()
            .map(|(d, p)| (*d as f64 - mean_delay).powi(2) * p)
            .sum();
        second.sqrt()
    }
}

/// Standard indoor channel presets matching the measurement studies cited in the paper
/// (§2.2 references [18, 29, 55]: indoor delay spreads are tens of nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndoorProfile {
    /// Small office / residential: ~50 ns RMS delay spread (1 sample at 20 MHz).
    Residential,
    /// Typical office: ~100 ns RMS delay spread (2 samples at 20 MHz).
    Office,
    /// Large open space / atrium: ~250 ns RMS delay spread (5 samples at 20 MHz).
    LargeOpenSpace,
}

impl IndoorProfile {
    /// Builds the corresponding power-delay profile at a 20 MHz sample rate
    /// (50 ns per sample, the 802.11a/g configuration used throughout the paper).
    pub fn pdp_20mhz(self) -> PowerDelayProfile {
        let (taps, spread) = match self {
            IndoorProfile::Residential => (4, 1.0),
            IndoorProfile::Office => (6, 2.0),
            IndoorProfile::LargeOpenSpace => (10, 5.0),
        };
        PowerDelayProfile::exponential(taps, spread).expect("preset parameters are always valid")
    }

    /// Nominal RMS delay spread in nanoseconds.
    pub fn rms_delay_spread_ns(self) -> f64 {
        match self {
            IndoorProfile::Residential => 50.0,
            IndoorProfile::Office => 100.0,
            IndoorProfile::LargeOpenSpace => 250.0,
        }
    }
}

/// A concrete multipath channel realisation (complex impulse response).
#[derive(Debug, Clone)]
pub struct MultipathChannel {
    /// Complex impulse response, indexed by sample delay.
    impulse_response: Vec<Complex>,
}

impl MultipathChannel {
    /// Draws a channel realisation from `pdp` with the given fading statistics.
    pub fn realize<R: Rng + ?Sized>(
        pdp: &PowerDelayProfile,
        fading: FadingKind,
        rng: &mut R,
    ) -> Self {
        let mut gauss = GaussianSource::new();
        let len = pdp.max_delay() + 1;
        let mut ir = vec![Complex::zero(); len];
        for (i, (delay, power)) in pdp.taps().iter().enumerate() {
            let tap = match fading {
                FadingKind::Static => Complex::new(power.sqrt(), 0.0),
                FadingKind::Rayleigh => gauss.complex_sample(rng, *power),
                FadingKind::Rician { k_factor } => {
                    if i == 0 {
                        let los_power = power * k_factor / (1.0 + k_factor);
                        let scatter_power = power / (1.0 + k_factor);
                        Complex::new(los_power.sqrt(), 0.0)
                            + gauss.complex_sample(rng, scatter_power)
                    } else {
                        gauss.complex_sample(rng, *power)
                    }
                }
            };
            ir[*delay] += tap;
        }
        MultipathChannel {
            impulse_response: ir,
        }
    }

    /// An identity (single unit tap) channel.
    pub fn identity() -> Self {
        MultipathChannel {
            impulse_response: vec![Complex::one()],
        }
    }

    /// Builds a channel directly from an impulse response (mainly for tests).
    pub fn from_impulse_response(ir: Vec<Complex>) -> Result<Self> {
        if ir.is_empty() {
            return Err(ChannelError::EmptyInput);
        }
        Ok(MultipathChannel {
            impulse_response: ir,
        })
    }

    /// The channel impulse response.
    pub fn impulse_response(&self) -> &[Complex] {
        &self.impulse_response
    }

    /// Number of taps (maximum excess delay + 1).
    pub fn num_taps(&self) -> usize {
        self.impulse_response.len()
    }

    /// Applies the channel to a signal by linear convolution, truncated to the input
    /// length (the tail that would spill past the end is dropped, as a receiver's
    /// acquisition window would).
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        let mut y = vec![Complex::zero(); n];
        for (d, h) in self.impulse_response.iter().enumerate() {
            if h.norm_sqr() == 0.0 {
                continue;
            }
            for i in d..n {
                y[i] += x[i - d] * *h;
            }
        }
        y
    }

    /// Frequency response of the channel over `fft_size` bins (what a per-subcarrier
    /// equalizer estimates from the preamble).
    pub fn frequency_response(&self, fft_size: usize) -> Vec<Complex> {
        (0..fft_size)
            .map(|k| {
                let mut h = Complex::zero();
                for (d, tap) in self.impulse_response.iter().enumerate() {
                    h += *tap
                        * Complex::cis(
                            -2.0 * std::f64::consts::PI * k as f64 * d as f64 / fft_size as f64,
                        );
                }
                h
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rfdsp::power::signal_power;

    #[test]
    fn pdp_from_taps_normalises_power() {
        let pdp = PowerDelayProfile::from_taps(vec![(0, 2.0), (3, 1.0), (1, 1.0)]).unwrap();
        let total: f64 = pdp.taps().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Sorted by delay.
        assert_eq!(pdp.taps()[0].0, 0);
        assert_eq!(pdp.taps()[1].0, 1);
        assert_eq!(pdp.taps()[2].0, 3);
        assert_eq!(pdp.max_delay(), 3);
    }

    #[test]
    fn pdp_validation() {
        assert!(PowerDelayProfile::from_taps(vec![]).is_err());
        assert!(PowerDelayProfile::from_taps(vec![(0, -1.0)]).is_err());
        assert!(PowerDelayProfile::from_taps(vec![(0, 0.0)]).is_err());
        assert!(PowerDelayProfile::exponential(0, 1.0).is_err());
        assert!(PowerDelayProfile::exponential(4, -1.0).is_err());
    }

    #[test]
    fn flat_profile_has_zero_delay_spread() {
        let pdp = PowerDelayProfile::flat();
        assert_eq!(pdp.max_delay(), 0);
        assert_eq!(pdp.rms_delay_spread(), 0.0);
        assert_eq!(PowerDelayProfile::exponential(1, 5.0).unwrap(), pdp);
        assert_eq!(PowerDelayProfile::exponential(8, 0.0).unwrap(), pdp);
    }

    #[test]
    fn exponential_profile_decays() {
        let pdp = PowerDelayProfile::exponential(8, 2.0).unwrap();
        let taps = pdp.taps();
        for w in taps.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
        assert!(pdp.rms_delay_spread() > 0.5 && pdp.rms_delay_spread() < 4.0);
    }

    #[test]
    fn indoor_presets_fit_inside_80211_cp() {
        // The paper's core premise: indoor delay spreads stay well below the
        // 16-sample 802.11a/g cyclic prefix.
        for p in [
            IndoorProfile::Residential,
            IndoorProfile::Office,
            IndoorProfile::LargeOpenSpace,
        ] {
            let pdp = p.pdp_20mhz();
            assert!(pdp.max_delay() < 16, "{p:?} exceeds the CP");
            assert!(p.rms_delay_spread_ns() <= 800.0);
        }
    }

    #[test]
    fn static_channel_preserves_power_on_average() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pdp = PowerDelayProfile::exponential(4, 1.5).unwrap();
        let ch = MultipathChannel::realize(&pdp, FadingKind::Static, &mut rng);
        let x: Vec<Complex> = (0..2048).map(|t| Complex::cis(0.13 * t as f64)).collect();
        let y = ch.apply(&x);
        let px = signal_power(&x).unwrap();
        let py = signal_power(&y[16..]).unwrap();
        // Static taps are real sqrt powers; at this tone frequency they add nearly
        // coherently, so allow up to the coherent-gain bound (Σ√p)² ≈ 3.6.
        assert!(py > 0.2 * px && py < 4.0 * px, "px {px} py {py}");
    }

    #[test]
    fn rayleigh_channel_power_is_unity_on_average() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pdp = PowerDelayProfile::exponential(5, 2.0).unwrap();
        let mut acc = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let ch = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
            acc += ch
                .impulse_response()
                .iter()
                .map(|h| h.norm_sqr())
                .sum::<f64>();
        }
        let avg = acc / trials as f64;
        assert!((avg - 1.0).abs() < 0.05, "avg channel power {avg}");
    }

    #[test]
    fn rician_k_factor_concentrates_first_tap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pdp = PowerDelayProfile::exponential(3, 1.0).unwrap();
        let mut strong_los = 0.0;
        let trials = 1000;
        for _ in 0..trials {
            let ch =
                MultipathChannel::realize(&pdp, FadingKind::Rician { k_factor: 20.0 }, &mut rng);
            strong_los += ch.impulse_response()[0].re;
        }
        // With K=20 the LOS component dominates, so the mean real part is clearly positive.
        assert!(strong_los / trials as f64 > 0.5);
    }

    #[test]
    fn identity_channel_is_transparent() {
        let ch = MultipathChannel::identity();
        let x: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64, 1.0)).collect();
        assert_eq!(ch.apply(&x), x);
        assert_eq!(ch.num_taps(), 1);
    }

    #[test]
    fn from_impulse_response_and_delay() {
        assert!(MultipathChannel::from_impulse_response(vec![]).is_err());
        let ch = MultipathChannel::from_impulse_response(vec![
            Complex::zero(),
            Complex::zero(),
            Complex::one(),
        ])
        .unwrap();
        let mut x = vec![Complex::zero(); 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = ch.apply(&x);
        assert_eq!(y[2], Complex::one());
        assert_eq!(y[0], Complex::zero());
    }

    #[test]
    fn frequency_response_of_identity_is_flat() {
        let ch = MultipathChannel::identity();
        for h in ch.frequency_response(64) {
            assert!((h - Complex::one()).norm() < 1e-12);
        }
    }

    #[test]
    fn frequency_response_of_two_tap_channel_has_notches() {
        // h = [1, 1] has nulls at odd multiples of half the sample rate.
        let ch =
            MultipathChannel::from_impulse_response(vec![Complex::one(), Complex::one()]).unwrap();
        let h = ch.frequency_response(64);
        assert!((h[0].norm() - 2.0).abs() < 1e-12);
        assert!(h[32].norm() < 1e-12);
    }
}
