//! Large-scale propagation: log-distance path loss, shadowing and floor/wall losses.
//!
//! These models drive the office-building neighbor experiment (paper Fig. 13): received
//! signal strength between every pair of access points determines how many neighbors
//! exceed the interference threshold, and CPRecycle's extra interference tolerance
//! shifts that threshold by ~15 dB.

use crate::{ChannelError, Result};
use rand::Rng;
use rfdsp::noise::GaussianSource;

/// Log-distance path-loss model with optional log-normal shadowing.
///
/// `PL(d) = PL(d0) + 10·n·log10(d/d0) + X_σ`, in dB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistanceModel {
    /// Path loss at the reference distance, in dB.
    pub reference_loss_db: f64,
    /// Reference distance in metres.
    pub reference_distance_m: f64,
    /// Path-loss exponent `n` (2 free space, 3–4 indoor obstructed).
    pub exponent: f64,
    /// Log-normal shadowing standard deviation in dB (0 disables shadowing).
    pub shadowing_sigma_db: f64,
}

impl LogDistanceModel {
    /// Free-space reference loss at 2.4 GHz and 1 m, exponent chosen for an open indoor
    /// environment.
    pub fn indoor_2_4ghz() -> Self {
        LogDistanceModel {
            reference_loss_db: 40.0,
            reference_distance_m: 1.0,
            exponent: 3.0,
            shadowing_sigma_db: 4.0,
        }
    }

    /// Validates the model parameters.
    pub fn validate(&self) -> Result<()> {
        if self.reference_distance_m <= 0.0 {
            return Err(ChannelError::invalid(
                "reference_distance_m",
                "must be positive",
            ));
        }
        if self.exponent <= 0.0 {
            return Err(ChannelError::invalid("exponent", "must be positive"));
        }
        if self.shadowing_sigma_db < 0.0 {
            return Err(ChannelError::invalid(
                "shadowing_sigma_db",
                "must be non-negative",
            ));
        }
        Ok(())
    }

    /// Deterministic (median) path loss at distance `d` metres, in dB.
    pub fn median_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.reference_distance_m);
        self.reference_loss_db + 10.0 * self.exponent * (d / self.reference_distance_m).log10()
    }

    /// Path loss with one shadowing realisation drawn from the supplied RNG.
    pub fn loss_db<R: Rng + ?Sized>(&self, rng: &mut R, distance_m: f64) -> f64 {
        let mut gauss = GaussianSource::new();
        self.median_loss_db(distance_m) + gauss.sample(rng, 0.0, self.shadowing_sigma_db)
    }
}

/// Penetration losses for building structure between a transmitter and receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenetrationLoss {
    /// Loss per interior wall crossed, dB.
    pub per_wall_db: f64,
    /// Loss per floor crossed, dB.
    pub per_floor_db: f64,
}

impl PenetrationLoss {
    /// Glass-and-drywall office defaults (the paper's building has mostly glass walls
    /// and a large atrium, so wall losses are modest but floor losses are substantial).
    pub fn glass_office() -> Self {
        PenetrationLoss {
            per_wall_db: 3.0,
            per_floor_db: 13.0,
        }
    }

    /// Total penetration loss for the given structure counts.
    pub fn total_db(&self, walls: u32, floors: u32) -> f64 {
        self.per_wall_db * walls as f64 + self.per_floor_db * floors as f64
    }
}

/// Received power in dBm for a transmit power, path-loss model and structure counts.
pub fn received_power_dbm<R: Rng + ?Sized>(
    rng: &mut R,
    tx_power_dbm: f64,
    model: &LogDistanceModel,
    penetration: &PenetrationLoss,
    distance_m: f64,
    walls: u32,
    floors: u32,
) -> f64 {
    tx_power_dbm - model.loss_db(rng, distance_m) - penetration.total_db(walls, floors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn median_loss_increases_with_distance() {
        let m = LogDistanceModel::indoor_2_4ghz();
        m.validate().unwrap();
        assert!(m.median_loss_db(10.0) > m.median_loss_db(2.0));
        // 10x distance at exponent 3 = +30 dB.
        assert!((m.median_loss_db(10.0) - m.median_loss_db(1.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn distances_below_reference_clamp() {
        let m = LogDistanceModel::indoor_2_4ghz();
        assert_eq!(m.median_loss_db(0.1), m.median_loss_db(1.0));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut m = LogDistanceModel::indoor_2_4ghz();
        m.reference_distance_m = 0.0;
        assert!(m.validate().is_err());
        let mut m = LogDistanceModel::indoor_2_4ghz();
        m.exponent = -1.0;
        assert!(m.validate().is_err());
        let mut m = LogDistanceModel::indoor_2_4ghz();
        m.shadowing_sigma_db = -2.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn shadowing_spreads_around_median() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = LogDistanceModel::indoor_2_4ghz();
        let median = m.median_loss_db(20.0);
        let samples: Vec<f64> = (0..5000).map(|_| m.loss_db(&mut rng, 20.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - median).abs() < 0.5);
        let above = samples.iter().filter(|s| **s > median).count();
        assert!(above > 2000 && above < 3000);
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut m = LogDistanceModel::indoor_2_4ghz();
        m.shadowing_sigma_db = 0.0;
        assert_eq!(m.loss_db(&mut rng, 15.0), m.median_loss_db(15.0));
    }

    #[test]
    fn penetration_loss_accumulates() {
        let p = PenetrationLoss::glass_office();
        assert_eq!(p.total_db(0, 0), 0.0);
        assert_eq!(p.total_db(2, 1), 2.0 * 3.0 + 13.0);
    }

    #[test]
    fn received_power_combines_terms() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut m = LogDistanceModel::indoor_2_4ghz();
        m.shadowing_sigma_db = 0.0;
        let p = PenetrationLoss::glass_office();
        let rx = received_power_dbm(&mut rng, 20.0, &m, &p, 10.0, 1, 1);
        let expected = 20.0 - m.median_loss_db(10.0) - 16.0;
        assert!((rx - expected).abs() < 1e-9);
    }
}
