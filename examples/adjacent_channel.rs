//! Adjacent-channel interference walkthrough (the paper's headline scenario).
//!
//! An 802.11g station on an overlapping channel (15 MHz away, as Wi-Fi channels 8 and
//! 11 are) interferes with the victim link. The example sweeps the SIR and prints the
//! packet success rate with and without CPRecycle — a miniature version of Fig. 8.
//!
//! ```text
//! cargo run --release --example adjacent_channel
//! ```
//!
//! Set `CPRECYCLE_METRICS=/path/to/metrics.json` to also dump the run's telemetry
//! (per-trial timing, per-stage decode spans, worker throughput) as cpjson.

use cprecycle_repro::cprecycle::CpRecycleConfig;
use cprecycle_repro::obs::InMemoryRecorder;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::interference::AciScenario;
use cprecycle_repro::scenarios::link::{
    packet_success_rate_observed, MonteCarloConfig, ReceiverKind, Scenario,
};
use cprecycle_repro::scenarios::report::{ExampleReport, Series};

fn main() {
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 20,
        payload_len: 200,
        seed: 2024,
    };
    let recorder = InMemoryRecorder::new(256);

    let sirs = [-25.0, -20.0, -15.0, -10.0, -5.0, 0.0];
    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); receivers.len()];
    for &sir in &sirs {
        let scenario = Scenario::Aci(AciScenario {
            sir_db: sir,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let psr =
            packet_success_rate_observed(&params, mcs, &scenario, &receivers, &config, &recorder)
                .expect("simulation runs");
        for (curve, value) in curves.iter_mut().zip(&psr) {
            curve.push(*value);
        }
    }

    let mut report = ExampleReport::new(
        "Adjacent-channel interference",
        format!(
            "overlapping-channel interferer 15 MHz away, {}",
            mcs.label()
        ),
        "SIR (dB)",
        "Packet success rate (%)",
    );
    for (kind, curve) in receivers.iter().zip(curves) {
        report.push_series(Series::new(kind.label(), sirs.to_vec(), curve));
    }
    report.emit(Some(&recorder.snapshot_now()));
}
