//! Adjacent-channel interference walkthrough (the paper's headline scenario).
//!
//! An 802.11g station on an overlapping channel (15 MHz away, as Wi-Fi channels 8 and
//! 11 are) interferes with the victim link. The example sweeps the SIR and prints the
//! packet success rate with and without CPRecycle — a miniature version of Fig. 8.
//!
//! ```text
//! cargo run --release --example adjacent_channel
//! ```

use cprecycle_repro::cprecycle::CpRecycleConfig;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::interference::AciScenario;
use cprecycle_repro::scenarios::link::{
    packet_success_rate, MonteCarloConfig, ReceiverKind, Scenario,
};

fn main() {
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 20,
        payload_len: 200,
        seed: 2024,
    };
    println!(
        "Adjacent-channel interferer on an overlapping channel (15 MHz away), {}",
        mcs.label()
    );
    println!(
        "{:>8} | {:>22} | {:>22}",
        "SIR(dB)", "PSR without CPRecycle", "PSR with CPRecycle"
    );
    for sir in [-25.0, -20.0, -15.0, -10.0, -5.0, 0.0] {
        let scenario = Scenario::Aci(AciScenario {
            sir_db: sir,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        });
        let psr = packet_success_rate(&params, mcs, &scenario, &receivers, &config)
            .expect("simulation runs");
        println!("{sir:>8.0} | {:>21.1}% | {:>21.1}%", psr[0], psr[1]);
    }
}
