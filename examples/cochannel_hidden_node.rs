//! Co-channel (hidden-node) interference walkthrough.
//!
//! A hidden node transmits on the same channel without deferring — the CSMA/CA failure
//! mode the paper motivates with dense deployments. The example sweeps the SIR and
//! prints packet success rates for the standard receiver, the naive multi-segment
//! decoder and CPRecycle — a miniature version of Fig. 11.
//!
//! ```text
//! cargo run --release --example cochannel_hidden_node
//! ```
//!
//! Set `CPRECYCLE_METRICS=/path/to/metrics.json` to also dump the run's telemetry
//! (per-trial timing, per-stage decode spans, worker throughput) as cpjson.

use cprecycle_repro::cprecycle::{CpRecycleConfig, DecisionStage};
use cprecycle_repro::obs::InMemoryRecorder;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::interference::CciScenario;
use cprecycle_repro::scenarios::link::{
    packet_success_rate_observed, MonteCarloConfig, ReceiverKind, Scenario,
};
use cprecycle_repro::scenarios::report::{ExampleReport, Series};

fn main() {
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::with_decision(DecisionStage::Naive)),
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 20,
        payload_len: 200,
        seed: 99,
    };
    let recorder = InMemoryRecorder::new(256);

    let sirs = [0.0, 3.0, 6.0, 9.0, 12.0, 18.0];
    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); receivers.len()];
    for &sir in &sirs {
        let scenario = Scenario::Cci(CciScenario {
            sir_db: sir,
            ..Default::default()
        });
        let psr =
            packet_success_rate_observed(&params, mcs, &scenario, &receivers, &config, &recorder)
                .expect("simulation runs");
        for (curve, value) in curves.iter_mut().zip(&psr) {
            curve.push(*value);
        }
    }

    let mut report = ExampleReport::new(
        "Co-channel hidden node",
        format!("hidden-node co-channel interferer, {}", mcs.label()),
        "SIR (dB)",
        "Packet success rate (%)",
    );
    for (kind, curve) in receivers.iter().zip(curves) {
        report.push_series(Series::new(kind.label(), sirs.to_vec(), curve));
    }
    report.emit(Some(&recorder.snapshot_now()));
}
