//! Co-channel (hidden-node) interference walkthrough.
//!
//! A hidden node transmits on the same channel without deferring — the CSMA/CA failure
//! mode the paper motivates with dense deployments. The example sweeps the SIR and
//! prints packet success rates for the standard receiver, the naive multi-segment
//! decoder and CPRecycle — a miniature version of Fig. 11.
//!
//! ```text
//! cargo run --release --example cochannel_hidden_node
//! ```

use cprecycle_repro::cprecycle::{CpRecycleConfig, DecisionStage};
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::interference::CciScenario;
use cprecycle_repro::scenarios::link::{
    packet_success_rate, MonteCarloConfig, ReceiverKind, Scenario,
};

fn main() {
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::with_decision(DecisionStage::Naive)),
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 20,
        payload_len: 200,
        seed: 99,
    };
    println!("Hidden-node co-channel interferer, {}", mcs.label());
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12}",
        "SIR(dB)", "Standard", "Naive", "CPRecycle"
    );
    for sir in [0.0, 3.0, 6.0, 9.0, 12.0, 18.0] {
        let scenario = Scenario::Cci(CciScenario {
            sir_db: sir,
            ..Default::default()
        });
        let psr = packet_success_rate(&params, mcs, &scenario, &receivers, &config)
            .expect("simulation runs");
        println!(
            "{sir:>8.0} | {:>11.1}% | {:>11.1}% | {:>11.1}%",
            psr[0], psr[1], psr[2]
        );
    }
}
