//! Network-level planning: how many interfering neighbors does each AP in a dense
//! office deployment see, and how does CPRecycle's extra interference tolerance change
//! that picture? (A runnable version of the paper's Fig. 13 argument.)
//!
//! ```text
//! cargo run --example network_planning
//! ```

use cprecycle_repro::scenarios::neighbors::{simulate_neighbors, BuildingModel};
use rand::SeedableRng;

fn main() {
    let model = BuildingModel::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2016);
    let counts = simulate_neighbors(&mut rng, &model);

    let stats = |v: &[usize]| {
        let mut sorted = v.to_vec();
        sorted.sort_unstable();
        let avg = v.iter().sum::<usize>() as f64 / v.len() as f64;
        (avg, sorted[v.len() / 2], sorted[(v.len() * 4) / 5])
    };
    let (std_avg, std_median, std_p80) = stats(&counts.standard);
    let (cp_avg, cp_median, cp_p80) = stats(&counts.cprecycle);

    println!(
        "Synthetic office: {} floors, {} APs, {} dBm APs, standard threshold {} dBm, CPRecycle gain {} dB",
        model.floors,
        model.floors * model.aps_per_floor,
        model.tx_power_dbm,
        model.standard_threshold_dbm,
        model.cprecycle_gain_db
    );
    println!("Interfering neighbors per AP:");
    println!("  Standard  — mean {std_avg:.1}, median {std_median}, 80th percentile {std_p80}");
    println!("  CPRecycle — mean {cp_avg:.1}, median {cp_median}, 80th percentile {cp_p80}");

    println!("\nCDF (number of interfering neighbors -> fraction of APs):");
    println!(
        "{:>10} | {:>10} | {:>10}",
        "neighbors", "Standard", "CPRecycle"
    );
    let std_cdf = counts.standard_cdf();
    let cp_cdf = counts.cprecycle_cdf();
    for n in (0..=24).step_by(4) {
        let eval = |curve: &[(f64, f64)]| {
            curve
                .iter()
                .take_while(|(x, _)| *x <= n as f64)
                .last()
                .map(|(_, y)| *y)
                .unwrap_or(0.0)
        };
        println!(
            "{n:>10} | {:>10.2} | {:>10.2}",
            eval(&std_cdf),
            eval(&cp_cdf)
        );
    }
}
