//! Network-level planning: how many interfering neighbors does each AP in a dense
//! office deployment see, and how does CPRecycle's extra interference tolerance change
//! that picture? (A runnable version of the paper's Fig. 13 argument.)
//!
//! ```text
//! cargo run --example network_planning
//! ```
//!
//! Set `CPRECYCLE_METRICS=/path/to/metrics.json` to also dump the summary statistics
//! as a cpjson metrics snapshot.

use cprecycle_repro::obs::MetricsSnapshot;
use cprecycle_repro::scenarios::neighbors::{simulate_neighbors, BuildingModel};
use cprecycle_repro::scenarios::report::{ExampleReport, Series};
use rand::SeedableRng;

fn main() {
    let model = BuildingModel::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2016);
    let counts = simulate_neighbors(&mut rng, &model);

    let stats = |v: &[usize]| {
        let mut sorted = v.to_vec();
        sorted.sort_unstable();
        let avg = v.iter().sum::<usize>() as f64 / v.len() as f64;
        (avg, sorted[v.len() / 2], sorted[(v.len() * 4) / 5])
    };
    let (std_avg, std_median, std_p80) = stats(&counts.standard);
    let (cp_avg, cp_median, cp_p80) = stats(&counts.cprecycle);

    // Sample both CDFs on a shared neighbor-count axis for the table.
    let ns: Vec<f64> = (0..=24).step_by(4).map(|n| n as f64).collect();
    let eval = |curve: &[(f64, f64)], n: f64| {
        curve
            .iter()
            .take_while(|(x, _)| *x <= n)
            .last()
            .map(|(_, y)| *y)
            .unwrap_or(0.0)
    };
    let std_cdf = counts.standard_cdf();
    let cp_cdf = counts.cprecycle_cdf();

    let mut report = ExampleReport::new(
        "Network planning",
        format!(
            "synthetic office: {} floors, {} APs, {} dBm APs, standard threshold {} dBm, CPRecycle gain {} dB",
            model.floors,
            model.floors * model.aps_per_floor,
            model.tx_power_dbm,
            model.standard_threshold_dbm,
            model.cprecycle_gain_db
        ),
        "neighbors",
        "fraction of APs (CDF)",
    );
    report.push_series(Series::new(
        "Standard",
        ns.clone(),
        ns.iter().map(|&n| eval(&std_cdf, n)).collect(),
    ));
    report.push_series(Series::new(
        "CPRecycle",
        ns.clone(),
        ns.iter().map(|&n| eval(&cp_cdf, n)).collect(),
    ));
    report.note(format!(
        "Standard  — mean {std_avg:.1}, median {std_median}, 80th percentile {std_p80}"
    ));
    report.note(format!(
        "CPRecycle — mean {cp_avg:.1}, median {cp_median}, 80th percentile {cp_p80}"
    ));

    let mut metrics = MetricsSnapshot::default();
    metrics.add_counter("aps", (model.floors * model.aps_per_floor) as u64);
    metrics.set_gauge("standard.mean_neighbors", std_avg);
    metrics.set_gauge("standard.p80_neighbors", std_p80 as f64);
    metrics.set_gauge("cprecycle.mean_neighbors", cp_avg);
    metrics.set_gauge("cprecycle.p80_neighbors", cp_p80 as f64);
    report.emit(Some(&metrics));
}
