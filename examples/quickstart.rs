//! Quickstart: build an 802.11g frame, pass it through an interference-free channel,
//! and decode it with both the standard receiver and the CPRecycle receiver.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cprecycle_repro::cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::{Mcs, Transmitter};
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::ofdmphy::rx::StandardReceiver;
use cprecycle_repro::ofdmphy::sync::Synchronizer;
use cprecycle_repro::wirelesschan::awgn::AwgnChannel;
use rand::SeedableRng;

fn main() {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let payload = b"CPRecycle quickstart: the cyclic prefix is worth recycling.".to_vec();

    // Build a frame and add receiver noise.
    let frame = tx.build_frame(&payload, mcs, 0x5D).expect("frame builds");
    println!(
        "Built a {} frame: {} PSDU bytes, {} DATA symbols, {} samples",
        mcs.label(),
        frame.psdu.len(),
        frame.num_data_symbols,
        frame.len()
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut captured = vec![rfdsp::Complex::zero(); 300];
    captured.extend_from_slice(&frame.samples);
    let mut awgn = AwgnChannel::new();
    awgn.add_noise_snr(&mut rng, &mut captured, 25.0)
        .expect("noise");

    // Detect the frame, then decode with both receivers.
    let sync = Synchronizer::new(params.clone());
    let detection = sync
        .detect(&captured)
        .expect("capture long enough")
        .expect("frame detected");
    println!(
        "Synchroniser found the frame at sample {} (true start 300), CFO estimate {:.0} Hz",
        detection.frame_start, detection.cfo_hz
    );

    let standard = StandardReceiver::new(params.clone());
    let cprecycle = CpRecycleReceiver::new(params, CpRecycleConfig::default());
    for (name, result) in [
        ("Standard ", standard.decode_frame(&captured, 300, None)),
        ("CPRecycle", cprecycle.decode_frame(&captured, 300, None)),
    ] {
        match result {
            Ok(decoded) => println!(
                "{name} receiver: CRC {}, payload: {:?}",
                if decoded.crc_ok { "OK" } else { "FAILED" },
                decoded
                    .payload
                    .map(|p| String::from_utf8_lossy(&p).into_owned())
            ),
            Err(e) => println!("{name} receiver failed: {e}"),
        }
    }
}
