//! Quickstart: build an 802.11g frame, pass it through an interference-free channel,
//! and decode it with an instrumented streaming CPRecycle session plus the standard
//! batch receiver.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Set `CPRECYCLE_METRICS=/path/to/metrics.json` to also dump the session's metrics
//! snapshot (counters plus per-stage decode timing) as cpjson.

use cprecycle_repro::cprecycle::{CpRecycleConfig, CpRecycleReceiver, RxEvent, RxSession};
use cprecycle_repro::obs::InMemoryRecorder;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::{Mcs, Transmitter};
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::ofdmphy::rx::StandardReceiver;
use cprecycle_repro::scenarios::report::ExampleReport;
use cprecycle_repro::wirelesschan::awgn::AwgnChannel;
use rand::SeedableRng;

fn main() {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let payload = b"CPRecycle quickstart: the cyclic prefix is worth recycling.".to_vec();

    // Build a frame and add receiver noise.
    let frame = tx.build_frame(&payload, mcs, 0x5D).expect("frame builds");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut captured = vec![rfdsp::Complex::zero(); 300];
    captured.extend_from_slice(&frame.samples);
    let mut awgn = AwgnChannel::new();
    awgn.add_noise_snr(&mut rng, &mut captured, 25.0)
        .expect("noise");

    let mut report = ExampleReport::new(
        "Quickstart",
        format!(
            "{}: {} PSDU bytes, {} DATA symbols, {} samples",
            mcs.label(),
            frame.psdu.len(),
            frame.num_data_symbols,
            frame.len()
        ),
        "",
        "",
    );

    // Stream the capture through an instrumented CPRecycle session: detection,
    // decoding, per-frame events and stage timing all come out of the session.
    let mut session = RxSession::with_recorder(
        CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default()),
        Default::default(),
        InMemoryRecorder::default(),
    );
    for chunk in captured.chunks(1000) {
        session.push(chunk).expect("session accepts samples");
    }
    session.flush().expect("flush");
    for event in session.drain_events() {
        match event {
            RxEvent::FrameDetected { sync } => report.note(format!(
                "CPRecycle session: frame detected at sample {} (true start 300)",
                sync.frame_start
            )),
            RxEvent::FrameDecoded { frame, .. } => report.note(format!(
                "CPRecycle session: CRC {}, payload: {:?}",
                if frame.crc_ok { "OK" } else { "FAILED" },
                frame
                    .payload
                    .map(|p| String::from_utf8_lossy(&p).into_owned())
            )),
            other => report.note(format!("CPRecycle session: {other:?}")),
        }
    }

    // The batch standard receiver on the same capture, for comparison.
    let standard = StandardReceiver::new(params);
    match standard.decode_frame(&captured, 300, None) {
        Ok(decoded) => report.note(format!(
            "Standard receiver:  CRC {}, payload: {:?}",
            if decoded.crc_ok { "OK" } else { "FAILED" },
            decoded
                .payload
                .map(|p| String::from_utf8_lossy(&p).into_owned())
        )),
        Err(e) => report.note(format!("Standard receiver failed: {e}")),
    }

    // The session's metrics snapshot: counters plus per-stage decode timing.
    let metrics = session.metrics_snapshot();
    report.note(format!(
        "session metrics: {} samples pushed, {} frames detected, {} decoded, {} FCS pass",
        metrics.counter("samples_pushed"),
        metrics.counter("frames_detected"),
        metrics.counter("frames_decoded"),
        metrics.counter("fcs_passes"),
    ));
    if let Some(h) = metrics.stage("decide", "Sphere") {
        report.note(format!(
            "sphere decision stage: {} symbols, mean {:.1} us",
            h.count(),
            h.mean().unwrap_or(0.0) / 1000.0
        ));
    }
    report.emit(Some(&metrics));
}
