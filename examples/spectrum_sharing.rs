//! Spectrum sharing / cognitive-radio guard-band sizing.
//!
//! The paper argues (§3.2, Fig. 10) that CPRecycle's sharper effective spectrum mask
//! lets a secondary user be placed much closer to an incumbent for the same packet
//! success rate. This example sweeps the guard band between the victim link and a
//! strong adjacent transmitter and reports the PSR with and without CPRecycle, plus the
//! guard band each receiver needs to reach 90 % PSR.
//!
//! ```text
//! cargo run --release --example spectrum_sharing
//! ```

use cprecycle_repro::cprecycle::CpRecycleConfig;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::interference::AciScenario;
use cprecycle_repro::scenarios::link::{
    packet_success_rate, MonteCarloConfig, ReceiverKind, Scenario,
};

fn main() {
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 16,
        payload_len: 200,
        seed: 7,
    };
    let sir = -20.0;
    let guards_mhz = [0.0, 2.5, 5.0, 7.5, 10.0, 15.0, 20.0];
    println!(
        "Incumbent transmitter 20 dB stronger than the secondary link ({})",
        mcs.label()
    );
    println!(
        "{:>12} | {:>12} | {:>12}",
        "Guard (MHz)", "Standard", "CPRecycle"
    );
    let mut needed = [f64::INFINITY, f64::INFINITY];
    for guard in guards_mhz {
        let scenario = Scenario::Aci(AciScenario {
            sir_db: sir,
            guard_band_hz: guard * 1e6,
            oversample: if guard > 18.0 { 8 } else { 4 },
            ..Default::default()
        });
        let psr = packet_success_rate(&params, mcs, &scenario, &receivers, &config)
            .expect("simulation runs");
        for (slot, value) in needed.iter_mut().zip(&psr) {
            if *value >= 90.0 && guard < *slot {
                *slot = guard;
            }
        }
        println!("{guard:>12.1} | {:>11.1}% | {:>11.1}%", psr[0], psr[1]);
    }
    for (name, g) in ["Standard", "CPRecycle"].iter().zip(needed) {
        match g.is_finite() {
            true => println!("{name}: reaches 90% PSR with a {g:.1} MHz guard band"),
            false => println!("{name}: never reaches 90% PSR in this sweep"),
        }
    }
}
