//! Spectrum sharing / cognitive-radio guard-band sizing.
//!
//! The paper argues (§3.2, Fig. 10) that CPRecycle's sharper effective spectrum mask
//! lets a secondary user be placed much closer to an incumbent for the same packet
//! success rate. This example sweeps the guard band between the victim link and a
//! strong adjacent transmitter and reports the PSR with and without CPRecycle, plus the
//! guard band each receiver needs to reach 90 % PSR.
//!
//! ```text
//! cargo run --release --example spectrum_sharing
//! ```
//!
//! Set `CPRECYCLE_METRICS=/path/to/metrics.json` to also dump the run's telemetry
//! (per-trial timing, per-stage decode spans, worker throughput) as cpjson.

use cprecycle_repro::cprecycle::CpRecycleConfig;
use cprecycle_repro::obs::InMemoryRecorder;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::interference::AciScenario;
use cprecycle_repro::scenarios::link::{
    packet_success_rate_observed, MonteCarloConfig, ReceiverKind, Scenario,
};
use cprecycle_repro::scenarios::report::{ExampleReport, Series};

fn main() {
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 16,
        payload_len: 200,
        seed: 7,
    };
    let recorder = InMemoryRecorder::new(256);
    let sir = -20.0;
    let guards_mhz = [0.0, 2.5, 5.0, 7.5, 10.0, 15.0, 20.0];

    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); receivers.len()];
    let mut needed = [f64::INFINITY, f64::INFINITY];
    for &guard in &guards_mhz {
        let scenario = Scenario::Aci(AciScenario {
            sir_db: sir,
            guard_band_hz: guard * 1e6,
            oversample: if guard > 18.0 { 8 } else { 4 },
            ..Default::default()
        });
        let psr =
            packet_success_rate_observed(&params, mcs, &scenario, &receivers, &config, &recorder)
                .expect("simulation runs");
        for ((curve, slot), value) in curves.iter_mut().zip(needed.iter_mut()).zip(&psr) {
            curve.push(*value);
            if *value >= 90.0 && guard < *slot {
                *slot = guard;
            }
        }
    }

    let mut report = ExampleReport::new(
        "Spectrum sharing",
        format!(
            "incumbent 20 dB stronger than the secondary link, {}",
            mcs.label()
        ),
        "Guard (MHz)",
        "Packet success rate (%)",
    );
    for (kind, curve) in receivers.iter().zip(curves) {
        report.push_series(Series::new(kind.label(), guards_mhz.to_vec(), curve));
    }
    for (kind, g) in receivers.iter().zip(needed) {
        match g.is_finite() {
            true => report.note(format!(
                "{}: reaches 90% PSR with a {g:.1} MHz guard band",
                kind.label()
            )),
            false => report.note(format!(
                "{}: never reaches 90% PSR in this sweep",
                kind.label()
            )),
        }
    }
    report.emit(Some(&recorder.snapshot_now()));
}
