//! # cprecycle-repro — reproduction of *CPRecycle* (CoNEXT 2016)
//!
//! This is the umbrella crate of the workspace: it re-exports the individual crates so
//! downstream users (and the examples and integration tests in this repository) can
//! depend on a single package.
//!
//! * [`rfdsp`] — DSP substrate (complex numbers, FFT, filters, statistics, KDE).
//! * [`wirelesschan`] — baseband channel simulator (AWGN, multipath, CFO, phase noise,
//!   PA nonlinearity, path loss).
//! * [`ofdmphy`] — the IEEE 802.11a/g OFDM PHY (transmitter, standard receiver).
//! * [`cprecycle`] — the paper's contribution: the CPRecycle receiver, its
//!   per-subcarrier kernel-density interference model (behind the pluggable
//!   estimator backends) and fixed-sphere ML decoder, plus the Naive and Oracle
//!   baselines.
//! * [`engine`] — the deterministic parallel Monte-Carlo campaign engine.
//! * [`scenarios`] — the experiment harness reproducing every table and figure.
//! * [`obs`] — zero-overhead instrumentation: stage timers, counters, metrics
//!   snapshots and a bounded event trace, wired through receivers, sessions and the
//!   campaign engine.
//!
//! See the repository README for a walk-through and `DESIGN.md` / `EXPERIMENTS.md` for
//! the system inventory and the per-figure reproduction record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cprecycle;
pub use cprecycle_engine as engine;
pub use cprecycle_scenarios as scenarios;
pub use obs;
pub use ofdmphy;
pub use rfdsp;
pub use wirelesschan;

/// The paper this repository reproduces.
pub const PAPER: &str =
    "CPRecycle: Recycling Cyclic Prefix for Versatile Interference Mitigation in OFDM based Wireless Systems, CoNEXT 2016";

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        let params = crate::ofdmphy::params::OfdmParams::ieee80211ag();
        assert_eq!(params.cp_len, 16);
        assert!(crate::PAPER.contains("CPRecycle"));
    }
}
