//! Integration tests spanning the whole workspace: transmitter → channel simulator →
//! interference scenario → receivers → bit pipeline.

use cprecycle_repro::cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::{Mcs, Transmitter};
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::ofdmphy::rx::{FrameInfo, StandardReceiver};
use cprecycle_repro::ofdmphy::sync::Synchronizer;
use cprecycle_repro::wirelesschan::awgn::AwgnChannel;
use cprecycle_repro::wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};
use rand::{Rng, SeedableRng};

fn payload(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[test]
fn full_link_through_multipath_awgn_and_sync() {
    // TX frame → indoor multipath → AWGN → synchronisation → standard receiver, with no
    // genie information at all. This is the "downstream user" path end to end.
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let rx = StandardReceiver::new(params.clone());
    let sync = Synchronizer::new(params.clone());
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let data = payload(150, 1);

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut successes = 0;
    let trials = 5;
    for t in 0..trials {
        let frame = tx.build_frame(&data, mcs, 0x40 + t as u8).unwrap();
        let pdp = PowerDelayProfile::exponential(4, 1.0).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rician { k_factor: 6.0 }, &mut rng);
        let mut capture = vec![rfdsp::Complex::zero(); 400 + 13 * t];
        capture.extend(chan.apply(&frame.samples));
        capture.extend(vec![rfdsp::Complex::zero(); 200]);
        let mut awgn = AwgnChannel::new();
        awgn.add_noise_snr(&mut rng, &mut capture, 28.0).unwrap();

        if let Some(found) = sync.detect(&capture).unwrap() {
            if let Ok(decoded) = rx.decode_frame(&capture, found.frame_start, None) {
                if decoded.crc_ok && decoded.payload.as_deref() == Some(&data[..]) {
                    successes += 1;
                }
            }
        }
    }
    assert!(
        successes >= 4,
        "only {successes}/{trials} packets decoded through sync + multipath + AWGN"
    );
}

#[test]
fn cprecycle_matches_standard_receiver_in_benign_conditions() {
    // Without interference the two receivers must agree (CPRecycle may never be worse
    // in the operating region where the standard receiver works).
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let standard = StandardReceiver::new(params.clone());
    let recycler = CpRecycleReceiver::new(params, CpRecycleConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut awgn = AwgnChannel::new();

    for (i, mcs) in Mcs::paper_set().into_iter().enumerate() {
        let data = payload(200, 10 + i as u64);
        let frame = tx.build_frame(&data, mcs, 0x21).unwrap();
        let mut noisy = frame.samples.clone();
        awgn.add_noise_snr(&mut rng, &mut noisy, 30.0).unwrap();
        let info = FrameInfo {
            mcs,
            psdu_len: data.len() + 4,
        };
        let a = standard.decode_frame(&noisy, 0, Some(info)).unwrap();
        let b = recycler.decode_frame(&noisy, 0, Some(info)).unwrap();
        assert!(a.crc_ok, "standard fails at 30 dB SNR for {}", mcs.label());
        assert!(b.crc_ok, "CPRecycle fails at 30 dB SNR for {}", mcs.label());
        assert_eq!(a.psdu, b.psdu);
    }
}

#[test]
fn isi_free_detection_feeds_the_receiver_configuration() {
    // Detect the ISI-free region on a received burst and configure CPRecycle with it —
    // the deployment flow §6 describes.
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let data = payload(120, 20);
    let frame = tx.build_frame(&data, mcs, 0x5D).unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let pdp = PowerDelayProfile::from_taps(vec![(0, 1.0), (1, 0.4), (3, 0.2)]).unwrap();
    let chan = MultipathChannel::realize(&pdp, FadingKind::Static, &mut rng);
    let mut received = chan.apply(&frame.samples);
    let mut awgn = AwgnChannel::new();
    awgn.add_noise_snr(&mut rng, &mut received, 28.0).unwrap();

    let estimate = cprecycle_repro::cprecycle::isi_free::detect_isi_free_region(
        &params,
        &received,
        frame.data_start,
        frame.num_data_symbols.min(8),
        0.9,
    )
    .unwrap();
    assert!(
        estimate.isi_free_samples >= 10,
        "detected {}",
        estimate.isi_free_samples
    );

    let config = CpRecycleConfig::builder()
        .isi_free_samples(Some(estimate.isi_free_samples))
        .build();
    let rx = CpRecycleReceiver::new(params, config);
    assert!(rx.effective_segments() <= estimate.num_segments());
    let decoded = rx
        .decode_frame(
            &received,
            0,
            Some(FrameInfo {
                mcs,
                psdu_len: data.len() + 4,
            }),
        )
        .unwrap();
    assert!(decoded.crc_ok);
    assert_eq!(decoded.payload.as_deref(), Some(&data[..]));
}
