//! Integration tests that exercise the figure drivers end to end at smoke scale and
//! check the qualitative relationships the paper reports.

use cprecycle_repro::cprecycle::CpRecycleConfig;
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::Mcs;
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::scenarios::figures::{self, FigureScale};
use cprecycle_repro::scenarios::interference::{AciScenario, CciScenario};
use cprecycle_repro::scenarios::link::{
    packet_success_rate, MonteCarloConfig, ReceiverKind, Scenario,
};

#[test]
fn table1_reproduces_the_paper_rows() {
    let t = figures::table1();
    let table = t.to_table();
    assert!(table.contains("Table 1"));
    // 20 MHz → 64/16/0.8 µs; 160 MHz → 512/128/6.4 µs.
    assert_eq!(t.series[0].y[0], 64.0);
    assert_eq!(t.series[1].y[0], 16.0);
    assert_eq!(t.series[1].y[3], 128.0);
    assert!((t.series[3].y[3] - 6.4).abs() < 1e-9);
}

#[test]
fn figure4_diagnostics_run_at_smoke_scale() {
    let scale = FigureScale::smoke();
    let a = figures::fig4a(&scale).unwrap();
    assert_eq!(a.series.len(), 2);
    let b = figures::fig4b(&scale).unwrap();
    assert_eq!(b.series.len(), 3);
    let c = figures::fig4c(&scale).unwrap();
    assert_eq!(c.series[0].x.len(), 5);
}

#[test]
fn oracle_dominates_standard_in_interference_power_terms() {
    // The Fig. 4a relationship: per subcarrier, the oracle's chosen segment never sees
    // more interference than the standard window, and on average sees clearly less.
    let scale = FigureScale::smoke();
    let r = figures::fig4a(&scale).unwrap();
    let standard = &r.series[0].y;
    let oracle = &r.series[1].y;
    let mut advantage = 0.0;
    for (s, o) in standard.iter().zip(oracle) {
        assert!(
            *o <= *s + 1e-6,
            "oracle must not exceed standard: {o} vs {s}"
        );
        advantage += s - o;
    }
    assert!(
        advantage / standard.len() as f64 > 3.0,
        "mean oracle advantage too small"
    );
}

#[test]
fn cci_receiver_ordering_matches_the_paper() {
    // At a co-channel operating point in the transition region, the ordering
    // Standard ≤ CPRecycle must hold (Fig. 11's qualitative claim).
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    let config = MonteCarloConfig {
        packets: 8,
        payload_len: 80,
        seed: 31,
    };
    let scenario = Scenario::Cci(CciScenario {
        sir_db: 4.0,
        ..Default::default()
    });
    let psr = packet_success_rate(&params, mcs, &scenario, &receivers, &config).unwrap();
    assert!(
        psr[1] >= psr[0],
        "CPRecycle PSR {} must not be below the standard receiver's {}",
        psr[1],
        psr[0]
    );
}

#[test]
fn guard_band_helps_both_receivers_under_aci() {
    // Fig. 5 / Fig. 10 monotonicity: a larger guard band can only help.
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let receivers = vec![ReceiverKind::Standard];
    let config = MonteCarloConfig {
        packets: 6,
        payload_len: 80,
        seed: 17,
    };
    let psr_at = |guard_mhz: f64| {
        let scenario = Scenario::Aci(AciScenario {
            sir_db: -20.0,
            guard_band_hz: guard_mhz * 1e6,
            channel_offset_hz: if guard_mhz < 0.0 { Some(15e6) } else { None },
            ..Default::default()
        });
        packet_success_rate(&params, mcs, &scenario, &receivers, &config).unwrap()[0]
    };
    let overlapping = psr_at(-1.0); // overlapping channels (15 MHz offset)
    let wide = psr_at(15.0);
    assert!(
        wide >= overlapping,
        "a 15 MHz guard band ({wide}%) must not be worse than overlapping channels ({overlapping}%)"
    );
    assert!(
        wide >= 50.0,
        "with a 15 MHz guard band most packets should survive, got {wide}%"
    );
}

#[test]
fn more_segments_do_not_hurt_packet_success() {
    // Fig. 14's qualitative claim: using more of the CP only helps (and saturates).
    // QPSK 1/2 at SIR −12 dB sits in the transition region where the extra segments
    // make a decisive difference (P = 1 loses ~40% of packets, P = 16 recovers nearly
    // all), so the ordering is robust at a small trial count. Retuned from −14 dB
    // when `CpRecycleConfig` gained the estimator-backend field: the backend is part
    // of every campaign point key, so the deterministic seed streams shifted (exactly
    // as in the PR 3 decision-stage retune).
    let params = OfdmParams::ieee80211ag();
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let config = MonteCarloConfig {
        packets: 12,
        payload_len: 80,
        seed: 23,
    };
    let scenario = Scenario::Aci(AciScenario {
        sir_db: -12.0,
        channel_offset_hz: Some(15e6),
        ..Default::default()
    });
    let psr_with = |p: usize| {
        let receivers = vec![ReceiverKind::CpRecycle(CpRecycleConfig::with_segments(p))];
        packet_success_rate(&params, mcs, &scenario, &receivers, &config).unwrap()[0]
    };
    let one = psr_with(1);
    let sixteen = psr_with(16);
    assert!(
        sixteen >= one,
        "16 segments ({sixteen}%) must not be worse than 1 segment ({one}%)"
    );
    assert!(
        sixteen >= 80.0,
        "the full CP should recover most packets here, got {sixteen}%"
    );
}

#[test]
fn grid_backend_matches_exact_at_the_fig14_operating_point() {
    // Acceptance pin for the pluggable-estimator refactor: at the Fig. 14
    // reproduction operating point (QPSK 1/2, single ACI interferer 15 MHz away,
    // SIR −12 dB, P = 16) the precomputed-grid backend must show BER/PSR parity with
    // the exact KDE backend — both arms decode the *same* captures trial-for-trial,
    // and their 95% Wilson intervals must overlap.
    use cprecycle_repro::cprecycle::ModelBackend;
    use cprecycle_repro::engine::{CampaignConfig, RunOptions};
    use cprecycle_repro::scenarios::link::{run_link_campaign, LinkPoint};

    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let point = LinkPoint::new(
        "models parity",
        mcs,
        Scenario::Aci(AciScenario {
            sir_db: -12.0,
            channel_offset_hz: Some(15e6),
            ..Default::default()
        }),
        vec![
            ReceiverKind::with_model(ModelBackend::ExactKde),
            ReceiverKind::with_model(ModelBackend::GridKde),
        ],
    )
    .payload(80);
    let result = run_link_campaign(
        &CampaignConfig::new("models parity", 23).trials(12),
        std::slice::from_ref(&point),
        &RunOptions::default(),
    )
    .unwrap();
    let arms = &result.points[0].arms;
    let (exact_lo, exact_hi) = arms[0].wilson_ci95();
    let (grid_lo, grid_hi) = arms[1].wilson_ci95();
    assert!(
        exact_lo <= grid_hi && grid_lo <= exact_hi,
        "grid backend [{grid_lo:.3}, {grid_hi:.3}] diverged from exact [{exact_lo:.3}, {exact_hi:.3}]"
    );
    // Arm-for-arm parity on the same captures: the grid may flip at most a couple of
    // razor-thin packets relative to the reference.
    let gap = (arms[0].successes as i64 - arms[1].successes as i64).abs();
    assert!(
        gap <= 2,
        "grid backend flipped {gap} packets (exact {}/{} vs grid {}/{})",
        arms[0].successes,
        arms[0].trials,
        arms[1].successes,
        arms[1].trials
    );
    // The mean uncoded symbol-error metric must agree closely too (BER parity, not
    // just packet-level agreement).
    let ber_gap = (arms[0].metric_mean() - arms[1].metric_mean()).abs();
    assert!(ber_gap < 0.01, "mean SER gap {ber_gap} too large");
}

#[test]
fn neighbor_cdf_shifts_left_with_cprecycle() {
    let r = figures::fig13(&FigureScale::smoke());
    let median = |s: &cprecycle_repro::scenarios::report::Series| {
        let idx = s.y.iter().position(|v| *v >= 0.5).unwrap();
        s.x[idx]
    };
    assert!(median(&r.series[1]) <= median(&r.series[0]));
}
