//! Integration tests for the streaming-receiver redesign at the Fig. 14 reproduction
//! operating point (QPSK 1/2, overlapping 802.11 channel 15 MHz away, SIR −12 dB —
//! the point `tests/reproduction.rs` pins for the model backends).

use cprecycle_repro::cprecycle::{
    CpRecycleConfig, CpRecycleReceiver, FrameReceiver, ModelPersistence,
};
use cprecycle_repro::engine::{CampaignConfig, RunOptions};
use cprecycle_repro::ofdmphy::convcode::CodeRate;
use cprecycle_repro::ofdmphy::frame::{Mcs, Transmitter};
use cprecycle_repro::ofdmphy::modulation::Modulation;
use cprecycle_repro::ofdmphy::params::OfdmParams;
use cprecycle_repro::ofdmphy::rx::FrameInfo;
use cprecycle_repro::scenarios::interference::AciScenario;
use cprecycle_repro::scenarios::link::Scenario;
use cprecycle_repro::scenarios::stream::{run_stream_campaign, StreamArm, StreamPoint};
use rand::SeedableRng;

fn op_point_scenario() -> AciScenario {
    AciScenario {
        sir_db: -12.0,
        channel_offset_hz: Some(15e6),
        ..Default::default()
    }
}

/// Rolling-vs-PerFrame persistence regression, genie-timed so only the model policy
/// differs: across a run of frames at the Fig. 14 operating point, keeping the model
/// and feeding each frame's preamble through the incremental update must perform at
/// least as well as retraining from scratch every frame (the pooled density has
/// strictly more preamble evidence), up to a small Monte-Carlo wobble.
#[test]
fn rolling_persistence_matches_per_frame_at_the_fig14_op_point() {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let scenario = op_point_scenario();
    let rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x14F1);

    let frames = 12;
    let mut rolling = rx.new_stream(ModelPersistence::Rolling);
    let mut per_frame = rx.new_stream(ModelPersistence::PerFrame);
    let mut rolling_ok = 0usize;
    let mut per_frame_ok = 0usize;
    for i in 0..frames {
        let payload = vec![0xA0 + i as u8; 120];
        let frame = tx.build_frame(&payload, mcs, 0x5D - i as u8).unwrap();
        let output = scenario.render(&mut rng, &params, &frame.samples).unwrap();
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        rx.begin_frame(&mut rolling);
        let r = rx
            .decode_frame_session(&output.received, 0, Some(info), None, &mut rolling)
            .unwrap();
        rx.begin_frame(&mut per_frame);
        let p = rx
            .decode_frame_session(&output.received, 0, Some(info), None, &mut per_frame)
            .unwrap();
        rolling_ok += r.crc_ok as usize;
        per_frame_ok += p.crc_ok as usize;
    }
    // Regression bound first (the informative failure): rolling must not collapse
    // relative to per-frame retraining.
    assert!(
        rolling_ok + 2 >= per_frame_ok,
        "rolling {rolling_ok}/{frames} fell behind per-frame {per_frame_ok}/{frames}"
    );
    // The operating point itself must be decisive enough to mean something.
    assert!(
        per_frame_ok >= frames / 2,
        "op point too hard: per-frame {per_frame_ok}/{frames}"
    );
    // The rolling model absorbed two LTF symbols per CRC-passing frame (it exists
    // because at least one frame passed, guaranteed by the op-point assert above).
    assert!(rolling_ok > 0, "no rolling frame passed CRC");
    assert_eq!(
        rolling.model().unwrap().num_preambles(),
        2 * rolling_ok,
        "rolling model preamble count"
    );
    assert_eq!(per_frame.model().unwrap().num_preambles(), 2);
}

/// The full bursty-traffic acceptance shape: a stream campaign at the Fig. 14
/// operating point (≥ 3 back-to-back frames per trial, random gaps) runs end-to-end
/// through the engine with per-frame and aggregate PSR reported for every arm —
/// over-the-air detection, SIGNAL decode and all.
#[test]
fn bursty_campaign_at_the_op_point_reports_per_frame_psr() {
    let point = StreamPoint::new(
        "fig14 op point",
        Scenario::Aci(op_point_scenario()),
        vec![
            StreamArm::Standard,
            StreamArm::cprecycle(ModelPersistence::PerFrame),
            StreamArm::cprecycle(ModelPersistence::Rolling),
        ],
    )
    .payload(60)
    .frames(3);
    let result = run_stream_campaign(
        &CampaignConfig::new("streaming-op-point", 0xF14).trials(4),
        std::slice::from_ref(&point),
        &RunOptions::default(),
    )
    .unwrap();
    let arms = &result.points[0].arms;
    assert_eq!(arms.len(), 3);
    for arm in arms {
        // Per-frame PSR is the campaign mean of the in-order recovered fraction.
        assert!(
            (0.0..=1.0).contains(&arm.metric_mean()),
            "{}: per-frame PSR out of range",
            arm.label
        );
        assert!(arm.trials == 4, "{}: trial count", arm.label);
    }
    // At SIR −12 dB with threshold 0.45 the CPRecycle session recovers a clear
    // majority of frames (detection-limited, not decision-limited).
    let cp_per_frame = arms[1].metric_mean();
    assert!(
        cp_per_frame >= 0.5,
        "CPRecycle per-frame PSR {cp_per_frame} too low at the op point"
    );
}
