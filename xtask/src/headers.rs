//! The lint-header hardening pass: every crate root pins its unsafe policy.
//!
//! Default policy is `#![forbid(unsafe_code)]` — forbid cannot be overridden
//! by an inner `#[allow]`, so it is a whole-crate proof of zero unsafe. The
//! few crates whose job *is* unsafe (the lock-free ring in `engine`, the AVX2
//! kernels in `rfdsp`, the checker shims in `conc`) instead carry
//! `#![deny(unsafe_code)]` (each site opts in with a scoped `#[allow]`)
//! **plus** `#![deny(unsafe_op_in_unsafe_fn)]` so `unsafe fn` bodies still
//! need explicit `unsafe {}` blocks around each dangerous operation.

use std::path::Path;

use crate::walk;

/// Workspace-relative crate directories permitted to contain unsafe code.
/// Everything else must forbid it outright.
const UNSAFE_CRATES: &[&str] = &["crates/engine", "crates/rfdsp", "crates/compat/conc"];

pub struct HeaderReport {
    pub checked: usize,
    pub violations: Vec<String>,
}

/// Checks the crate-root headers of every workspace package.
pub fn check(root: &Path) -> HeaderReport {
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for manifest in walk::crate_manifests(root) {
        let crate_dir = manifest.parent().expect("manifest has a directory");
        let rel_dir = crate_dir
            .strip_prefix(root)
            .unwrap_or(crate_dir)
            .to_string_lossy()
            .replace('\\', "/");
        let unsafe_allowed = UNSAFE_CRATES.contains(&rel_dir.as_str());
        for entry in ["src/lib.rs", "src/main.rs"] {
            let path = crate_dir.join(entry);
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            checked += 1;
            let rel = format!("{rel_dir}/{entry}")
                .trim_start_matches('/')
                .to_string();
            check_root(&rel, &src, unsafe_allowed, &mut violations);
        }
    }
    HeaderReport {
        checked,
        violations,
    }
}

fn check_root(rel: &str, src: &str, unsafe_allowed: bool, violations: &mut Vec<String>) {
    let has = |attr: &str| src.lines().any(|l| l.trim() == attr);
    if unsafe_allowed {
        if !has("#![deny(unsafe_code)]") {
            violations.push(format!(
                "{rel}: unsafe-bearing crate must carry #![deny(unsafe_code)] (scoped allows per site)"
            ));
        }
        if !has("#![deny(unsafe_op_in_unsafe_fn)]") {
            violations.push(format!(
                "{rel}: unsafe-bearing crate must carry #![deny(unsafe_op_in_unsafe_fn)]"
            ));
        }
    } else if !has("#![forbid(unsafe_code)]") {
        violations.push(format!("{rel}: crate must carry #![forbid(unsafe_code)]"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbid_policy_flags_missing_header() {
        let mut v = Vec::new();
        check_root(
            "crates/obs/src/lib.rs",
            "//! docs\npub fn f() {}\n",
            false,
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("forbid(unsafe_code)"));
    }

    #[test]
    fn forbid_policy_accepts_header() {
        let mut v = Vec::new();
        check_root(
            "crates/obs/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n",
            false,
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unsafe_crate_needs_both_deny_headers() {
        let mut v = Vec::new();
        check_root(
            "crates/engine/src/lib.rs",
            "#![deny(unsafe_code)]\n",
            true,
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("unsafe_op_in_unsafe_fn"));
    }

    #[test]
    fn unsafe_crate_with_both_headers_passes() {
        let mut v = Vec::new();
        check_root(
            "crates/engine/src/lib.rs",
            "#![deny(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n",
            true,
            &mut v,
        );
        assert!(v.is_empty());
    }
}
