//! The unsafe-inventory pass: find every `unsafe` occurrence and check it is
//! justified.
//!
//! Policy (enforced; the JSON report records every site either way):
//!
//! * `unsafe` **blocks**, **impls** and **traits** need a `// SAFETY:` comment
//!   in the comment block immediately above the site (attribute lines and
//!   sibling `unsafe impl` lines in between are skipped, so one comment may
//!   cover a `Send`/`Sync` pair), or on the same line.
//! * `unsafe fn` declarations may instead carry a `# Safety` section in their
//!   doc comment — the idiomatic place for a caller-facing contract.

use crate::mask::mask;

/// One `unsafe` occurrence in the tree.
#[derive(Debug)]
pub struct UnsafeSite {
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    pub kind: UnsafeKind,
    pub documented: bool,
    /// The trimmed source line, for the report.
    pub context: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

impl std::fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Trait => "unsafe trait",
        })
    }
}

/// Scans one file; `rel` is its workspace-relative path for the report.
pub fn scan_file(rel: &str, src: &str) -> Vec<UnsafeSite> {
    let masked = mask(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut sites = Vec::new();
    for (idx, pos) in keyword_positions(&masked) {
        let kind = classify(&masked, pos);
        let documented = is_documented(&raw_lines, idx, kind);
        sites.push(UnsafeSite {
            file: rel.to_string(),
            line: idx + 1,
            kind,
            documented,
            context: raw_lines.get(idx).map_or("", |l| l.trim()).to_string(),
        });
    }
    sites
}

/// Yields `(line_index, byte_offset)` for each `unsafe` keyword in the masked
/// source (word-boundary matches only).
fn keyword_positions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut search = 0usize;
    let mut line_start_scan = 0usize;
    while let Some(found) = masked[search..].find("unsafe") {
        let pos = search + found;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + "unsafe".len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            line += masked[line_start_scan..pos].matches('\n').count();
            line_start_scan = pos;
            out.push((line, pos));
        }
        search = after;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Classifies an `unsafe` keyword by the next code token after it.
fn classify(masked: &str, pos: usize) -> UnsafeKind {
    let rest = masked[pos + "unsafe".len()..].trim_start();
    if rest.starts_with("impl") {
        UnsafeKind::Impl
    } else if rest.starts_with("trait") {
        UnsafeKind::Trait
    } else if rest.starts_with("fn") || rest.starts_with("extern") || rest.starts_with("async") {
        UnsafeKind::Fn
    } else {
        UnsafeKind::Block
    }
}

/// Whether the site at `line_idx` (0-based) carries a SAFETY justification.
fn is_documented(raw_lines: &[&str], line_idx: usize, kind: UnsafeKind) -> bool {
    // Same-line trailing comment: `unsafe { ... } // SAFETY: ...`.
    if raw_lines
        .get(line_idx)
        .is_some_and(|l| l.contains("SAFETY:"))
    {
        return true;
    }
    // Scan upward: skip attributes and sibling `unsafe impl` lines, then
    // require SAFETY: (or, for fns, `# Safety`) inside the contiguous comment
    // block directly above.
    let mut idx = line_idx;
    while idx > 0 {
        idx -= 1;
        let t = raw_lines[idx].trim();
        if t.starts_with("#[") || t.starts_with("#![") {
            continue; // attribute between comment and item
        }
        if t.starts_with("unsafe impl") || (kind == UnsafeKind::Impl && t.starts_with("unsafe ")) {
            continue; // one comment may cover a Send/Sync impl pair
        }
        if is_comment_line(t) {
            // Collect the whole contiguous comment block.
            let mut block_top = idx;
            while block_top > 0 && is_comment_line(raw_lines[block_top - 1].trim()) {
                block_top -= 1;
            }
            return raw_lines[block_top..=idx].iter().any(|l| {
                l.contains("SAFETY:") || (kind == UnsafeKind::Fn && l.contains("# Safety"))
            });
        }
        return false; // plain code directly above: undocumented
    }
    false
}

fn is_comment_line(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("/*") || trimmed.starts_with('*')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(UnsafeKind, bool)> {
        scan_file("fixture.rs", src)
            .into_iter()
            .map(|s| (s.kind, s.documented))
            .collect()
    }

    #[test]
    fn documented_block_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert_eq!(kinds(src), vec![(UnsafeKind::Block, true)]);
    }

    #[test]
    fn undocumented_block_is_flagged() {
        // The acceptance-criteria fixture: introducing an unsafe block with no
        // SAFETY comment must produce a violation.
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(kinds(src), vec![(UnsafeKind::Block, false)]);
    }

    #[test]
    fn safety_comment_skips_attributes() {
        let src = "// SAFETY: AVX2 verified at runtime.\n#[allow(unsafe_code)]\nunsafe { intrinsics() }\n";
        assert_eq!(kinds(src), vec![(UnsafeKind::Block, true)]);
    }

    #[test]
    fn one_comment_covers_a_send_sync_pair() {
        let src = "// SAFETY: cells are owned by single claimants.\nunsafe impl<T: Send> Send for Ring<T> {}\nunsafe impl<T: Send> Sync for Ring<T> {}\n";
        assert_eq!(
            kinds(src),
            vec![(UnsafeKind::Impl, true), (UnsafeKind::Impl, true)]
        );
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let src = "/// Reads the slot.\n///\n/// # Safety\n///\n/// Caller must hold the claim.\n#[target_feature(enable = \"avx2\")]\nunsafe fn read_slot() {}\n";
        assert_eq!(kinds(src), vec![(UnsafeKind::Fn, true)]);
    }

    #[test]
    fn unsafe_fn_without_contract_is_flagged() {
        let src = "/// Reads the slot fast.\nunsafe fn read_slot() {}\n";
        assert_eq!(kinds(src), vec![(UnsafeKind::Fn, false)]);
    }

    #[test]
    fn prose_and_strings_do_not_count_as_sites() {
        let src = "// this crate needs no `unsafe` anywhere\nlet s = \"unsafe\";\nlet ok = true;\n";
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn classifies_trait_and_extern_fn() {
        let src = "// SAFETY: contract documented on the trait.\nunsafe trait Zeroable {}\n// SAFETY: ffi contract.\nunsafe extern \"C\" fn cb() {}\n";
        assert_eq!(
            kinds(src),
            vec![(UnsafeKind::Trait, true), (UnsafeKind::Fn, true)]
        );
    }
}
