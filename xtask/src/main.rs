//! Workspace automation (`cargo xtask <command>`).
//!
//! The only command today is `lint`: the static-analysis gate CI runs on every
//! push, covering what rustc's lint levels cannot express on their own:
//!
//! * **unsafe inventory** ([`inventory`]) — every `unsafe` occurrence in the
//!   tree (blocks, fns, impls, traits) must justify itself with a `// SAFETY:`
//!   comment (or a `# Safety` doc section for `unsafe fn`). The full inventory
//!   is emitted as machine-readable JSON so reviewers can diff the unsafe
//!   surface between releases; an undocumented site fails the build.
//! * **atomic-ordering audit** ([`ordering`]) — `Ordering::Relaxed` is allowed
//!   only in the allowlisted pure-counter/protocol modules and in test code.
//!   A Relaxed sneaking into new concurrent logic fails the build and must
//!   either be justified (add the module to the allowlist in review) or fixed.
//! * **lint-header hardening** ([`headers`]) — every crate root must pin its
//!   unsafe policy: `#![forbid(unsafe_code)]` by default, or for the few
//!   crates with a justified unsafe core (`engine`, `rfdsp`, `conc`) the pair
//!   `#![deny(unsafe_code)]` + `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Run locally with `cargo xtask lint`; CI uploads the JSON report
//! (`UNSAFE_inventory.json`) as an artifact next to the `BENCH_*.json` files.

#![forbid(unsafe_code)]

mod headers;
mod inventory;
mod mask;
mod ordering;
mod walk;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut report_path: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--report" => match args.next() {
                        Some(p) => report_path = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("--report requires a path");
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!("unknown lint option: {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            lint(report_path)
        }
        Some(other) => {
            eprintln!("unknown xtask command: {other}\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--report UNSAFE_inventory.json]";

/// Locates the workspace root (the directory holding the top-level
/// `Cargo.toml` with a `[workspace]` table) from the xtask binary's own
/// manifest dir, so the command works from any CWD inside the tree.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf()
}

fn lint(report_path: Option<PathBuf>) -> ExitCode {
    let root = workspace_root();
    let files = walk::rust_sources(&root);
    println!("xtask lint: scanning {} Rust sources", files.len());

    let mut failed = false;

    // Pass 1: unsafe inventory.
    let mut entries = Vec::new();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        entries.extend(inventory::scan_file(&rel, &src));
    }
    let undocumented: Vec<_> = entries.iter().filter(|e| !e.documented).collect();
    println!(
        "  unsafe inventory: {} sites, {} undocumented",
        entries.len(),
        undocumented.len()
    );
    for e in &undocumented {
        eprintln!(
            "  error[unsafe-inventory]: {}:{} `{}` has no SAFETY justification: {}",
            e.file, e.line, e.kind, e.context
        );
    }
    failed |= !undocumented.is_empty();

    // Pass 2: atomic-ordering audit.
    let mut relaxed_violations = Vec::new();
    let mut relaxed_total = 0usize;
    for file in &files {
        let src = std::fs::read_to_string(file).expect("read checked in pass 1");
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let found = ordering::scan_file(&rel, &src);
        relaxed_total += found.total;
        relaxed_violations.extend(found.violations);
    }
    println!(
        "  atomic-ordering audit: {} Relaxed sites, {} outside the allowlist",
        relaxed_total,
        relaxed_violations.len()
    );
    for v in &relaxed_violations {
        eprintln!(
            "  error[ordering-audit]: {}:{} Ordering::Relaxed outside the pure-counter allowlist: {}",
            v.file, v.line, v.context
        );
    }
    failed |= !relaxed_violations.is_empty();

    // Pass 3: lint-header hardening.
    let header_violations = headers::check(&root);
    println!(
        "  lint headers: {} crate roots checked, {} violations",
        header_violations.checked,
        header_violations.violations.len()
    );
    for v in &header_violations.violations {
        eprintln!("  error[lint-headers]: {v}");
    }
    failed |= !header_violations.violations.is_empty();

    // Machine-readable report (written even on failure, so CI uploads the
    // evidence for the red build too).
    if let Some(path) = report_path {
        let report = report_json(&entries, &relaxed_violations, &header_violations);
        if let Err(e) = std::fs::write(&path, report.pretty() + "\n") {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  report written to {}", path.display());
    }

    if failed {
        eprintln!("xtask lint: FAILED");
        ExitCode::FAILURE
    } else {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    }
}

fn report_json(
    entries: &[inventory::UnsafeSite],
    relaxed: &[ordering::Violation],
    headers: &headers::HeaderReport,
) -> cpjson::Value {
    use cpjson::{object, Value};
    let sites: Vec<Value> = entries
        .iter()
        .map(|e| {
            object(vec![
                ("file", Value::Str(e.file.clone())),
                ("line", Value::Int(e.line as i128)),
                ("kind", Value::Str(e.kind.to_string())),
                ("documented", Value::Bool(e.documented)),
                ("context", Value::Str(e.context.clone())),
            ])
        })
        .collect();
    let ordering: Vec<Value> = relaxed
        .iter()
        .map(|v| {
            object(vec![
                ("file", Value::Str(v.file.clone())),
                ("line", Value::Int(v.line as i128)),
                ("context", Value::Str(v.context.clone())),
            ])
        })
        .collect();
    let header_violations: Vec<Value> = headers
        .violations
        .iter()
        .map(|v| Value::Str(v.clone()))
        .collect();
    object(vec![
        ("tool", Value::Str("cargo xtask lint".into())),
        (
            "unsafe_inventory",
            object(vec![
                ("total", Value::Int(sites.len() as i128)),
                (
                    "undocumented",
                    Value::Int(entries.iter().filter(|e| !e.documented).count() as i128),
                ),
                ("sites", Value::Array(sites)),
            ]),
        ),
        (
            "ordering_audit",
            object(vec![
                ("violations", Value::Array(ordering)),
                (
                    "allowlist",
                    Value::Array(
                        ordering::RELAXED_ALLOWLIST
                            .iter()
                            .map(|p| Value::Str((*p).into()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "lint_headers",
            object(vec![
                ("checked", Value::Int(headers.checked as i128)),
                ("violations", Value::Array(header_violations)),
            ]),
        ),
    ])
}
