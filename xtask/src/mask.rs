//! Comment/string masking for the source scanners.
//!
//! The lint passes match tokens (`unsafe`, `Ordering::Relaxed`) against a
//! *masked* copy of each source file in which comments, string literals and
//! char literals are replaced by spaces — byte-for-byte the same length, so a
//! match in the masked text maps to the identical line and column in the
//! original. This is a lexer, not a parser: it tracks just enough Rust lexical
//! structure (nested block comments, raw strings with `#` fences, byte
//! strings, char literals vs lifetimes) to never mistake prose for code.

/// Replaces comments and string/char literal *contents* with spaces,
/// preserving length and newlines exactly.
pub fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    // Newlines always survive so line numbers map 1:1.
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out[i] = b'\n';
        }
    }
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: masked through end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting like rustc.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(bytes, i),
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                // Advance past the `r`/`b`/`br` prefix to the quote or fence.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'"') || bytes.get(j) == Some(&b'#') {
                } else if bytes[i] == b'b'
                    && (bytes.get(j) == Some(&b'r'))
                    && (bytes.get(j + 1) == Some(&b'"') || bytes.get(j + 1) == Some(&b'#'))
                {
                    j += 1;
                } else {
                    // `b'x'` byte char: fall through to char handling below.
                    out[i] = bytes[i];
                    i += 1;
                    continue;
                }
                let raw = bytes[i] == b'r' || bytes.get(i + 1) == Some(&b'r');
                if raw {
                    i = skip_raw_string(bytes, j);
                } else {
                    i = skip_string(bytes, j);
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    i = end;
                } else {
                    // A lifetime (`'a`) — plain code, copy through.
                    out[i] = b'\'';
                    i += 1;
                }
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a normal (escaping) string starting at the opening quote index;
/// returns the index just past the closing quote.
fn skip_string(bytes: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose `#` fence (possibly empty) starts at `fence`;
/// returns the index just past the closing quote+fence.
fn skip_raw_string(bytes: &[u8], fence: usize) -> usize {
    let mut hashes = 0usize;
    let mut i = fence;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // not actually a raw string; treat prefix as code
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' && bytes[i + 1..].len() >= hashes {
            let close = &bytes[i + 1..i + 1 + hashes];
            if close.iter().all(|&b| b == b'#') {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// If a char literal starts at `open` (as opposed to a lifetime), returns the
/// index just past its closing quote.
fn char_literal_end(bytes: &[u8], open: usize) -> Option<usize> {
    match bytes.get(open + 1)? {
        b'\\' => {
            // Escaped char: scan to the next unescaped quote.
            let mut i = open + 2;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => return Some(i + 1),
                    _ => i += 1,
                }
            }
            None
        }
        _ => {
            // `'x'` is a char; `'x` followed by anything else is a lifetime.
            // Multi-byte UTF-8 chars: find the next quote within 5 bytes.
            let limit = (open + 6).min(bytes.len());
            (open + 2..limit)
                .find(|&j| bytes[j] == b'\'')
                .map(|j| j + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask("let x = 1; // unsafe prose\n/* unsafe /* nested */ still */ let y;");
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y;"));
        assert!(!m.contains("unsafe"));
        assert!(!m.contains("nested"));
    }

    #[test]
    fn masks_strings_and_preserves_length_and_lines() {
        let src = "let s = \"unsafe { } // not code\";\nlet t = 2;";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(!m.contains("unsafe"));
        assert!(m.contains("let t = 2;"));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let m = mask(r##"let s = r#"unsafe " quote"# ; let b = b"unsafe"; go()"##);
        assert!(!m.contains("unsafe"));
        assert!(m.contains("go()"));
    }

    #[test]
    fn distinguishes_lifetimes_from_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'u'; let d = '\\n'; done() }";
        let m = mask(src);
        assert!(m.contains("fn f<'a>(x: &'a str)"), "lifetimes survive: {m}");
        assert!(!m.contains("'u'"));
        assert!(m.contains("done()"));
    }

    #[test]
    fn code_tokens_survive_masking() {
        let src = "unsafe { ptr.read() } // SAFETY: checked above";
        let m = mask(src);
        assert!(m.contains("unsafe { ptr.read() }"));
        assert!(!m.contains("SAFETY"));
    }
}
