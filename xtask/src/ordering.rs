//! The atomic-ordering audit: `Ordering::Relaxed` is confined to an allowlist.
//!
//! Relaxed is correct for pure monotonic counters (stats that no control flow
//! depends on) and for the documented cursor/CAS-failure positions inside the
//! lock-free primitives themselves — and nowhere else. A `Relaxed` appearing
//! in new concurrent logic is the classic "it passed the stress test" bug, so
//! the audit makes it a build failure: either the module belongs on the
//! allowlist (a review decision) or the ordering must be strengthened.

use crate::mask::mask;

/// Modules where `Ordering::Relaxed` is pre-justified:
///
/// * `engine/src/ring.rs`, `engine/src/pool.rs` — the lock-free primitives;
///   every Relaxed is a cursor hint or CAS-failure ordering re-validated by an
///   Acquire load or SeqCst RMW on the success path (and the whole file is
///   exhaustively model-checked under `--cfg cprecycle_conc`).
/// * `core/src/chunk_pool.rs`, `core/src/server.rs` — monotonic stat counters
///   (hits/misses/recycled/samples_in); readers only aggregate them.
/// * `compat/conc/**` — the checker implements the shims, so it names every
///   ordering by definition.
pub const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/engine/src/ring.rs",
    "crates/engine/src/pool.rs",
    "crates/core/src/chunk_pool.rs",
    "crates/core/src/server.rs",
];

/// A `Relaxed` outside the allowlist.
#[derive(Debug)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub context: String,
}

/// Scan result for one file.
pub struct Found {
    /// All `Ordering::Relaxed` sites seen (allowlisted or not).
    pub total: usize,
    pub violations: Vec<Violation>,
}

/// Scans one file; `rel` is its workspace-relative path.
pub fn scan_file(rel: &str, src: &str) -> Found {
    let masked = mask(src);
    let exempt_file = RELAXED_ALLOWLIST.contains(&rel)
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("crates/compat/conc/");
    // `#[cfg(test)] mod …` heuristic: unit-test modules sit at the bottom of
    // the file; everything from that marker down is test code.
    let test_mod_start = find_test_mod(&masked);
    let mut total = 0usize;
    let mut violations = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        let mut from = 0usize;
        while let Some(found) = line[from..].find("Ordering::Relaxed") {
            total += 1;
            let exempt = exempt_file || test_mod_start.is_some_and(|start| idx >= start);
            if !exempt {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    context: src.lines().nth(idx).unwrap_or("").trim().to_string(),
                });
            }
            from += found + "Ordering::Relaxed".len();
        }
    }
    Found { total, violations }
}

/// Finds the 0-based line of a `#[cfg(test)]` attribute directly above a
/// `mod` declaration, if any.
fn find_test_mod(masked: &str) -> Option<usize> {
    let lines: Vec<&str> = masked.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim() == "#[cfg(test)]"
            && lines
                .get(i + 1)
                .is_some_and(|next| next.trim_start().starts_with("mod "))
        {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_outside_allowlist_is_flagged() {
        let src = "fn f(a: &AtomicUsize) { a.store(1, Ordering::Relaxed); }\n";
        let found = scan_file("crates/obs/src/lib.rs", src);
        assert_eq!(found.total, 1);
        assert_eq!(found.violations.len(), 1);
        assert_eq!(found.violations[0].line, 1);
    }

    #[test]
    fn allowlisted_counter_module_passes() {
        let src = "self.hits.fetch_add(1, Ordering::Relaxed);\n";
        let found = scan_file("crates/core/src/chunk_pool.rs", src);
        assert_eq!(found.total, 1);
        assert!(found.violations.is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n}\n";
        let found = scan_file("crates/obs/src/lib.rs", src);
        assert_eq!(found.total, 1);
        assert!(found.violations.is_empty(), "{:?}", found.violations);
    }

    #[test]
    fn relaxed_in_comments_and_strings_is_ignored() {
        let src = "// Ordering::Relaxed would be wrong here\nlet s = \"Ordering::Relaxed\";\n";
        let found = scan_file("crates/obs/src/lib.rs", src);
        assert_eq!(found.total, 0);
    }

    #[test]
    fn integration_tests_are_exempt() {
        let src = "calls.fetch_add(1, Ordering::Relaxed);\n";
        let found = scan_file("crates/core/tests/model_alloc.rs", src);
        assert!(found.violations.is_empty());
    }
}
