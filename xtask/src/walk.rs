//! Workspace source discovery (no external walkdir dependency).

use std::path::{Path, PathBuf};

/// All `.rs` files in the workspace, sorted, skipping build output and VCS
/// metadata.
pub fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(root, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// All crate manifests (`Cargo.toml` declaring a `[package]`), sorted.
pub fn crate_manifests(root: &Path) -> Vec<PathBuf> {
    let mut all = Vec::new();
    collect_manifests(root, &mut all);
    all.sort();
    all.retain(|p| {
        std::fs::read_to_string(p).is_ok_and(|s| s.lines().any(|l| l.trim() == "[package]"))
    });
    all
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_manifests(&path, out);
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}
